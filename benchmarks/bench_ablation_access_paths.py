"""Ablation C — index access paths (the rationale behind Heuristic 4).

The paper justifies pushing prefer operators onto base relations with "it is
likely for a relation to provide index-based access for the attributes used
by the prefer operator.  In contrast, typically the product of a join will
not be indexed."  This benchmark measures exactly that: IMDB-1 with and
without secondary indexes, under the strategies that exploit them.

Run standalone:  python benchmarks/bench_ablation_access_paths.py
"""

from __future__ import annotations

import pytest

from conftest import run_benchmark
from repro.bench import bench_repeats, bench_scale, format_table, measure
from repro.workloads import generate_imdb, imdb_1

_DBS: dict[bool, object] = {}


def database(indexed: bool):
    if indexed not in _DBS:
        _DBS[indexed] = generate_imdb(
            scale=bench_scale(), seed=42, build_indexes=indexed
        )
    return _DBS[indexed]


@pytest.mark.parametrize("indexed", [True, False], ids=["indexed", "no-indexes"])
@pytest.mark.parametrize("strategy", ("gbu", "ftp"))
def test_access_paths(benchmark, indexed, strategy):
    query = imdb_1(k=10, year=2000)
    session = query.session(database(indexed))
    result = run_benchmark(
        benchmark, lambda: session.execute(query.sql, strategy=strategy)
    )
    benchmark.extra_info["total_io"] = result.stats.cost.get("total_io", 0)
    benchmark.extra_info["index_lookups"] = result.stats.cost.get("index_lookups", 0)


def report() -> str:
    query = imdb_1(k=10, year=2000)
    rows = []
    for indexed in (True, False):
        session = query.session(database(indexed))
        for strategy in ("gbu", "ftp", "plugin-rma"):
            m = measure(session, query.sql, strategy, repeats=bench_repeats())
            result = session.execute(query.sql, strategy=strategy)
            rows.append(
                [
                    "indexed" if indexed else "no indexes",
                    strategy,
                    m.wall_ms,
                    result.stats.cost.get("total_io", 0),
                    result.stats.cost.get("index_lookups", 0),
                ]
            )
    return format_table(
        ["access paths", "strategy", "wall (ms)", "simulated I/O", "index lookups"],
        rows,
        title="Ablation C — index access paths (IMDB-1)",
    )


def main() -> None:
    print(report())


if __name__ == "__main__":
    main()
