"""Ablation B — choice of aggregate function F (Definition 3).

The paper notes the choice of F "reflects the philosophy of how to combine
partial scores" and affects which tuples rank highest.  This benchmark runs
IMDB-1 under F_S, F_max and F_min, reporting both timing (the cost of F is
a per-combination constant) and how much the top-10 answer changes.

Run standalone:  python benchmarks/bench_ablation_aggregates.py
"""

from __future__ import annotations

import pytest

from conftest import run_benchmark
from repro.bench import bench_repeats, format_table, measure
from repro.core.aggregates import F_MAX, F_MIN, F_S
from repro.pexec.engine import ExecutionEngine
from repro.query.session import Session
from repro.workloads import imdb_1

AGGREGATES = {"F_S": F_S, "F_max": F_MAX, "F_min": F_MIN}


def _session(db, aggregate) -> Session:
    query = imdb_1(k=10, year=2000)
    session = Session(db, aggregate=aggregate)
    session.register_all(query.preferences)
    return session


@pytest.mark.parametrize("name", list(AGGREGATES))
def test_aggregate_ablation(benchmark, imdb_db, name):
    query = imdb_1(k=10, year=2000)
    session = _session(imdb_db, AGGREGATES[name])
    result = run_benchmark(benchmark, lambda: session.execute(query.sql, strategy="gbu"))
    benchmark.extra_info["rows"] = result.stats.rows


def report(db) -> str:
    query = imdb_1(k=10, year=2000)
    answers = {}
    rows = []
    for name, aggregate in AGGREGATES.items():
        session = _session(db, aggregate)
        m = measure(session, query.sql, "gbu", repeats=bench_repeats(), label=name)
        result = session.execute(query.sql, strategy="gbu")
        answers[name] = {row for row in result.presented().rows}
        rows.append([name, m.wall_ms, m.rows])
    overlap_rows = []
    names = list(AGGREGATES)
    for i, a in enumerate(names):
        for b in names[i + 1 :]:
            common = len(answers[a] & answers[b])
            overlap_rows.append([f"{a} ∩ {b}", common, len(answers[a] | answers[b])])
    return (
        format_table(
            ["aggregate", "gbu wall (ms)", "rows"],
            rows,
            title="Ablation B — aggregate function choice (IMDB-1, top-10)",
        )
        + "\n\n"
        + format_table(
            ["answer sets", "common tuples", "union size"],
            overlap_rows,
            title="How much the top-10 answer changes with F",
        )
    )


def main() -> None:
    from repro.bench import bench_scale
    from repro.workloads import generate_imdb

    print(report(generate_imdb(scale=bench_scale(), seed=42)))


if __name__ == "__main__":
    main()
