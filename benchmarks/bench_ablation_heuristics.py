"""Ablation A — contribution of each optimizer heuristic (§VI-A rules 1–5).

Runs IMDB-1 under GBU with each transformation rule disabled in turn (and
with no rules at all).  Shows which rewrites carry the optimization benefit
on this substrate — including the honest finding that projection pushdown
(Rule 2), a disk-width optimization, *costs* time on an in-memory engine
where narrower tuples must be copied.

Run standalone:  python benchmarks/bench_ablation_heuristics.py
"""

from __future__ import annotations

import dataclasses

import pytest

from conftest import run_benchmark
from repro.bench import bench_repeats, format_table, measure
from repro.optimizer import OptimizerConfig
from repro.pexec.engine import ExecutionEngine
from repro.query.session import Session
from repro.workloads import imdb_1

CONFIGS: dict[str, OptimizerConfig] = {
    "all rules": OptimizerConfig(),
    "no rule 1 (selections)": OptimizerConfig(push_selections=False),
    "no rule 2 (projections)": OptimizerConfig(push_projections=False),
    "no rules 3-4 (prefers)": OptimizerConfig(push_prefers=False),
    "no rule 5 (ordering)": OptimizerConfig(reorder_prefers=False),
    "no join-order match": OptimizerConfig(match_join_order=False),
    "no rules at all": OptimizerConfig.none(),
}


def _session(db, config: OptimizerConfig) -> Session:
    query = imdb_1(k=10, year=2000)
    session = Session(db, strategy="gbu")
    session.engine = ExecutionEngine(db, optimizer_config=config)
    session.register_all(query.preferences)
    return session


@pytest.mark.parametrize("name", list(CONFIGS), ids=lambda n: n.replace(" ", "-"))
def test_heuristic_ablation(benchmark, imdb_db, name):
    query = imdb_1(k=10, year=2000)
    session = _session(imdb_db, CONFIGS[name])
    result = run_benchmark(benchmark, lambda: session.execute(query.sql, strategy="gbu"))
    benchmark.extra_info["total_io"] = result.stats.cost.get("total_io", 0)


def report(db) -> str:
    query = imdb_1(k=10, year=2000)
    rows = []
    for name, config in CONFIGS.items():
        session = _session(db, config)
        m = measure(session, query.sql, "gbu", repeats=bench_repeats(), label=name)
        rows.append([name, m.wall_ms, m.total_io])
    return format_table(
        ["configuration", "gbu wall (ms)", "simulated I/O"],
        rows,
        title="Ablation A — optimizer heuristics (IMDB-1, GBU)",
    )


def main() -> None:
    from repro.bench import bench_scale
    from repro.workloads import generate_imdb

    print(report(generate_imdb(scale=bench_scale(), seed=42)))


if __name__ == "__main__":
    main()
