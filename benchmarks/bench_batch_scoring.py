"""Fused batch preference scoring vs the sequential per-preference fold.

Sweeps the number of preferences |λ| and the input size |R| on two IMDB
workloads and times each cell twice: fused batch scoring on (the default)
and off (``use_batch_scoring(False)``, the sequential reference fold).
Both modes return byte-identical results — see ``tests/test_batchscore.py``
— so this measures pure execution-path cost.

* **scan workload** (the λ and |R| sweeps): preferences over the MOVIES
  relation, top-10.  Scoring dominates, so the cells expose the
  O(|R|·|λ|) → O(|R| + matches) asymptotic change directly.
* **join workload** (reported, not gated): the Fig.-10 4-relation join
  with a mixed preference pool.  Join work is shared by both modes, so
  speedups are diluted toward 1 — included to show the fused path never
  loses on join-heavy plans either.

Writes ``results/BENCH_batch_scoring.json`` with every cell (median wall
time, p50/p95 tail latency, speedup).

Run standalone:  python benchmarks/bench_batch_scoring.py [--quick] [--check]

``--check`` is the CI perf-smoke gate: exit 1 unless fused beats unfused by
at least ``GATE_MIN_SPEEDUP`` on the largest |λ| scan cell for every gated
strategy.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.bench import bench_repeats, bench_scale, format_table, measure
from repro.pexec.batchscore import use_batch_scoring
from repro.plan.builder import scan
from repro.query.session import Session
from repro.workloads import generate_imdb, preference_pool

LAMBDAS = (4, 16, 64)
ROW_SCALES = (0.5, 1.0, 2.0)
STRATEGIES = ("ftp", "gbu", "bu")

#: CI gate: fused must beat unfused by this factor on the |λ|=max scan cell.
#: Deliberately coarse (the FtP headline speedup is far larger, see
#: docs/PERFORMANCE.md) so CI machine jitter cannot flake the job.
GATE_MIN_SPEEDUP = 1.2
GATE_STRATEGIES = ("ftp", "gbu")


def movie_pool(db, count: int, selectivity: float = 0.03):
    """*count* preferences touching only MOVIES (cycling year/duration/d_id)."""
    mixed = preference_pool(db, count * 3, selectivity=selectivity)
    pool = [p for p in mixed if set(p.relations) <= {"MOVIES"}][:count]
    assert len(pool) == count
    return pool


def build_scan_plan(db, num_preferences: int):
    return (
        scan("MOVIES")
        .prefer_all(movie_pool(db, num_preferences))
        .top(10, by="score")
        .build()
    )


def build_join_plan(db, num_preferences: int):
    pool = preference_pool(db, num_preferences, selectivity=0.03)
    return (
        scan("MOVIES")
        .natural_join(scan("GENRES"), db.catalog)
        .natural_join(scan("DIRECTORS"), db.catalog)
        .natural_join(scan("RATINGS"), db.catalog)
        .prefer_all(pool)
        .top(10, by="score")
        .build()
    )


def _cell(session, plan, strategy, repeats, label) -> dict:
    fused = measure(session, plan, strategy, repeats, label=label)
    with use_batch_scoring(False):
        unfused = measure(session, plan, strategy, repeats, label=label)
    speedup = unfused.wall_ms / fused.wall_ms if fused.wall_ms > 0 else float("inf")
    return {
        "strategy": strategy,
        "fused_ms": round(fused.wall_ms, 4),
        "unfused_ms": round(unfused.wall_ms, 4),
        "speedup": round(speedup, 2),
        "fused_p50_ms": round(fused.p50_ms, 4),
        "fused_p95_ms": round(fused.p95_ms, 4),
        "unfused_p50_ms": round(unfused.p50_ms, 4),
        "unfused_p95_ms": round(unfused.p95_ms, 4),
        "rows": fused.rows,
    }


def sweep(scale: float, repeats: int) -> dict:
    data: dict = {
        "benchmark": "batch_scoring",
        "scan_workload": "MOVIES scan + |λ| MOVIES preferences + top-10",
        "join_workload": "fig10 4-relation IMDB join + mixed pool + top-10",
        "scale": scale,
        "repeats": repeats,
        "lambda_sweep": [],
        "rows_sweep": [],
        "join_sweep": [],
    }
    db = generate_imdb(scale=scale, seed=42)
    session = Session(db)
    for num in LAMBDAS:
        plan = build_scan_plan(db, num)
        for strategy in STRATEGIES:
            cell = _cell(session, plan, strategy, repeats, f"scan |λ|={num}")
            cell["lambda"] = num
            data["lambda_sweep"].append(cell)
    join_plan = build_join_plan(db, max(LAMBDAS))
    for strategy in STRATEGIES:
        cell = _cell(session, join_plan, strategy, repeats, f"join |λ|={max(LAMBDAS)}")
        cell["lambda"] = max(LAMBDAS)
        data["join_sweep"].append(cell)
    for factor in ROW_SCALES:
        row_db = generate_imdb(scale=scale * factor, seed=42)
        row_session = Session(row_db)
        plan = build_scan_plan(row_db, max(LAMBDAS))
        base_rows = len(row_db.table("MOVIES").rows)
        for strategy in GATE_STRATEGIES:
            cell = _cell(
                row_session, plan, strategy, repeats, f"|R|x{factor:g}"
            )
            cell["row_scale"] = factor
            cell["movies_rows"] = base_rows
            data["rows_sweep"].append(cell)
    return data


def render(data: dict) -> str:
    rows = [
        [c["lambda"], c["strategy"], c["fused_ms"], c["unfused_ms"], c["speedup"]]
        for c in data["lambda_sweep"]
    ]
    table1 = format_table(
        ["|λ|", "strategy", "fused (ms)", "unfused (ms)", "speedup"],
        rows,
        title="Batch scoring — scan workload, query time vs number of preferences",
    )
    rows = [
        [f"x{c['row_scale']:g}", c["strategy"], c["fused_ms"], c["unfused_ms"], c["speedup"]]
        for c in data["rows_sweep"]
    ]
    table2 = format_table(
        ["|R| scale", "strategy", "fused (ms)", "unfused (ms)", "speedup"],
        rows,
        title=f"Batch scoring — scan workload, query time vs input size (|λ|={max(LAMBDAS)})",
    )
    rows = [
        [c["lambda"], c["strategy"], c["fused_ms"], c["unfused_ms"], c["speedup"]]
        for c in data["join_sweep"]
    ]
    table3 = format_table(
        ["|λ|", "strategy", "fused (ms)", "unfused (ms)", "speedup"],
        rows,
        title="Batch scoring — join workload (shared join cost dilutes speedup)",
    )
    return table1 + "\n\n" + table2 + "\n\n" + table3


def check_gate(data: dict) -> list[str]:
    """The CI perf-smoke assertions; returns failure messages (empty = pass)."""
    failures = []
    top = max(LAMBDAS)
    for cell in data["lambda_sweep"]:
        if cell["lambda"] != top or cell["strategy"] not in GATE_STRATEGIES:
            continue
        if cell["speedup"] < GATE_MIN_SPEEDUP:
            failures.append(
                f"{cell['strategy']} at |λ|={top}: fused {cell['fused_ms']}ms vs "
                f"unfused {cell['unfused_ms']}ms — speedup {cell['speedup']} < "
                f"{GATE_MIN_SPEEDUP}"
            )
    return failures


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float)
    parser.add_argument("--repeats", type=int)
    parser.add_argument("--out", default="results")
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke mode: tiny scale, 1 repeat"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help=f"fail unless fused ≥ {GATE_MIN_SPEEDUP}x unfused at |λ|={max(LAMBDAS)}",
    )
    args = parser.parse_args(argv)
    if args.quick:
        os.environ.setdefault("REPRO_BENCH_SCALE", "0.001")
        os.environ.setdefault("REPRO_BENCH_REPEATS", "1")
    scale = args.scale if args.scale is not None else bench_scale()
    repeats = args.repeats if args.repeats is not None else bench_repeats()

    data = sweep(scale, repeats)
    print(render(data))

    os.makedirs(args.out, exist_ok=True)
    path = os.path.join(args.out, "BENCH_batch_scoring.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=2)
        handle.write("\n")
    print(f"\nmeasurements written to {path}")

    if args.check:
        failures = check_gate(data)
        if failures:
            for failure in failures:
                print(f"PERF GATE FAILED: {failure}", file=sys.stderr)
            return 1
        print(f"perf gate passed: fused ≥ {GATE_MIN_SPEEDUP}x at |λ|={max(LAMBDAS)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
