"""Extension D — membership preferences: inner join vs LEFT OUTER join.

The paper's p7 ("award-winning movies are preferred") is expressed over an
inner join, which silently *restricts* the answer to awarded movies.  The
library's LEFT OUTER join + ``membership_outer`` keeps the full answer while
still boosting tuples with a partner.  This benchmark quantifies the
difference: result sizes, scored fractions and cost.

Run standalone:  python benchmarks/bench_extension_outer_membership.py
"""

from __future__ import annotations

import pytest

from conftest import run_benchmark
from repro.bench import bench_repeats, format_table, measure
from repro.core.preference import Preference
from repro.engine.expressions import Attr, Comparison
from repro.pexec.engine import ExecutionEngine
from repro.plan.builder import scan
from repro.query.session import Session


def on_award(db):
    return Comparison("=", Attr("MOVIES.m_id"), Attr("AWARDS.m_id"))


def inner_plan(db):
    p7 = Preference.membership(("MOVIES", "AWARDS"), 1.0, 0.9, name="p7")
    return (
        scan("MOVIES").join(scan("AWARDS"), on=on_award(db)).prefer(p7).build()
    )


def outer_plan(db):
    p7 = Preference.membership_outer(
        ("MOVIES", "AWARDS"), "AWARDS.m_id", 1.0, 0.9, name="p7"
    )
    return (
        scan("MOVIES").left_join(scan("AWARDS"), on=on_award(db)).prefer(p7).build()
    )


@pytest.mark.parametrize("variant", ["inner", "outer"])
def test_membership_variant(benchmark, imdb_db, variant):
    plan = inner_plan(imdb_db) if variant == "inner" else outer_plan(imdb_db)
    engine = ExecutionEngine(imdb_db)
    result = run_benchmark(benchmark, lambda: engine.run(plan, "gbu"))
    benchmark.extra_info["rows"] = result.stats.rows


def report(db) -> str:
    session = Session(db)
    rows = []
    for variant, plan in (("inner join (p7)", inner_plan(db)), ("left outer join", outer_plan(db))):
        m = measure(session, plan, "gbu", repeats=bench_repeats(), label=variant)
        result = session.execute(plan)
        scored = result.relation.scored_fraction()
        rows.append([variant, m.rows, f"{scored:.1%}", m.wall_ms, m.total_io])
    movies = len(db.table("MOVIES"))
    return (
        format_table(
            ["membership via", "result rows", "scored fraction", "wall (ms)", "simulated I/O"],
            rows,
            title="Extension D — membership preference, restrictive vs boosting",
        )
        + f"\n({movies} movies in total; the inner join drops the un-awarded ones)"
    )


def main() -> None:
    from repro.bench import bench_scale
    from repro.workloads import generate_imdb

    print(report(generate_imdb(scale=bench_scale(), seed=42)))


if __name__ == "__main__":
    main()
