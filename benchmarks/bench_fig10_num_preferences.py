"""Fig. 10 (reconstructed) — query time vs number of preferences |λ|.

Varies the number of preferences (1..12) attached to a fixed 4-relation
IMDB join.  Expected shape: the plug-in rewrite baseline grows linearly
with a steep slope (one full query per preference); FtP, GBU and the shared
plug-in grow slowly (one extra pass / one extra cheap selection each).

Run standalone:  python benchmarks/bench_fig10_num_preferences.py
"""

from __future__ import annotations

import pytest

from conftest import run_benchmark
from repro.bench import DEFAULT_STRATEGIES, bench_repeats, format_table
from repro.pexec.engine import ExecutionEngine
from repro.plan.builder import scan
from repro.workloads import preference_pool

LAMBDAS = (1, 2, 4, 8, 12)


def build_plan(db, num_preferences: int):
    pool = preference_pool(db, num_preferences, selectivity=0.03)
    return (
        scan("MOVIES")
        .natural_join(scan("GENRES"), db.catalog)
        .natural_join(scan("DIRECTORS"), db.catalog)
        .natural_join(scan("RATINGS"), db.catalog)
        .prefer_all(pool)
        .top(10, by="score")
        .build()
    )


@pytest.mark.parametrize("num", LAMBDAS)
@pytest.mark.parametrize("strategy", DEFAULT_STRATEGIES)
def test_lambda_sweep(benchmark, imdb_db, num, strategy):
    plan = build_plan(imdb_db, num)
    engine = ExecutionEngine(imdb_db)
    result = run_benchmark(benchmark, lambda: engine.run(plan, strategy))
    benchmark.extra_info["total_io"] = result.stats.cost.get("total_io", 0)


def report(db) -> str:
    from repro.bench import measure
    from repro.query.session import Session

    session = Session(db)
    rows = []
    for num in LAMBDAS:
        plan = build_plan(db, num)
        cells = [num]
        for strategy in DEFAULT_STRATEGIES:
            m = measure(session, plan, strategy, repeats=bench_repeats())
            cells.append(m.wall_ms)
        rows.append(cells)
    return format_table(
        ["|λ|"] + [f"{s} (ms)" for s in DEFAULT_STRATEGIES],
        rows,
        title="Fig. 10 — query time vs number of preferences",
    )


def main() -> None:
    from repro.bench import bench_scale
    from repro.workloads import generate_imdb

    print(report(generate_imdb(scale=bench_scale(), seed=42)))


if __name__ == "__main__":
    main()
