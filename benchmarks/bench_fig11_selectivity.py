"""Fig. 11 (reconstructed) — query time vs preference selectivity.

Varies the selectivity of the conditional parts (0.01 .. 0.5) of two
preferences over a fixed IMDB join.  Expected shape: the hybrid strategies'
prefer-evaluation cost grows with selectivity (more score-relation entries
to write and merge) while the plug-in baselines additionally re-materialize
larger partial results.

Run standalone:  python benchmarks/bench_fig11_selectivity.py
"""

from __future__ import annotations

import pytest

from conftest import run_benchmark
from repro.bench import DEFAULT_STRATEGIES, bench_repeats, format_table, measure
from repro.pexec.engine import ExecutionEngine
from repro.plan.builder import scan
from repro.workloads import equality_preference, range_preference

SELECTIVITIES = (0.01, 0.05, 0.1, 0.25, 0.5)


def build_plan(db, selectivity: float):
    p_genre = equality_preference(
        db, "GENRES", "genre", selectivity, score=0.8, confidence=0.9, name="p_genre"
    )
    p_year = range_preference(
        db, "MOVIES", "year", selectivity, score=0.7, confidence=0.8, name="p_year"
    )
    return (
        scan("MOVIES")
        .prefer(p_year)
        .natural_join(scan("GENRES").prefer(p_genre), db.catalog)
        .natural_join(scan("DIRECTORS"), db.catalog)
        .top(10, by="score")
        .build()
    )


@pytest.mark.parametrize("selectivity", SELECTIVITIES)
@pytest.mark.parametrize("strategy", DEFAULT_STRATEGIES)
def test_selectivity_sweep(benchmark, imdb_db, selectivity, strategy):
    plan = build_plan(imdb_db, selectivity)
    engine = ExecutionEngine(imdb_db)
    result = run_benchmark(benchmark, lambda: engine.run(plan, strategy))
    benchmark.extra_info["total_io"] = result.stats.cost.get("total_io", 0)


def report(db) -> str:
    from repro.query.session import Session

    session = Session(db)
    rows = []
    for selectivity in SELECTIVITIES:
        plan = build_plan(db, selectivity)
        cells = [selectivity]
        for strategy in DEFAULT_STRATEGIES:
            m = measure(session, plan, strategy, repeats=bench_repeats())
            cells.append(m.wall_ms)
        rows.append(cells)
    return format_table(
        ["selectivity"] + [f"{s} (ms)" for s in DEFAULT_STRATEGIES],
        rows,
        title="Fig. 11 — query time vs preference selectivity",
    )


def main() -> None:
    from repro.bench import bench_scale
    from repro.workloads import generate_imdb

    print(report(generate_imdb(scale=bench_scale(), seed=42)))


if __name__ == "__main__":
    main()
