"""Fig. 12 (reconstructed) — query time vs number of joined relations |R|.

Grows the IMDB join chain from 2 to 5 relations, with two fixed preferences
attached.  Expected shape: all strategies grow with the join size; the
plug-in rewrite baseline pays the full join once per preference, so its gap
widens as |R| grows.

Run standalone:  python benchmarks/bench_fig12_num_relations.py
"""

from __future__ import annotations

import pytest

from conftest import run_benchmark
from repro.bench import DEFAULT_STRATEGIES, bench_repeats, format_table, measure
from repro.core.preference import Preference
from repro.engine.expressions import cmp, eq
from repro.pexec.engine import ExecutionEngine
from repro.plan.builder import scan

CHAIN = ("MOVIES", "GENRES", "DIRECTORS", "RATINGS", "CAST")
SIZES = (2, 3, 4, 5)


def build_plan(db, num_relations: int):
    preferences = [
        Preference("pg", "GENRES", eq("genre", "Comedy"), 0.8, 0.9),
        Preference("pm", "MOVIES", cmp("year", ">=", 2000), 0.7, 0.8),
    ]
    builder = scan(CHAIN[0]).prefer(preferences[1])
    for name in CHAIN[1:num_relations]:
        other = scan(name)
        if name == "GENRES":
            other = other.prefer(preferences[0])
        builder = builder.natural_join(other, db.catalog)
    return builder.top(10, by="score").build()


@pytest.mark.parametrize("num", SIZES)
@pytest.mark.parametrize("strategy", DEFAULT_STRATEGIES)
def test_relations_sweep(benchmark, imdb_db, num, strategy):
    plan = build_plan(imdb_db, num)
    engine = ExecutionEngine(imdb_db)
    result = run_benchmark(benchmark, lambda: engine.run(plan, strategy))
    benchmark.extra_info["total_io"] = result.stats.cost.get("total_io", 0)


def report(db) -> str:
    from repro.query.session import Session

    session = Session(db)
    rows = []
    for num in SIZES:
        plan = build_plan(db, num)
        cells = [num]
        for strategy in DEFAULT_STRATEGIES:
            m = measure(session, plan, strategy, repeats=bench_repeats())
            cells.append(m.wall_ms)
        rows.append(cells)
    return format_table(
        ["|R|"] + [f"{s} (ms)" for s in DEFAULT_STRATEGIES],
        rows,
        title="Fig. 12 — query time vs number of joined relations",
    )


def main() -> None:
    from repro.bench import bench_scale
    from repro.workloads import generate_imdb

    print(report(generate_imdb(scale=bench_scale(), seed=42)))


if __name__ == "__main__":
    main()
