"""Fig. 13 (reconstructed) — scalability with database size.

Runs IMDB-1 on databases generated at increasing scale factors.  Expected
shape: near-linear growth for every strategy, with plugin-rma on the
steepest slope (it repeats the whole query per preference).

Run standalone:  python benchmarks/bench_fig13_scalability.py
"""

from __future__ import annotations

import pytest

from conftest import run_benchmark
from repro.bench import DEFAULT_STRATEGIES, bench_repeats, bench_scale, format_table, measure
from repro.workloads import generate_imdb, imdb_1

#: Multipliers applied to the base benchmark scale.
FACTORS = (1, 2, 4, 8)

_DB_CACHE: dict[float, object] = {}


def database_at(factor: int):
    scale = bench_scale() * factor
    if scale not in _DB_CACHE:
        _DB_CACHE[scale] = generate_imdb(scale=scale, seed=42)
    return _DB_CACHE[scale]


@pytest.mark.parametrize("factor", FACTORS)
@pytest.mark.parametrize("strategy", ("ftp", "gbu", "plugin-rma"))
def test_scalability(benchmark, factor, strategy):
    db = database_at(factor)
    query = imdb_1(k=10, year=2000)
    session = query.session(db)
    result = run_benchmark(
        benchmark, lambda: session.execute(query.sql, strategy=strategy)
    )
    benchmark.extra_info["movies"] = len(db.table("MOVIES"))
    benchmark.extra_info["total_io"] = result.stats.cost.get("total_io", 0)


def report() -> str:
    rows = []
    query = imdb_1(k=10, year=2000)
    for factor in FACTORS:
        db = database_at(factor)
        session = query.session(db)
        cells = [f"×{factor} ({len(db.table('MOVIES'))} movies)"]
        for strategy in DEFAULT_STRATEGIES:
            m = measure(session, query.sql, strategy, repeats=bench_repeats())
            cells.append(m.wall_ms)
        rows.append(cells)
    return format_table(
        ["database size"] + [f"{s} (ms)" for s in DEFAULT_STRATEGIES],
        rows,
        title="Fig. 13 — scalability with database size (IMDB-1)",
    )


def main() -> None:
    print(report())


if __name__ == "__main__":
    main()
