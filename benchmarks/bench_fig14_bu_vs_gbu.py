"""Fig. 14 (reconstructed) — Bottom-Up vs Group Bottom-Up.

The paper excludes BU from its evaluation "as GBU is an improved method over
BU"; this benchmark substantiates that claim: BU materializes every
operator's output while GBU batches standard operators into single native
queries, so BU writes strictly more intermediate state.

Run standalone:  python benchmarks/bench_fig14_bu_vs_gbu.py
"""

from __future__ import annotations

import pytest

from conftest import run_benchmark
from repro.bench import bench_repeats, format_table, measure
from repro.workloads import all_queries

QUERIES = all_queries()
STRATEGIES = ("bu", "gbu")


@pytest.mark.parametrize("query", QUERIES, ids=lambda q: q.name)
@pytest.mark.parametrize("strategy", STRATEGIES)
def test_bu_vs_gbu(benchmark, databases, query, strategy):
    session = query.session(databases[query.dataset])
    result = run_benchmark(
        benchmark, lambda: session.execute(query.sql, strategy=strategy)
    )
    benchmark.extra_info["total_io"] = result.stats.cost.get("total_io", 0)
    benchmark.extra_info["tuples_materialized"] = result.stats.cost.get(
        "tuples_materialized", 0
    )


def report(databases) -> str:
    rows = []
    for query in QUERIES:
        session = query.session(databases[query.dataset])
        cells = [query.name]
        for strategy in STRATEGIES:
            m = measure(session, query.sql, strategy, repeats=bench_repeats())
            result = session.execute(query.sql, strategy=strategy)
            cells.extend([m.wall_ms, result.stats.cost.get("tuples_materialized", 0)])
        rows.append(cells)
    return format_table(
        ["query", "bu (ms)", "bu materialized", "gbu (ms)", "gbu materialized"],
        rows,
        title="Fig. 14 — BU vs GBU (why the paper drops BU)",
    )


def main() -> None:
    from repro.bench import bench_scale
    from repro.workloads import generate_dblp, generate_imdb

    databases = {
        "imdb": generate_imdb(scale=bench_scale(), seed=42),
        "dblp": generate_dblp(scale=bench_scale(), seed=42),
    }
    print(report(databases))


if __name__ == "__main__":
    main()
