"""Fig. 7 — effect of query optimization (input / optimized / left-deep plan).

Reproduces the Example 12 transformation on a real plan: selections and
prefer operators pushed down, prefer chains reordered by selectivity, and
the plan restructured left-deep matching the native join order.  The
benchmark measures optimizer latency and the end-to-end benefit (optimized
GBU vs GBU on the unoptimized plan).

Run standalone:  python benchmarks/bench_fig7_optimizer.py
"""

from __future__ import annotations

import pytest

from conftest import run_benchmark
from repro.bench import bench_repeats, format_table, measure
from repro.optimizer import OptimizerConfig, PreferenceOptimizer
from repro.plan.analysis import is_left_deep, plan_depth, qualify_preferences
from repro.plan.printer import explain
from repro.workloads import imdb_1


def _plan(db):
    query = imdb_1(k=10, year=2000)
    session = query.session(db)
    return session, session.compile(query.sql).plan


def test_optimizer_latency(benchmark, imdb_db):
    session, plan = _plan(imdb_db)
    prepared = session.engine.prepare(plan)
    optimizer = PreferenceOptimizer(imdb_db.catalog)
    optimized = run_benchmark(benchmark, lambda: optimizer.optimize(prepared))
    assert is_left_deep(optimized)


@pytest.mark.parametrize("optimized", [True, False], ids=["optimized", "baseline"])
def test_gbu_with_and_without_optimizer(benchmark, imdb_db, optimized):
    from repro.pexec.engine import ExecutionEngine

    query = imdb_1(k=10, year=2000)
    session = query.session(imdb_db)
    config = OptimizerConfig() if optimized else OptimizerConfig.none()
    engine = ExecutionEngine(imdb_db, optimizer_config=config)
    plan = session.compile(query.sql).plan
    result = run_benchmark(benchmark, lambda: engine.run(plan, "gbu"))
    benchmark.extra_info["total_io"] = result.stats.cost.get("total_io", 0)


def report(db) -> str:
    from repro.pexec.engine import ExecutionEngine
    from repro.query.session import Session

    query = imdb_1(k=10, year=2000)
    session = query.session(db)
    plan = session.compile(query.sql).plan
    prepared = session.engine.prepare(plan)
    optimized = PreferenceOptimizer(db.catalog).optimize(prepared)

    parts = [
        "Fig. 7(a) — input extended query plan:",
        explain(prepared),
        "",
        "Fig. 7(b/c) — optimized, left-deep plan:",
        explain(optimized),
        "",
        f"input depth={plan_depth(prepared)}, optimized depth={plan_depth(optimized)}, "
        f"left-deep={is_left_deep(optimized)}",
        "",
    ]

    rows = []
    for label, config in (
        ("baseline (no rules)", OptimizerConfig.none()),
        ("optimized (rules 1-5)", OptimizerConfig()),
    ):
        engine = ExecutionEngine(db, optimizer_config=config)
        bench_session = Session(db, strategy="gbu")
        bench_session.engine = engine
        bench_session.register_all(query.preferences)
        m = measure(bench_session, query.sql, "gbu", repeats=bench_repeats(), label=label)
        rows.append([label, m.wall_ms, m.total_io])
    parts.append(
        format_table(
            ["plan", "gbu wall (ms)", "simulated I/O"],
            rows,
            title="Effect of optimization on GBU execution",
        )
    )
    return "\n".join(parts)


def main() -> None:
    from repro.bench import bench_scale
    from repro.workloads import generate_imdb

    print(report(generate_imdb(scale=bench_scale(), seed=42)))


if __name__ == "__main__":
    main()
