"""Fig. 9 (reconstructed) — total query time per workload query and strategy.

The headline comparison of §VII: the hybrid strategies (FtP, GBU) against
the two plug-in implementations, on all six workload queries.  Expected
shape: plugin-rma is the slowest by a clear factor (one full query per
preference); FtP/GBU and plugin-shared are close, with the hybrids ahead.

Run standalone:  python benchmarks/bench_fig9_strategies.py
"""

from __future__ import annotations

import pytest

from conftest import run_benchmark
from repro.bench import DEFAULT_STRATEGIES, bench_repeats, compare_strategies, matrix_table
from repro.workloads import all_queries

QUERIES = all_queries()


@pytest.mark.parametrize("query", QUERIES, ids=lambda q: q.name)
@pytest.mark.parametrize("strategy", DEFAULT_STRATEGIES)
def test_strategy(benchmark, databases, query, strategy):
    session = query.session(databases[query.dataset])
    result = run_benchmark(
        benchmark, lambda: session.execute(query.sql, strategy=strategy)
    )
    benchmark.extra_info["rows"] = result.stats.rows
    benchmark.extra_info["total_io"] = result.stats.cost.get("total_io", 0)


def report(databases) -> str:
    measurements = []
    for query in QUERIES:
        measurements.extend(
            compare_strategies(
                databases[query.dataset], query, repeats=bench_repeats()
            )
        )
    wall = matrix_table(
        measurements,
        metric="wall_ms",
        title="Fig. 9 — total query processing time (median, ms)",
    )
    io = matrix_table(
        measurements,
        metric="total_io",
        title="Fig. 9 (companion) — simulated page I/O",
    )
    return wall + "\n\n" + io


def main() -> None:
    from repro.bench import bench_scale
    from repro.workloads import generate_dblp, generate_imdb

    databases = {
        "imdb": generate_imdb(scale=bench_scale(), seed=42),
        "dblp": generate_dblp(scale=bench_scale(), seed=42),
    }
    print(report(databases))


if __name__ == "__main__":
    main()
