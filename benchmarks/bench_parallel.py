"""Columnar + partition-parallel execution vs the row engine (fig. 13 workload).

Sweeps the partition count on the IMDB-1 query (``k=10, year=2000``) over a
generated IMDB database and times three execution paths per cell:

* **row reference** — the oracle evaluator, the baseline every speedup is
  reported against;
* **row gbu** — the fastest row strategy, so the table separates "columnar
  wins" from "optimizer wins";
* **columnar / columnar-parallel** — ``session.execute(..., columnar=True,
  partitions=n)`` for each n in ``WORKERS`` (n=1 is the serial columnar
  path, n>1 ships horizontal partitions to a fork pool).

All paths return byte-identical results — see ``tests/test_parallel_exec.py``
— so this measures pure execution-path cost.  On a single-core host the
pool adds overhead rather than parallel speedup; the headline factor is the
columnar core (vectorized selection + exact pushdown + fused scoring)
against the row reference, which is what the gate checks.

Writes ``results/BENCH_parallel.json`` with every cell (median wall time,
p50/p95 tail latency, speedup vs the row reference).

Run standalone:  python benchmarks/bench_parallel.py [--quick] [--check]

``--check`` is the CI perf-smoke gate: exit 1 unless the columnar path at
``GATE_WORKERS`` partitions beats the row reference by ``GATE_MIN_SPEEDUP``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.bench import bench_repeats, bench_scale, format_table, measure
from repro.pexec.parallel import shutdown_pools
from repro.workloads import generate_imdb, imdb_1

#: Partition counts swept (1 = serial columnar, no pool).
WORKERS = (1, 2, 4, 8)

#: CI gate: columnar at GATE_WORKERS partitions must beat the row reference
#: by this factor.  Deliberately below the ~2x the committed full run shows,
#: so CI machine jitter cannot flake the job.
GATE_MIN_SPEEDUP = 1.5
GATE_WORKERS = 4


def _measurement_dict(measurement, reference_ms: float) -> dict:
    speedup = (
        reference_ms / measurement.wall_ms if measurement.wall_ms > 0 else float("inf")
    )
    return {
        "wall_ms": round(measurement.wall_ms, 4),
        "p50_ms": round(measurement.p50_ms, 4),
        "p95_ms": round(measurement.p95_ms, 4),
        "rows": measurement.rows,
        "speedup_vs_reference": round(speedup, 2),
    }


def sweep(scale: float, repeats: int) -> dict:
    data: dict = {
        "benchmark": "parallel",
        "workload": "fig13 IMDB-1 (k=10, year=2000)",
        "scale": scale,
        "repeats": repeats,
        "cpus": len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else os.cpu_count(),
        "row_baselines": [],
        "partition_sweep": [],
    }
    db = generate_imdb(scale=scale, seed=42)
    query = imdb_1(k=10, year=2000)
    session = query.session(db)
    data["movies_rows"] = len(db.table("MOVIES").rows)

    reference = measure(session, query.sql, "reference", repeats, label="imdb_1")
    reference_ms = reference.wall_ms
    for strategy, measurement in (
        ("reference", reference),
        ("gbu", measure(session, query.sql, "gbu", repeats, label="imdb_1")),
    ):
        cell = _measurement_dict(measurement, reference_ms)
        cell["strategy"] = strategy
        data["row_baselines"].append(cell)

    try:
        for workers in WORKERS:
            measurement = measure(
                session,
                query.sql,
                "gbu",
                repeats,
                label=f"imdb_1 p={workers}",
                columnar=True,
                partitions=workers,
            )
            cell = _measurement_dict(measurement, reference_ms)
            cell["partitions"] = workers
            cell["mode"] = "columnar" if workers == 1 else "columnar-parallel"
            data["partition_sweep"].append(cell)
    finally:
        shutdown_pools()
    return data


def render(data: dict) -> str:
    rows = [
        [c["strategy"], c["wall_ms"], c["speedup_vs_reference"]]
        for c in data["row_baselines"]
    ]
    table1 = format_table(
        ["strategy", "wall (ms)", "speedup vs reference"],
        rows,
        title="Row-engine baselines — fig13 IMDB-1",
    )
    rows = [
        [c["partitions"], c["mode"], c["wall_ms"], c["speedup_vs_reference"]]
        for c in data["partition_sweep"]
    ]
    table2 = format_table(
        ["partitions", "mode", "wall (ms)", "speedup vs reference"],
        rows,
        title="Columnar partition sweep — fig13 IMDB-1",
    )
    return table1 + "\n\n" + table2


def check_gate(data: dict) -> list[str]:
    """The CI perf-smoke assertions; returns failure messages (empty = pass)."""
    failures = []
    cells = [c for c in data["partition_sweep"] if c["partitions"] == GATE_WORKERS]
    if not cells:
        return [f"no partition_sweep cell at partitions={GATE_WORKERS}"]
    cell = cells[0]
    if cell["speedup_vs_reference"] < GATE_MIN_SPEEDUP:
        failures.append(
            f"columnar at partitions={GATE_WORKERS}: {cell['wall_ms']}ms — "
            f"speedup {cell['speedup_vs_reference']} < {GATE_MIN_SPEEDUP} "
            f"vs row reference"
        )
    return failures


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float)
    parser.add_argument("--repeats", type=int)
    parser.add_argument("--out", default="results")
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke mode: tiny scale, 1 repeat"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help=f"fail unless columnar ≥ {GATE_MIN_SPEEDUP}x reference at "
        f"partitions={GATE_WORKERS}",
    )
    args = parser.parse_args(argv)
    if args.quick:
        os.environ.setdefault("REPRO_BENCH_SCALE", "0.001")
        os.environ.setdefault("REPRO_BENCH_REPEATS", "1")
    scale = args.scale if args.scale is not None else bench_scale()
    repeats = args.repeats if args.repeats is not None else bench_repeats()

    data = sweep(scale, repeats)
    print(render(data))

    os.makedirs(args.out, exist_ok=True)
    path = os.path.join(args.out, "BENCH_parallel.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=2)
        handle.write("\n")
    print(f"\nmeasurements written to {path}")

    if args.check:
        failures = check_gate(data)
        if failures:
            for failure in failures:
                print(f"PERF GATE FAILED: {failure}", file=sys.stderr)
            return 1
        print(
            f"perf gate passed: columnar ≥ {GATE_MIN_SPEEDUP}x reference "
            f"at partitions={GATE_WORKERS}"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
