"""Digest-keyed result cache + incremental maintenance vs full recompute.

Three phases over a generated IMDB database, all through the serving-layer
:class:`~repro.cache.service.CachedQueryService` (the exact code path
``repro serve`` answers queries with):

* **zipfian mix** — a seeded zipf-distributed request schedule over a user
  universe with preference churn, run step-by-step through a cache-on
  service and the cache-off oracle *against the same live server state*:
  every step's cached reply is asserted byte-identical to the oracle's
  before its latency counts.  Reports both latency distributions plus the
  measured hit rate — the honest picture of what the cache buys under a
  realistic mix, with the conformance check inline rather than on faith.
* **hot repeat** — one hot (user, query) pair repeated; after the first
  miss every request is a pure cache hit.  This is the headline serving
  win the CI gate checks (``GATE_MIN_HOT_SPEEDUP``).
* **preference delta** — an attached
  :class:`~repro.cache.maintenance.ScoreMaintainer` patches a materialized
  per-user score relation through add/remove commit-feed events, timed
  against the full-fold ``recompute`` oracle at the same profile size
  (``GATE_MIN_DELTA_SPEEDUP``).  Each patch is verified equal to the
  oracle before its timing counts.

Writes ``results/BENCH_result_cache.json``.

Run standalone:  python benchmarks/bench_result_cache.py [--quick] [--check]

``--check`` is the CI cache-conformance gate: exit 1 on any identity
mismatch, a hot-repeat speedup below ``GATE_MIN_HOT_SPEEDUP``, or a
preference-delta speedup below ``GATE_MIN_DELTA_SPEEDUP``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.bench import bench_repeats, bench_scale, format_table
from repro.cache import CachedQueryService, ResultCache, ScoreMaintainer
from repro.core.preference import Preference
from repro.engine.expressions import eq
from repro.serve.executor import percentile
from repro.serve.server import PreferenceServer
from repro.workloads import generate_imdb

#: CI gates.  The committed full run shows ~100x hot-repeat and ~4x delta;
#: the gates sit far below so CI machine jitter cannot flake the job.
GATE_MIN_HOT_SPEEDUP = 5.0
GATE_MIN_DELTA_SPEEDUP = 2.0

#: Zipfian mix shape (matches serve-load's traffic model).
MIX_REQUESTS = 400
MIX_USERS = 200
MIX_CHURN = 0.15
ZIPF_S = 1.2

HOT_REPEATS = 60

GENRES = ("Comedy", "Drama", "Action", "Thriller")


def _genre_pref(name: str, genre: str, score: float = 0.8) -> Preference:
    return Preference(name, "GENRES", eq("genre", genre), score, 0.9)


def _schedule(requests: int, users: int, seed: int) -> list[int]:
    import numpy as np

    rng = np.random.default_rng(seed)
    ranks = rng.zipf(ZIPF_S, size=requests)
    return [int((rank - 1) % users) for rank in ranks]


def _pct(samples: list[float]) -> dict:
    return {
        "p50_ms": round(percentile(samples, 0.50), 4),
        "p95_ms": round(percentile(samples, 0.95), 4),
        "p99_ms": round(percentile(samples, 0.99), 4),
        "total_ms": round(sum(samples), 3),
    }


def bench_zipf_mix(server: PreferenceServer, seed: int) -> dict:
    """The churn-interleaved mix: cached vs oracle at identical states."""
    import random

    cached = CachedQueryService(server, ResultCache())
    oracle = CachedQueryService(server, None)
    rng = random.Random(seed)
    schedule = _schedule(MIX_REQUESTS, MIX_USERS, seed)

    cached_ms: list[float] = []
    oracle_ms: list[float] = []
    mismatches = 0
    for rank in schedule:
        user = f"user{rank}"
        if not server.store.preferences_of(user):
            server.add_preference(user, _genre_pref("base", "Drama"))
        if rng.random() < MIX_CHURN:
            genre = GENRES[rng.randrange(len(GENRES))]
            if rng.random() < 0.6:
                try:
                    server.add_preference(
                        user, _genre_pref(f"c_{genre.lower()}", genre, 0.7)
                    )
                except Exception:  # noqa: BLE001 - duplicate names are churn noise
                    pass
            else:
                server.remove_preference(user, f"c_{genre.lower()}")
        started = time.perf_counter()
        hot = cached.query(user)
        cached_ms.append((time.perf_counter() - started) * 1e3)
        started = time.perf_counter()
        cold = oracle.query(user)
        oracle_ms.append((time.perf_counter() - started) * 1e3)
        if hot != cold:
            mismatches += 1
    stats = cached.stats_snapshot()
    return {
        "requests": len(schedule),
        "users": MIX_USERS,
        "churn": MIX_CHURN,
        "zipf_s": ZIPF_S,
        "cached": _pct(cached_ms),
        "uncached": _pct(oracle_ms),
        "hit_rate": stats["hit_rate"],
        "hits": stats["hits"],
        "misses": stats["misses"],
        "invalidations": stats["invalidations"],
        "identity_mismatches": mismatches,
        "mix_speedup": round(sum(oracle_ms) / max(sum(cached_ms), 1e-9), 2),
    }


def bench_hot_repeat(server: PreferenceServer) -> dict:
    """One hot key repeated: the pure cache-hit serving win."""
    user = "hot_user"
    server.add_preference(user, _genre_pref("base", "Drama"))
    cached = CachedQueryService(server, ResultCache())
    oracle = CachedQueryService(server, None)

    expected = oracle.query(user)
    warm = cached.query(user)  # the one miss
    mismatches = 0 if warm == expected else 1

    cached_ms: list[float] = []
    for _ in range(HOT_REPEATS):
        started = time.perf_counter()
        reply = cached.query(user)
        cached_ms.append((time.perf_counter() - started) * 1e3)
        if reply != expected:
            mismatches += 1
    oracle_ms: list[float] = []
    for _ in range(HOT_REPEATS):
        started = time.perf_counter()
        oracle.query(user)
        oracle_ms.append((time.perf_counter() - started) * 1e3)
    return {
        "repeats": HOT_REPEATS,
        "cached": _pct(cached_ms),
        "uncached": _pct(oracle_ms),
        "identity_mismatches": mismatches,
        "hot_speedup": round(sum(oracle_ms) / max(sum(cached_ms), 1e-9), 2),
    }


def bench_preference_delta(server: PreferenceServer, repeats: int) -> dict:
    """Incremental score maintenance vs full recompute on pref add/remove."""
    user = "delta_user"
    # A profile big enough that a full P-preference fold visibly out-costs
    # the single-preference patch the maintainer applies.
    for index, genre in enumerate(GENRES * 4):
        server.add_preference(
            user,
            _genre_pref(f"p{index}_{genre.lower()}", genre, 0.5 + (index % 8) * 0.05),
        )
    maintainer = ScoreMaintainer(server.db, server.store).attach(server)
    maintainer.score_relation(user, "GENRES")  # materialize

    incremental_ms: list[float] = []
    full_ms: list[float] = []
    mismatches = 0
    cycles = max(3, repeats * 3)
    for cycle in range(cycles):
        churn = _genre_pref(f"churn{cycle}", GENRES[cycle % len(GENRES)], 0.65)
        started = time.perf_counter()
        server.add_preference(user, churn)  # commit feed patches in O(matches)
        incremental_ms.append((time.perf_counter() - started) * 1e3)
        if maintainer.score_relation(user, "GENRES") != maintainer.recompute(
            user, "GENRES"
        ):
            mismatches += 1
        started = time.perf_counter()
        full = maintainer.recompute(user, "GENRES")  # the from-scratch fold
        full_ms.append((time.perf_counter() - started) * 1e3)
        started = time.perf_counter()
        server.remove_preference(user, churn.name)  # patch only touched keys
        incremental_ms.append((time.perf_counter() - started) * 1e3)
        if maintainer.score_relation(user, "GENRES") != full and mismatches == 0:
            # after removal the state must be back to the pre-add fold
            if maintainer.score_relation(user, "GENRES") != maintainer.recompute(
                user, "GENRES"
            ):
                mismatches += 1
        started = time.perf_counter()
        maintainer.recompute(user, "GENRES")
        full_ms.append((time.perf_counter() - started) * 1e3)
    rows = len(server.db.table("GENRES").rows)
    return {
        "table_rows": rows,
        "profile_size": len(server.store.preferences_of(user)),
        "cycles": cycles,
        "incremental": _pct(incremental_ms),
        "full_recompute": _pct(full_ms),
        "identity_mismatches": mismatches,
        "delta_speedup": round(sum(full_ms) / max(sum(incremental_ms), 1e-9), 2),
    }


def sweep(scale: float, repeats: int, seed: int = 42) -> dict:
    data: dict = {
        "benchmark": "result_cache",
        "workload": (
            f"zipf(s={ZIPF_S}) preferential serving mix with {MIX_CHURN:.0%} "
            "churn + hot-repeat + incremental preference maintenance"
        ),
        "scale": scale,
        "repeats": repeats,
        "seed": seed,
    }
    server = PreferenceServer(generate_imdb(scale=scale, seed=seed))
    data["movies_rows"] = len(server.db.table("MOVIES").rows)
    data["zipf_mix"] = bench_zipf_mix(server, seed)
    data["hot_repeat"] = bench_hot_repeat(server)
    data["preference_delta"] = bench_preference_delta(server, repeats)
    return data


def render(data: dict) -> str:
    mix = data["zipf_mix"]
    hot = data["hot_repeat"]
    delta = data["preference_delta"]
    table1 = format_table(
        ["path", "p50 (ms)", "p95 (ms)", "p99 (ms)", "total (ms)"],
        [
            ["cache-on", mix["cached"]["p50_ms"], mix["cached"]["p95_ms"],
             mix["cached"]["p99_ms"], mix["cached"]["total_ms"]],
            ["cache-off", mix["uncached"]["p50_ms"], mix["uncached"]["p95_ms"],
             mix["uncached"]["p99_ms"], mix["uncached"]["total_ms"]],
        ],
        title=(
            f"Zipfian mix — {mix['requests']} requests, hit-rate "
            f"{mix['hit_rate']:.2%}, speedup {mix['mix_speedup']}x"
        ),
    )
    table2 = format_table(
        ["phase", "cached/incremental (ms)", "uncached/full (ms)", "speedup"],
        [
            ["hot repeat", hot["cached"]["total_ms"], hot["uncached"]["total_ms"],
             f"{hot['hot_speedup']}x"],
            ["pref delta", delta["incremental"]["total_ms"],
             delta["full_recompute"]["total_ms"], f"{delta['delta_speedup']}x"],
        ],
        title="Hot-repeat and preference-delta phases",
    )
    return table1 + "\n\n" + table2


def check_gate(data: dict) -> list[str]:
    """The CI cache-conformance assertions; returns failures (empty = pass)."""
    failures = []
    for phase in ("zipf_mix", "hot_repeat", "preference_delta"):
        bad = data[phase]["identity_mismatches"]
        if bad:
            failures.append(f"{phase}: {bad} cache-on replies diverged from oracle")
    hot = data["hot_repeat"]["hot_speedup"]
    if hot < GATE_MIN_HOT_SPEEDUP:
        failures.append(
            f"hot-repeat speedup {hot}x < {GATE_MIN_HOT_SPEEDUP}x vs recompute"
        )
    delta = data["preference_delta"]["delta_speedup"]
    if delta < GATE_MIN_DELTA_SPEEDUP:
        failures.append(
            f"preference-delta speedup {delta}x < {GATE_MIN_DELTA_SPEEDUP}x "
            f"vs full recompute"
        )
    return failures


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float)
    parser.add_argument("--repeats", type=int)
    parser.add_argument("--out", default="results")
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke mode: tiny scale, 1 repeat"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help=f"fail on identity mismatch, hot-repeat < {GATE_MIN_HOT_SPEEDUP}x, "
        f"or pref-delta < {GATE_MIN_DELTA_SPEEDUP}x",
    )
    args = parser.parse_args(argv)
    if args.quick:
        os.environ.setdefault("REPRO_BENCH_SCALE", "0.001")
        os.environ.setdefault("REPRO_BENCH_REPEATS", "1")
    scale = args.scale if args.scale is not None else bench_scale()
    repeats = args.repeats if args.repeats is not None else bench_repeats()

    data = sweep(scale, repeats)
    print(render(data))

    os.makedirs(args.out, exist_ok=True)
    path = os.path.join(args.out, "BENCH_result_cache.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=2)
        handle.write("\n")
    print(f"\nmeasurements written to {path}")

    if args.check:
        failures = check_gate(data)
        if failures:
            for failure in failures:
                print(f"CACHE GATE FAILED: {failure}", file=sys.stderr)
            return 1
        print(
            f"cache gate passed: byte-identical, hot ≥ {GATE_MIN_HOT_SPEEDUP}x, "
            f"delta ≥ {GATE_MIN_DELTA_SPEEDUP}x"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
