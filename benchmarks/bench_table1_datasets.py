"""Table I — sizes of basic tables (IMDB and DBLP).

The paper reports the row counts of its two data sets; our generators
reproduce the same table-size *ratios* at a configurable scale.  The
benchmark measures generation cost; ``main()`` prints the scaled counts next
to the paper's numbers.

Run standalone:  python benchmarks/bench_table1_datasets.py
"""

from __future__ import annotations

import pytest

from repro.bench import bench_scale, format_table
from repro.workloads import generate_dblp, generate_imdb
from repro.workloads.dblp import TABLE1_SIZES as DBLP_SIZES
from repro.workloads.imdb import TABLE1_SIZES as IMDB_SIZES


def test_generate_imdb(benchmark):
    db = benchmark.pedantic(
        lambda: generate_imdb(scale=bench_scale(), seed=1),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    assert len(db.table("MOVIES")) > 0
    benchmark.extra_info["movies"] = len(db.table("MOVIES"))


def test_generate_dblp(benchmark):
    db = benchmark.pedantic(
        lambda: generate_dblp(scale=bench_scale(), seed=1),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    assert len(db.table("PUBLICATIONS")) > 0
    benchmark.extra_info["publications"] = len(db.table("PUBLICATIONS"))


def report(scale: float | None = None) -> str:
    scale = scale if scale is not None else bench_scale()
    imdb = generate_imdb(scale=scale, seed=1, build_indexes=False, analyze=False)
    dblp = generate_dblp(scale=scale, seed=1, build_indexes=False, analyze=False)
    rows = []
    for table, full in sorted(IMDB_SIZES.items()):
        rows.append(["IMDB", table, full, len(imdb.table(table))])
    for table, full in sorted(DBLP_SIZES.items()):
        rows.append(["DBLP", table, full, len(dblp.table(table))])
    return format_table(
        ["dataset", "table", "paper (scale 1.0)", f"generated (scale {scale:g})"],
        rows,
        title="Table I — sizes of basic tables",
    )


def main() -> None:
    print(report())


if __name__ == "__main__":
    main()
