"""Table II — properties of the workload queries.

The paper characterizes each of its six queries by result size N, number of
joined relations |R|, number of preferences |λ| and the split P/NP of
relations with vs without preferences.  ``main()`` prints the same table for
our reconstructed workload; the benchmarks time each query once under GBU.

Run standalone:  python benchmarks/bench_table2_workload.py
"""

from __future__ import annotations

import pytest

from conftest import run_benchmark
from repro.bench import format_table, table2_properties
from repro.workloads import all_queries

QUERIES = all_queries()


@pytest.mark.parametrize("query", QUERIES, ids=lambda q: q.name)
def test_query_properties(benchmark, databases, query):
    session = query.session(databases[query.dataset])
    result = run_benchmark(benchmark, lambda: session.execute(query.sql, strategy="gbu"))
    properties = table2_properties(databases[query.dataset], query)
    benchmark.extra_info.update(properties)
    assert result.stats.rows == properties["N"]


def report(databases) -> str:
    rows = []
    for query in QUERIES:
        p = table2_properties(databases[query.dataset], query)
        rows.append([p["query"], p["N"], p["|R|"], p["|λ|"], p["P/NP"]])
    return format_table(
        ["query", "N", "|R|", "|λ|", "P/NP"],
        rows,
        title="Table II — workload query properties",
    )


def main() -> None:
    from repro.bench import bench_scale
    from repro.workloads import generate_dblp, generate_imdb

    databases = {
        "imdb": generate_imdb(scale=bench_scale(), seed=42),
        "dblp": generate_dblp(scale=bench_scale(), seed=42),
    }
    print(report(databases))


if __name__ == "__main__":
    main()
