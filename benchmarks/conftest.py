"""Shared fixtures for the benchmark suite.

Dataset scale is controlled by the ``REPRO_BENCH_SCALE`` environment
variable (default 0.002 ≈ 1/500 of the paper's Table I sizes) and the
number of timed repetitions by ``REPRO_BENCH_REPEATS``.
"""

from __future__ import annotations

import pytest

from repro.bench import bench_scale
from repro.workloads import generate_dblp, generate_imdb


@pytest.fixture(scope="session")
def imdb_db():
    return generate_imdb(scale=bench_scale(), seed=42)


@pytest.fixture(scope="session")
def dblp_db():
    return generate_dblp(scale=bench_scale(), seed=42)


@pytest.fixture(scope="session")
def databases(imdb_db, dblp_db):
    return {"imdb": imdb_db, "dblp": dblp_db}


def run_benchmark(benchmark, fn):
    """Bounded pedantic run: 1 warm-up, 3 timed rounds."""
    return benchmark.pedantic(fn, rounds=3, iterations=1, warmup_rounds=1)
