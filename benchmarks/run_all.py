"""Regenerate every experiment report into ``results/``.

Usage::

    python benchmarks/run_all.py [--scale 0.002] [--repeats 3] [--quick] [--json]

Each report is also printed as it completes.  This is the driver behind the
tables recorded in EXPERIMENTS.md.  ``--quick`` is the CI smoke mode: a tiny
scale, one repeat, a subset of reports, plus a traced run of the workload
queries whose JSONL trace lands in ``results/traces.jsonl`` (uploaded as a
CI artifact).  ``--json`` additionally writes every report's raw
measurements — including p50/p95/p99 tail latency per cell — to
``results/<report>.json`` for machine consumption.
"""

from __future__ import annotations

import argparse
import importlib.util
import os
import pathlib
import sys
import time

HERE = pathlib.Path(__file__).parent
REPORTS = [
    "bench_table1_datasets",
    "bench_table2_workload",
    "bench_fig7_optimizer",
    "bench_fig9_strategies",
    "bench_fig10_num_preferences",
    "bench_fig11_selectivity",
    "bench_fig12_num_relations",
    "bench_fig13_scalability",
    "bench_fig14_bu_vs_gbu",
    "bench_ablation_heuristics",
    "bench_ablation_aggregates",
    "bench_ablation_access_paths",
    "bench_extension_outer_membership",
]

#: CI smoke subset (--quick): one table and the headline strategy figure.
QUICK_REPORTS = [
    "bench_table1_datasets",
    "bench_fig9_strategies",
]


def load(name: str):
    spec = importlib.util.spec_from_file_location(name, HERE / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    assert spec.loader is not None
    spec.loader.exec_module(module)
    return module


def trace_workload(out_dir: str, scale: float = 0.0005) -> str:
    """Run the IMDB workload queries under a collecting tracer.

    Every (query, strategy) trace is appended to ``<out_dir>/traces.jsonl``
    together with the traced-vs-untraced wall times — the artifact CI
    uploads so regressions in operator behaviour are diffable.
    """
    from repro.bench.harness import compare_strategies
    from repro.obs import JsonlSink
    from repro.workloads import generate_imdb
    from repro.workloads.queries import all_queries

    path = os.path.join(out_dir, "traces.jsonl")
    if os.path.exists(path):
        os.remove(path)
    sink = JsonlSink(path)
    db = generate_imdb(scale=scale, seed=42)
    for workload_query in all_queries():
        if workload_query.dataset != "imdb":
            continue
        compare_strategies(
            db, workload_query, repeats=1, trace=True, trace_sink=sink
        )
    return path


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float)
    parser.add_argument("--repeats", type=int)
    parser.add_argument("--out", default="results")
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: tiny scale, 1 repeat, report subset, traced "
        "workload run written to <out>/traces.jsonl",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="also write each report's raw measurements (with p50/p95/p99 "
        "tail latency) to <out>/<report>.json",
    )
    args = parser.parse_args()
    if args.quick:
        os.environ.setdefault("REPRO_BENCH_SCALE", "0.0005")
        os.environ.setdefault("REPRO_BENCH_REPEATS", "1")
    if args.scale is not None:
        os.environ["REPRO_BENCH_SCALE"] = str(args.scale)
    if args.repeats is not None:
        os.environ["REPRO_BENCH_REPEATS"] = str(args.repeats)

    sys.path.insert(0, str(HERE))  # reports import the shared conftest helpers
    os.makedirs(args.out, exist_ok=True)
    from contextlib import redirect_stdout
    import io

    from repro.bench.harness import bench_repeats, bench_scale, collect_measurements

    reports = QUICK_REPORTS if args.quick else REPORTS
    for name in reports:
        started = time.perf_counter()
        module = load(name)
        buffer = io.StringIO()
        with collect_measurements() as cells, redirect_stdout(buffer):
            module.main()
        text = buffer.getvalue()
        path = os.path.join(args.out, f"{name}.txt")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
        if args.json:
            import json

            json_path = os.path.join(args.out, f"{name}.json")
            with open(json_path, "w", encoding="utf-8") as handle:
                json.dump(
                    {
                        "report": name,
                        "scale": bench_scale(),
                        "repeats": bench_repeats(),
                        "measurements": [cell.as_dict() for cell in cells],
                    },
                    handle,
                    indent=2,
                )
                handle.write("\n")
        elapsed = time.perf_counter() - started
        print(f"### {name}  ({elapsed:.1f}s → {path})")
        print(text)
    if args.quick:
        started = time.perf_counter()
        trace_path = trace_workload(args.out)
        elapsed = time.perf_counter() - started
        print(f"### traced workload  ({elapsed:.1f}s → {trace_path})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
