"""Regenerate every experiment report into ``results/``.

Usage::

    python benchmarks/run_all.py [--scale 0.002] [--repeats 3]

Each report is also printed as it completes.  This is the driver behind the
tables recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import importlib.util
import os
import pathlib
import sys
import time

HERE = pathlib.Path(__file__).parent
REPORTS = [
    "bench_table1_datasets",
    "bench_table2_workload",
    "bench_fig7_optimizer",
    "bench_fig9_strategies",
    "bench_fig10_num_preferences",
    "bench_fig11_selectivity",
    "bench_fig12_num_relations",
    "bench_fig13_scalability",
    "bench_fig14_bu_vs_gbu",
    "bench_ablation_heuristics",
    "bench_ablation_aggregates",
    "bench_ablation_access_paths",
    "bench_extension_outer_membership",
]


def load(name: str):
    spec = importlib.util.spec_from_file_location(name, HERE / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    assert spec.loader is not None
    spec.loader.exec_module(module)
    return module


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float)
    parser.add_argument("--repeats", type=int)
    parser.add_argument("--out", default="results")
    args = parser.parse_args()
    if args.scale is not None:
        os.environ["REPRO_BENCH_SCALE"] = str(args.scale)
    if args.repeats is not None:
        os.environ["REPRO_BENCH_REPEATS"] = str(args.repeats)

    sys.path.insert(0, str(HERE))  # reports import the shared conftest helpers
    os.makedirs(args.out, exist_ok=True)
    from contextlib import redirect_stdout
    import io

    for name in REPORTS:
        started = time.perf_counter()
        module = load(name)
        buffer = io.StringIO()
        with redirect_stdout(buffer):
            module.main()
        text = buffer.getvalue()
        path = os.path.join(args.out, f"{name}.txt")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
        elapsed = time.perf_counter() - started
        print(f"### {name}  ({elapsed:.1f}s → {path})")
        print(text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
