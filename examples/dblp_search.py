"""Preference-aware bibliography search over a synthetic DBLP database.

A researcher's assistant: rank publications by preferred venues, recency and
citation evidence — including a *membership* preference ("cited publications
are preferred", the paper's p7 flavour) and a confidence threshold to keep
only well-supported hits.

Run:  python examples/dblp_search.py
"""

from repro import InList, Preference, col, recency_score
from repro.engine.expressions import TRUE
from repro.query import Session
from repro.workloads import generate_dblp


def main() -> None:
    print("Generating a synthetic DBLP database (1/500 scale)...")
    db = generate_dblp(scale=0.002, seed=21)
    for name in db.catalog.table_names():
        print(f"  {name:<13} {len(db.table(name)):>8} rows")
    print()

    session = Session(db)
    session.register_all(
        [
            # Explicitly stated: favourite database venues (confidence 1).
            Preference(
                "fav_venues",
                "CONFERENCES",
                InList(col("name"), ["SIGMOD", "VLDB", "ICDE"]),
                0.9,
                1.0,
            ),
            # Learnt from reading history: recent papers preferred.
            Preference(
                "recent", "CONFERENCES", TRUE, recency_score("year", 2011), 0.7
            ),
            # Membership: publications with at least one citation.
            Preference.membership(
                ("PUBLICATIONS", "CITATIONS"), score=1.0, confidence=0.8, name="cited"
            ),
        ]
    )

    print("Top conference papers by venue + recency preferences:")
    rows = session.rows(
        """
        SELECT title, CONFERENCES.name, year FROM PUBLICATIONS
          NATURAL JOIN CONFERENCES
        WHERE year >= 1995
        PREFERRING fav_venues, recent
        TOP 8 BY score
        """
    )
    for title, venue, year, score, conf in rows:
        print(f"  {title:<18} {venue:<8} {year}  score={score:.3f} conf={conf:.2f}")
    print()

    print("Cited conference papers (membership preference), most confident first:")
    rows = session.rows(
        """
        SELECT title, CONFERENCES.name FROM PUBLICATIONS
          NATURAL JOIN CONFERENCES
          JOIN CITATIONS ON PUBLICATIONS.p_id = CITATIONS.p2_id
        WHERE conf >= 1.5
        PREFERRING fav_venues, cited
        TOP 8 BY conf
        """
    )
    for title, venue, score, conf in rows:
        print(f"  {title:<18} {venue:<8} score={score:.3f} conf={conf:.2f}")
    print()

    # Inline preferences: no registration needed.
    print("Journal articles with an inline venue preference:")
    rows = session.rows(
        """
        SELECT title, JOURNALS.name, year FROM PUBLICATIONS
          NATURAL JOIN JOURNALS
        PREFERRING (JOURNALS.name = 'TKDE') SCORE 0.9 CONFIDENCE 0.8 ON JOURNALS,
                   (year > 2000) SCORE year / 2011 CONFIDENCE 0.6 ON JOURNALS
        TOP 5 BY score
        """
    )
    for title, journal, year, score, conf in rows:
        print(f"  {title:<18} {journal:<8} {year}  score={score:.3f} conf={conf:.2f}")


if __name__ == "__main__":
    main()
