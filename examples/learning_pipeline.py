"""End-to-end personalization pipeline: learn → register → query.

A user rates a handful of movies; the system

1. turns the ratings into *atomic* preferences (confidence 1 — explicitly
   stated, paper Example 1),
2. *mines* generic genre preferences from them (lower confidence — learnt),
3. *fits* a recency scoring function from the rating pattern,
4. registers everything — some preferences only for specific contexts
   ("comedies when alone"), and
5. answers preferential queries, including a non-restrictive membership
   preference over a LEFT OUTER join ("award-winning movies float up, the
   rest still show").

Run:  python examples/learning_pipeline.py
"""

from repro import ContextualPreference, Preference, eq
from repro.learning import (
    atomic_preferences_from_ratings,
    fit_linear_scoring,
    mine_categorical_preferences,
    mine_numeric_preference,
)
from repro.query import Session
from repro.workloads import generate_imdb


def main() -> None:
    print("Generating a synthetic IMDB database (1/1000 scale)...")
    db = generate_imdb(scale=0.001, seed=3)
    session = Session(db)

    # --- 1. explicit ratings → atomic preferences -------------------------------
    movies = db.table("MOVIES")
    recent = [r for r in movies.rows if r[2] >= 2005][:4]
    old = [r for r in movies.rows if r[2] <= 1975][:4]
    ratings = [(r[0], 9.0) for r in recent] + [(r[0], 2.0) for r in old]
    atomic = atomic_preferences_from_ratings("MOVIES", "m_id", ratings)
    print(f"\n{len(atomic)} atomic preferences from explicit ratings, e.g.:")
    print("  ", atomic[0].describe())

    # --- 2. mine generic genre preferences ---------------------------------------
    mined = mine_categorical_preferences(
        db, ratings, "MOVIES", "m_id", "GENRES", "genre", min_support=1
    )
    print(f"\n{len(mined)} genre preferences mined from the same ratings:")
    for preference in mined[:4]:
        print("  ", preference.describe())

    # --- 3. fit a recency scoring function ----------------------------------------
    year_of = {r[0]: r[2] for r in movies.rows}
    observations = [(year_of[m], rating / 10.0) for m, rating in ratings]
    fitted = fit_linear_scoring("year", observations)
    print(
        f"\nfitted scoring: {fitted.scoring.describe()} "
        f"(R²={fitted.r_squared:.2f} → confidence {fitted.suggested_confidence:.2f})"
    )
    recency = Preference(
        "learnt_recency",
        "MOVIES",
        eq("m_id", -1) | ~eq("m_id", -1),  # σ_true, spelled defensively
        fitted.scoring,
        fitted.suggested_confidence,
    )

    # --- 4. register, some context-dependent ---------------------------------------
    session.register_all(atomic)
    session.register(recency)
    for preference in mined:
        if "Comedy" in preference.name:
            session.register(
                ContextualPreference(preference, {"company": "alone"})
            )
        else:
            session.register(preference)
    session.register(
        Preference.membership_outer(
            ("MOVIES", "AWARDS"), "AWARDS.m_id", 1.0, 0.9, name="awarded"
        )
    )

    # --- 5. query ---------------------------------------------------------------------
    comedy_pref_names = [p.name for p in mined if "Comedy" in p.name]
    preferring = ", ".join(["learnt_recency", "awarded"] + comedy_pref_names)
    sql = f"""
        SELECT title, MOVIES.year, award FROM MOVIES
          LEFT OUTER JOIN AWARDS ON MOVIES.m_id = AWARDS.m_id
          NATURAL JOIN GENRES
        PREFERRING {preferring}
        TOP 8 BY score
    """

    session.set_context(company="alone")
    print("\nTop-8 while alone (comedy preference active):")
    for row in session.rows(sql):
        title, year, award, score, conf = row
        marker = f"🏆 {award}" if award else ""
        print(f"  {title:<11} ({year}) score={score:.3f} conf={conf:.2f} {marker}")

    session.set_context(company="friends")
    print("\nTop-8 with friends (comedy preference inactive):")
    for row in session.rows(sql):
        title, year, award, score, conf = row
        marker = f"🏆 {award}" if award else ""
        print(f"  {title:<11} ({year}) score={score:.3f} conf={conf:.2f} {marker}")


if __name__ == "__main__":
    main()
