"""An online video-rental service (the paper's Section V scenario).

Reproduces the three preferential-query flavours of Examples 9–11 over the
synthetic IMDB database:

* Q1 — top-k: highlight movie titles Alice may like.
* Q2 — most-confident results: only "safe" suggestions above a confidence
  threshold τ.
* Q3 — blending preferences with recommendations: Alice's mandatory
  preferences enriched with Bob's, combined with a union.

Run:  python examples/movie_recommendations.py
"""

from repro import Preference, eq, recency_score
from repro.query import Session
from repro.workloads import generate_imdb


def main() -> None:
    print("Generating a synthetic IMDB database (1/500 scale)...")
    db = generate_imdb(scale=0.002, seed=7)
    for name in db.catalog.table_names():
        print(f"  {name:<10} {len(db.table(name)):>8} rows")
    print()

    session = Session(db)
    # Alice's preferences (Fig. 5).
    session.register_all(
        [
            Preference("p1", "GENRES", eq("genre", "Comedy"), 0.8, 0.9),
            Preference("p2", "DIRECTORS", eq("d_id", 1), 0.9, 0.8),
            Preference("p3", "ACTORS", eq("a_id", 1), 1.0, 1.0),
            # Bob's preferences.
            Preference(
                "p4",
                ("MOVIES", "DIRECTORS"),
                eq("director", "Director 2"),
                recency_score("year", 2011),
                0.9,
            ),
            Preference("p5", "MOVIES", eq("m_id", 1), 1.0, 1.0),
        ]
    )

    # --- Example 9: top-k among recent movies -----------------------------------
    print("Q1 — top-5 recent movies for Alice (Example 9):")
    rows = session.rows(
        """
        SELECT title, director FROM MOVIES
          NATURAL JOIN GENRES
          NATURAL JOIN DIRECTORS
          NATURAL JOIN CAST
          NATURAL JOIN ACTORS
        WHERE year >= 2005
        PREFERRING p1, p2, p3
        TOP 5 BY score
        """
    )
    for title, director, score, conf in rows:
        print(f"  {title:<12} by {director:<14} score={score:.3f} conf={conf:.2f}")
    print()

    # --- Example 10: only safe (confident) suggestions ---------------------------
    tau = 0.85
    print(f"Q2 — suggestions with confidence ≥ {tau} (Example 10):")
    rows = session.rows(
        f"""
        SELECT title, genre FROM MOVIES
          NATURAL JOIN GENRES
          NATURAL JOIN DIRECTORS
        WHERE year >= 2005 AND conf >= {tau}
        PREFERRING p1, p2
        ORDER BY conf
        """
    )
    for title, genre, score, conf in rows[:8]:
        print(f"  {title:<12} [{genre}] score={score:.3f} conf={conf:.2f}")
    print(f"  ({len(rows)} safe suggestions in total)")
    print()

    # --- Provenance: why was the top suggestion made? -----------------------------
    result = session.execute(
        """
        SELECT title, director FROM MOVIES
          NATURAL JOIN GENRES
          NATURAL JOIN DIRECTORS
        WHERE year >= 2005
        PREFERRING p1, p2
        TOP 3 BY score
        """
    )
    print("Why the top suggestion?")
    print(session.why(result, index=0).describe())
    print()

    # --- Example 11: blending Alice's and Bob's preferences ----------------------
    print("Q3 — Alice's picks blended with Bob's (Example 11):")
    rows = session.rows(
        """
        SELECT title, MOVIES.m_id FROM MOVIES
          NATURAL JOIN DIRECTORS
        WHERE conf > 0
        PREFERRING p2
        UNION
        SELECT title, MOVIES.m_id FROM MOVIES
          NATURAL JOIN DIRECTORS
        WHERE score > 0
        PREFERRING p4, p5
        ORDER BY score
        """
    )
    for title, m_id, score, conf in rows[:8]:
        print(f"  {title:<12} (m_id={m_id}) score={score:.3f} conf={conf:.2f}")
    print(f"  ({len(rows)} blended suggestions in total)")


if __name__ == "__main__":
    main()
