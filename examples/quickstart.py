"""Quickstart: a preference-aware movie database in ~60 lines.

Builds the paper's running example (the small movie database of Fig. 3),
defines preferences along the three dimensions of the model — conditional
part, scoring part, confidence — and runs a preferential top-k query both
through the fluent plan builder and through the SQL dialect.

Run:  python examples/quickstart.py
"""

from repro import (
    Database,
    DataType,
    ExecutionEngine,
    Preference,
    cmp,
    eq,
    explain,
    recency_score,
    scan,
)
from repro.query import Session


def build_database() -> Database:
    db = Database()
    db.create_table(
        "MOVIES",
        [
            ("m_id", DataType.INT),
            ("title", DataType.TEXT),
            ("year", DataType.INT),
            ("duration", DataType.INT),
            ("d_id", DataType.INT),
        ],
        primary_key=["m_id"],
    )
    db.create_table(
        "DIRECTORS",
        [("d_id", DataType.INT), ("director", DataType.TEXT)],
        primary_key=["d_id"],
    )
    db.create_table(
        "GENRES",
        [("m_id", DataType.INT), ("genre", DataType.TEXT)],
        primary_key=["m_id", "genre"],
    )
    db.insert_many(
        "MOVIES",
        [
            (1, "Gran Torino", 2008, 116, 1),
            (2, "Wall Street", 2010, 133, 3),
            (3, "Million Dollar Baby", 2004, 132, 1),
            (4, "Match Point", 2005, 124, 2),
            (5, "Scoop", 2006, 96, 2),
        ],
    )
    db.insert_many("DIRECTORS", [(1, "C. Eastwood"), (2, "W. Allen"), (3, "O. Stone")])
    db.insert_many(
        "GENRES",
        [(1, "Drama"), (2, "Drama"), (3, "Drama"), (4, "Comedy"), (4, "Drama"), (5, "Comedy")],
    )
    db.analyze()  # collect optimizer statistics
    return db


def main() -> None:
    db = build_database()

    # Alice's preferences: (conditional part, scoring part, confidence).
    loves_comedies = Preference("p1", "GENRES", eq("genre", "Comedy"), 0.8, 0.9)
    favourite_director = Preference("p2", "DIRECTORS", eq("d_id", 1), 0.9, 0.8)
    likes_recent = Preference(
        "p3", "MOVIES", cmp("year", ">=", 2000), recency_score("year", 2011), 0.7
    )

    # --- Plan-builder API ----------------------------------------------------
    plan = (
        scan("MOVIES")
        .prefer(likes_recent)
        .natural_join(scan("GENRES").prefer(loves_comedies), db.catalog)
        .natural_join(scan("DIRECTORS").prefer(favourite_director), db.catalog)
        .project(["title", "director", "genre"])
        .top(3, by="score")
        .build()
    )

    engine = ExecutionEngine(db)
    result = engine.run(plan, strategy="gbu")

    print("== Optimized extended query plan (GBU) ==")
    print(explain(result.executed_plan))
    print()
    print("== Top 3 movies for Alice ==")
    for row, score, conf in result.presented().triples():
        print(f"  {row}  score={score:.3f}  conf={conf:.2f}")
    print()
    print("== Execution statistics ==")
    print(" ", result.stats.summary())
    print()

    # --- SQL API ---------------------------------------------------------------
    session = Session(db)
    session.register_all([loves_comedies, favourite_director, likes_recent])
    rows = session.rows(
        """
        SELECT title, director FROM MOVIES
          NATURAL JOIN GENRES
          NATURAL JOIN DIRECTORS
        PREFERRING p1, p2, p3
        TOP 3 BY score
        """
    )
    print("== Same query through the SQL dialect ==")
    for row in rows:
        print(" ", row)


if __name__ == "__main__":
    main()
