"""Compare the execution strategies on one workload query (a mini Fig. 9).

Runs IMDB-1 (the paper's Q1) under every strategy — the hybrid FtP and GBU,
the plug-in baselines, BU and the reference interpreter — and prints wall
time, simulated page I/O and result size, plus the optimized plan GBU ran.

Run:  python examples/strategy_comparison.py [scale]
"""

import sys

from repro import explain
from repro.bench import format_table, measure
from repro.pexec.engine import STRATEGIES
from repro.workloads import generate_imdb, imdb_1


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.005
    print(f"Generating a synthetic IMDB database (scale={scale})...")
    db = generate_imdb(scale=scale, seed=7)

    query = imdb_1(k=10, year=2000)
    session = query.session(db)

    rows = []
    for strategy in STRATEGIES:
        m = measure(session, query.sql, strategy, repeats=3, label=query.name)
        rows.append([strategy, m.wall_ms, m.total_io, m.rows])

    print()
    print(
        format_table(
            ["strategy", "median wall (ms)", "simulated I/O (pages)", "rows"],
            rows,
            title=f"{query.name}: {query.description}",
        )
    )

    print()
    print("Optimized plan executed by GBU:")
    result = session.execute(query.sql, strategy="gbu")
    print(explain(result.executed_plan))


if __name__ == "__main__":
    main()
