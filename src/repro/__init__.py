"""repro — a preference-aware relational database engine in pure Python.

Reproduction of Arvanitis & Koutrika, *"Towards Preference-aware Relational
Databases"* (ICDE 2012): the three-dimensional preference model
(conditional / scoring / confidence), p-relations, the extended relational
algebra with the prefer operator, the heuristic preference-aware query
optimizer, and the FtP / BU / GBU execution strategies with plug-in
baselines — all on top of a self-contained in-memory relational engine.

Quickstart::

    from repro import Database, DataType, ExecutionEngine, Preference, scan
    from repro import eq, recency_score

    db = Database()
    db.create_table("MOVIES", [("m_id", DataType.INT), ("title", DataType.TEXT),
                               ("year", DataType.INT)], primary_key=["m_id"])
    db.insert_many("MOVIES", [(1, "Gran Torino", 2008), (2, "Scoop", 2006)])
    db.analyze()

    p = Preference("recent", "MOVIES", eq("year", 2008),
                   recency_score("year", 2011), confidence=0.9)
    plan = scan("MOVIES").prefer(p).top(5, by="score").build()
    result = ExecutionEngine(db).run(plan, strategy="gbu")
    for row, score, conf in result.relation.triples():
        print(row, score, conf)
"""

from .core import (
    F_MAX,
    F_MIN,
    F_S,
    AggregateFunction,
    CallableScore,
    ConstantScore,
    ExprScore,
    PRelation,
    Preference,
    ScorePair,
    ScoreRelation,
    around_score,
    get_aggregate,
    prefer,
    rating_score,
    recency_score,
    weighted,
)
from .engine import (
    TRUE,
    Between,
    Comparison,
    CostModel,
    Database,
    DataType,
    InList,
    TableSchema,
    cmp,
    col,
    eq,
    lit,
)
from .errors import ReproError, RewriteViolation
from .analysis_static import (
    Diagnostic,
    PlanVerifier,
    RewriteAuditor,
    Severity,
    verify_plan,
)
from .core.context import ContextualPreference, active_preferences
from .filtering import (
    PreferenceRelation,
    conf_at_least,
    ranked,
    score_at_least,
    skyline,
    skyline_pairs,
    topk,
    winnow,
)
from .obs import Tracer, current_tracer, use_tracer
from .optimizer import OptimizerConfig, PreferenceOptimizer, optimize
from .resilience import (
    CancellationToken,
    CircuitBreaker,
    FaultPlan,
    FaultSpec,
    QueryGuard,
    ResiliencePolicy,
    RetryPolicy,
    use_faults,
    use_guard,
)
from .pexec import STRATEGIES, ExecutionEngine, QueryResult, evaluate_reference
from .plan import PlanBuilder, explain, scan
from .query import Session

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReproError",
    # engine
    "Database",
    "DataType",
    "TableSchema",
    "CostModel",
    # expressions
    "col",
    "lit",
    "eq",
    "cmp",
    "TRUE",
    "Comparison",
    "Between",
    "InList",
    # core model
    "Preference",
    "PRelation",
    "ScoreRelation",
    "ScorePair",
    "prefer",
    "AggregateFunction",
    "F_S",
    "F_MAX",
    "F_MIN",
    "get_aggregate",
    "ConstantScore",
    "ExprScore",
    "CallableScore",
    "rating_score",
    "recency_score",
    "around_score",
    "weighted",
    # plans and optimization
    "scan",
    "PlanBuilder",
    "explain",
    "optimize",
    "PreferenceOptimizer",
    "OptimizerConfig",
    # execution
    "ExecutionEngine",
    "QueryResult",
    "STRATEGIES",
    "evaluate_reference",
    # filtering
    "topk",
    "ranked",
    "score_at_least",
    "conf_at_least",
    "skyline",
    "skyline_pairs",
    "winnow",
    "PreferenceRelation",
    # sessions and context
    "Session",
    "ContextualPreference",
    "active_preferences",
    # observability
    "Tracer",
    "current_tracer",
    "use_tracer",
    # resilience
    "QueryGuard",
    "CancellationToken",
    "use_guard",
    "FaultPlan",
    "FaultSpec",
    "use_faults",
    "RetryPolicy",
    "CircuitBreaker",
    "ResiliencePolicy",
    # static analysis
    "Diagnostic",
    "Severity",
    "PlanVerifier",
    "RewriteAuditor",
    "RewriteViolation",
    "verify_plan",
]
