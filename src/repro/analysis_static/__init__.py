"""Static analysis over extended query plans and over the code base itself.

Four layers (see ``docs/STATIC_ANALYSIS.md``):

* :mod:`~repro.analysis_static.verifier` — a dataflow pass over plan trees
  that checks the algebraic preconditions of the paper's rewrite properties
  (4.1–4.4) *before* execution: score-filter placement, prefer pushdown
  targets, chain ordering, set-operation compatibility.
* :mod:`~repro.analysis_static.parallel_verifier` — a dataflow pass over
  partition splits (``plan_partitions`` output) and the columnar selection
  pushdown: leaf row-locality, global re-application of the filtering
  suffix, disjoint-cover partition ranges (PV3xx codes).
* :mod:`~repro.analysis_static.auditor` — invariant-preservation checks on
  each (before, after) pair the optimizer (row or columnar) produces; strict
  mode raises :class:`~repro.errors.RewriteViolation` on any failure.
* :mod:`~repro.analysis_static.lint` — an AST-based checker over the source
  tree (``python -m repro.lint src``) enforcing repo invariants: no raw
  ``==`` on scores, no ⊥-pair literals outside ``scorepair.py``, exhaustive
  plan-node dispatch, law-checked aggregate registration, fork/ambient-state
  safety in worker-reachable code.

Plus the runtime side of the same catalog:
:mod:`~repro.analysis_static.sanitizer` — opt-in concurrency instrumentation
(lock order, COW snapshot discipline, WAL durability protocol; SANxxx codes).

This package init is deliberately lazy (PEP 562): the sanitizer is imported
from low-level modules (``serve.rwlock``, ``engine.table``) that must not
drag the verifier — and through it the whole engine — into their import
graph.  Only ``repro.analysis_static.sanitizer`` itself (which depends on
nothing but :mod:`~repro.analysis_static.diagnostics`) is safe to import
from those layers.
"""

_EXPORTS = {
    "CATALOG": "diagnostics",
    "Diagnostic": "diagnostics",
    "Severity": "diagnostics",
    "make_diagnostic": "diagnostics",
    "PlanVerifier": "verifier",
    "verify_plan": "verifier",
    "verify_partition_plan": "parallel_verifier",
    "RewriteAuditor": "auditor",
    "LintFinding": "lint",
    "lint_paths": "lint",
    "run_lint": "lint",
    "Sanitizer": "sanitizer",
    "current_sanitizer": "sanitizer",
    "env_sanitize_enabled": "sanitizer",
    "use_sanitizer": "sanitizer",
    "install_sanitizer": "sanitizer",
    "uninstall_sanitizer": "sanitizer",
}

__all__ = list(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    from importlib import import_module

    module = import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value  # cache: subsequent lookups skip __getattr__
    return value


def __dir__():
    return sorted(set(globals()) | set(__all__))
