"""Static analysis over extended query plans and over the code base itself.

Three layers (see ``docs/STATIC_ANALYSIS.md``):

* :mod:`~repro.analysis_static.verifier` — a dataflow pass over plan trees
  that checks the algebraic preconditions of the paper's rewrite properties
  (4.1–4.4) *before* execution: score-filter placement, prefer pushdown
  targets, chain ordering, set-operation compatibility.
* :mod:`~repro.analysis_static.auditor` — invariant-preservation checks on
  each (before, after) pair the optimizer produces; the optimizer's strict
  mode raises :class:`~repro.errors.RewriteViolation` on any failure.
* :mod:`~repro.analysis_static.lint` — an AST-based checker over the source
  tree (``python -m repro.lint src``) enforcing repo invariants: no raw
  ``==`` on scores, no ⊥-pair literals outside ``scorepair.py``, exhaustive
  plan-node dispatch, law-checked aggregate registration.
"""

from .auditor import RewriteAuditor
from .diagnostics import CATALOG, Diagnostic, Severity, make_diagnostic
from .lint import LintFinding, lint_paths, run_lint
from .verifier import PlanVerifier, verify_plan

__all__ = [
    "CATALOG",
    "Diagnostic",
    "Severity",
    "make_diagnostic",
    "PlanVerifier",
    "verify_plan",
    "RewriteAuditor",
    "LintFinding",
    "lint_paths",
    "run_lint",
]
