"""Rewrite auditor: invariant-preservation checks on optimizer rule fires.

Every time an optimizer rule changes a plan, the (before, after) pair is
audited for the invariants any sound rewrite must preserve:

* **RW001** — the rewrite must not introduce *new* verifier errors: the
  multiset of error-severity diagnostic codes on the output must be a
  subset of the input's (a rule may fix problems, never create them);
* **RW002** — the root's attribute-name *set* must not change (join
  reordering may permute columns, so order is not compared);
* **RW003** — the multiset of preferences evaluated by the plan must not
  change (a dropped or duplicated prefer changes scores);
* **RW004** — the multiset of base-relation leaves must not change.

The optimizer's strict mode raises :class:`~repro.errors.RewriteViolation`
carrying these diagnostics; the default mode records them on the rule's
tracer span (see ``optimize.rule`` spans in :mod:`repro.optimizer`).
"""

from __future__ import annotations

from collections import Counter

from ..engine.catalog import Catalog
from ..errors import ReproError
from ..plan.nodes import PlanNode, Relation
from .diagnostics import Diagnostic, Severity, make_diagnostic
from .verifier import PlanVerifier


class RewriteAuditor:
    """Checks one (before, after) rewrite pair for invariant preservation."""

    def __init__(self, catalog: Catalog, *, default_aggregate=None):
        self.catalog = catalog
        self.default_aggregate = default_aggregate

    def audit(
        self, rule_name: str, before: PlanNode, after: PlanNode
    ) -> list[Diagnostic]:
        """Returns the violations *after* exhibits relative to *before*."""
        out: list[Diagnostic] = []
        verifier = PlanVerifier(
            self.catalog, default_aggregate=self.default_aggregate
        )
        errors_before = _error_codes(verifier.verify(before))
        findings_after = verifier.verify(after)
        errors_after = _error_codes(findings_after)

        introduced = errors_after - errors_before
        if introduced:
            detail = "; ".join(
                str(d)
                for d in findings_after
                if d.severity is Severity.ERROR and introduced[d.code] > 0
            )
            out.append(
                make_diagnostic(
                    "RW001",
                    f"rule introduced new verifier errors "
                    f"({_render_counter(introduced)}): {detail}",
                    where=rule_name,
                )
            )

        # Schema comparison only makes sense when both sides resolve.
        if not errors_before and not errors_after:
            attrs_before = _root_attributes(before, self.catalog)
            attrs_after = _root_attributes(after, self.catalog)
            if (
                attrs_before is not None
                and attrs_after is not None
                and attrs_before != attrs_after
            ):
                lost = sorted(attrs_before - attrs_after)
                gained = sorted(attrs_after - attrs_before)
                out.append(
                    make_diagnostic(
                        "RW002",
                        "rule changed the plan's output attributes: "
                        f"lost {lost or '[]'}, gained {gained or '[]'}",
                        where=rule_name,
                    )
                )

        prefs_before = Counter(before.preferences())
        prefs_after = Counter(after.preferences())
        if prefs_before != prefs_after:
            out.append(
                make_diagnostic(
                    "RW003",
                    "rule changed the preference multiset: "
                    f"lost {_render_names(prefs_before - prefs_after)}, "
                    f"gained {_render_names(prefs_after - prefs_before)}",
                    where=rule_name,
                )
            )

        leaves_before = _relation_leaves(before)
        leaves_after = _relation_leaves(after)
        if leaves_before != leaves_after:
            out.append(
                make_diagnostic(
                    "RW004",
                    "rule changed the base-relation multiset: "
                    f"lost {_render_counter(leaves_before - leaves_after)}, "
                    f"gained {_render_counter(leaves_after - leaves_before)}",
                    where=rule_name,
                )
            )
        return out


def _error_codes(diagnostics: list[Diagnostic]) -> Counter:
    return Counter(d.code for d in diagnostics if d.severity is Severity.ERROR)


def _root_attributes(plan: PlanNode, catalog: Catalog) -> frozenset[str] | None:
    try:
        return frozenset(a.lower() for a in plan.schema(catalog).attribute_names)
    except ReproError:
        return None


def _relation_leaves(plan: PlanNode) -> Counter:
    return Counter(
        (node.name, node.alias)
        for node in plan.walk()
        if isinstance(node, Relation)
    )


def _render_counter(counter: Counter) -> str:
    if not counter:
        return "[]"
    return ", ".join(
        f"{key}×{count}" if count > 1 else f"{key}"
        for key, count in sorted(counter.items(), key=lambda kv: str(kv[0]))
    )


def _render_names(counter: Counter) -> str:
    if not counter:
        return "[]"
    return ", ".join(
        f"{pref.name}×{count}" if count > 1 else pref.name
        for pref, count in sorted(counter.items(), key=lambda kv: kv[0].name)
    )
