"""Diagnostic codes shared by the plan verifier, rewrite auditor and linter.

Every finding any static-analysis layer produces is a :class:`Diagnostic`
with a stable code from :data:`CATALOG`; the catalog is the single source of
truth for severity and one-line summaries (``docs/STATIC_ANALYSIS.md``
documents each code with examples).  Codes are grouped by layer:

* ``PV1xx`` — plan-verifier invariants (Properties 4.1–4.4 preconditions);
* ``PV2xx`` — informational plan-quality notes emitted by optimizer rules;
* ``PV3xx`` — partition/columnar plan-verifier invariants (split soundness);
* ``RWxxx`` — rewrite-auditor invariant-preservation failures;
* ``LNxxx`` — source-code lint findings (``LN3xx``: fork/ambient-state safety,
  ``LN4xx``: serving-layer cache-coherence discipline);
* ``SANxxx`` — concurrency-sanitizer findings (lock order, COW discipline,
  WAL durability protocol) from :mod:`~repro.analysis_static.sanitizer`.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class Severity(Enum):
    """How bad a diagnostic is.

    ``ERROR`` findings make a plan unsound (strict mode refuses them);
    ``WARNING`` findings are legal but suspicious (wasted scores, unordered
    chains); ``INFO`` findings record facts a rewrite could not act on.
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"


#: code -> (severity, one-line summary).  Keep in sync with
#: ``docs/STATIC_ANALYSIS.md``; the doc test cross-checks membership.
CATALOG: dict[str, tuple[Severity, str]] = {
    # -- plan verifier -------------------------------------------------------
    "PV100": (Severity.ERROR, "schema fault: an attribute or schema cannot be resolved"),
    "PV101": (Severity.ERROR, "score/conf selection below a prefer operator (Property 4.1)"),
    "PV102": (Severity.ERROR, "top-k filtering below a prefer operator"),
    "PV103": (Severity.ERROR, "prefer attributes unresolvable in its input (Property 4.4)"),
    "PV104": (Severity.WARNING, "prefer owner ambiguous: attributes resolve on both join inputs"),
    "PV105": (Severity.WARNING, "prefer chain not in ascending selectivity order (Property 4.3)"),
    "PV106": (Severity.ERROR, "set-operation inputs are not union-compatible"),
    "PV107": (Severity.WARNING, "prefer in the discarded input of a difference: scores never reach the root"),
    "PV108": (Severity.ERROR, "prefer operators disagree on their aggregate function F"),
    "PV109": (Severity.WARNING, "prefer in the unpreserved input of a left outer join"),
    "PV110": (Severity.WARNING, "score/conf filter over an input that evaluates no preference"),
    # -- optimizer rule notes ------------------------------------------------
    "PV201": (Severity.INFO, "projection pushdown blocked: positional inputs"),
    "PV202": (Severity.INFO, "plan is not partition-parallelizable; runs as one serial fragment"),
    # -- partition/columnar plan verifier ------------------------------------
    "PV301": (Severity.ERROR, "partition leaf path crosses a non-row-local operator"),
    "PV302": (Severity.ERROR, "filtering suffix mismatch: local cut not re-applied globally"),
    "PV303": (Severity.ERROR, "partition ranges are not a disjoint contiguous cover of the leaf rows"),
    "PV304": (Severity.ERROR, "partition split is stale or dangling: leaf path/rows disagree with the plan"),
    # -- rewrite auditor -----------------------------------------------------
    "RW001": (Severity.ERROR, "rewrite introduced new verifier errors"),
    "RW002": (Severity.ERROR, "rewrite changed the plan's output attributes"),
    "RW003": (Severity.ERROR, "rewrite changed the plan's preference multiset"),
    "RW004": (Severity.ERROR, "rewrite changed the plan's base-relation multiset"),
    # -- code lint -----------------------------------------------------------
    "LN100": (Severity.ERROR, "source file does not parse"),
    "LN101": (Severity.ERROR, "raw == / != on a score value; use the epsilon helper"),
    "LN102": (Severity.ERROR, "bottom score-pair literal outside core/scorepair.py"),
    "LN103": (Severity.ERROR, "strict plan-node dispatch is missing subclasses"),
    "LN104": (Severity.ERROR, "aggregate registry mutated outside register_aggregate"),
    "LN105": (Severity.ERROR, "registered aggregate function violates the algebraic laws"),
    "LN201": (Severity.WARNING, "per-preference prefer loop; use the fused group API (prefer_group/apply_prefer_group)"),
    "LN301": (Severity.ERROR, "module-state mutation reachable from a worker entry point (fork-unsafe)"),
    "LN302": (Severity.ERROR, "unknown fault-injection site literal; a typo here silently never fires"),
    "LN303": (Severity.ERROR, "shared-memory segment created outside the columnar/shm registry"),
    "LN304": (Severity.ERROR, "ambient ContextVar state read in a worker without an explicit use_* override"),
    "LN305": (Severity.ERROR, "direct file I/O in a durability module bypasses the crash-torture VFS"),
    "LN401": (Severity.ERROR, "serving-layer store/db mutation bypasses the single-writer commit feed; caches go stale"),
    # -- concurrency sanitizer -----------------------------------------------
    "SAN101": (Severity.ERROR, "lock-order cycle: inconsistent acquisition order can deadlock"),
    "SAN102": (Severity.ERROR, "re-entrant acquisition of a non-reentrant lock by the same thread"),
    "SAN103": (Severity.ERROR, "lock released by a thread that does not hold it"),
    "SAN201": (Severity.ERROR, "write to a snapshot-captured table without a copy-on-write fork"),
    "SAN202": (Severity.ERROR, "in-place mutation of a snapshot-shared index"),
    "SAN301": (Severity.ERROR, "WAL LSN discontinuity: records would not replay contiguously"),
    "SAN302": (Severity.ERROR, "WAL append acknowledged without the promised flush/fsync"),
    "SAN303": (Severity.ERROR, "concurrent WAL appends without mutual exclusion"),
}


@dataclass(frozen=True)
class Diagnostic:
    """One static-analysis finding.

    ``where`` locates the finding: a plan-node label for verifier codes, a
    ``file:line`` for lint codes, a rule name for auditor codes.
    """

    code: str
    severity: Severity
    message: str
    where: str = ""

    def __str__(self) -> str:
        location = f" at {self.where}" if self.where else ""
        return f"{self.code} [{self.severity.value}]{location}: {self.message}"


def make_diagnostic(code: str, message: str, where: str = "") -> Diagnostic:
    """Build a :class:`Diagnostic`, pulling the severity from :data:`CATALOG`."""
    severity, _summary = CATALOG[code]
    return Diagnostic(code, severity, message, where)
