"""AST-based source lint enforcing repo-wide algebraic-safety invariants.

Run as ``python -m repro.lint [paths...]`` (default: the installed ``repro``
package).  Rules (catalog codes LN1xx, see ``docs/STATIC_ANALYSIS.md``):

* **LN101** — no raw ``==`` / ``!=`` where an operand is a score value
  (a name ending in ``score``): combined scores are floats built from
  arithmetic, so exact comparison is a latent bug; use
  :func:`repro.core.scorepair.scores_close` or ``ScorePair.approx_equal``.
* **LN102** — no literal ⊥-pair construction (``ScorePair(None, ...)`` /
  ``pair(BOTTOM, ...)``) outside ``core/scorepair.py``: use the
  ``IDENTITY`` constant or the ``bottom()`` helper so the representation
  of ⊥ stays a single-module decision.
* **LN103** — strict plan-node dispatchers (a function whose last statement
  raises, after ``isinstance`` checks over several ``PlanNode`` subclasses)
  must cover *every* concrete subclass; a new node class added to
  ``plan/nodes.py`` then shows up as a lint error in every visitor that
  does not handle it.
* **LN104** — the aggregate registry in ``core/aggregates.py`` may only be
  mutated through :func:`repro.core.aggregates.register_aggregate`, which
  law-checks the function first.
* **LN105** — every registered aggregate function must satisfy Definition
  3's laws (associativity, commutativity, identity ``⟨⊥,0⟩``); checked by
  re-running the law suite against the live registry.
* **LN201** *(warning)* — a ``for`` loop over a preference collection whose
  body applies preferences one at a time (``prefer`` / ``apply_prefer`` /
  ``apply_prefer_to_rows`` / ``prefer_scores_from_rows``) re-scans the input
  once per preference, O(|R|·|λ|).  Use the fused group API
  (:func:`repro.pexec.batchscore.prefer_group` /
  ``apply_prefer_group``) — or mark intentional reference folds with
  ``# noqa: LN201``.

Suppression: append ``# noqa: LN103`` (or a comma-separated code list, or a
bare ``# noqa``) to the reported line.
"""

from __future__ import annotations

import argparse
import ast
import os
import re
from dataclasses import dataclass

#: ``# noqa`` / ``# noqa: LN101, LN103`` at end of line.
_NOQA = re.compile(r"#\s*noqa(?::\s*(?P<codes>[A-Z0-9, ]+))?", re.IGNORECASE)

#: Minimum number of distinct concrete plan classes an isinstance chain must
#: mention before LN103 treats the function as a plan-node dispatcher.
_DISPATCH_THRESHOLD = 3

#: Single-preference application entry points; calling one of these inside a
#: loop over a preference collection is the LN201 anti-pattern.
_PER_PREFERENCE_CALLS = frozenset(
    {"prefer", "apply_prefer", "apply_prefer_to_rows", "prefer_scores_from_rows"}
)

#: Names that read as "a collection of preferences" when looped over.
_PREFERENCE_COLLECTION_NAMES = frozenset({"prefs", "pool", "preference_pool"})


@dataclass(frozen=True)
class LintFinding:
    """One lint rule violation at a source location."""

    path: str
    line: int
    code: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.code} {self.message}"


# ---------------------------------------------------------------------------
# Plan-node class discovery (LN103)
# ---------------------------------------------------------------------------


def _plan_class_coverage() -> tuple[frozenset[str], dict[str, frozenset[str]]]:
    """Returns (all concrete PlanNode class names, name -> concrete names it
    covers in an isinstance check).  Discovered dynamically so the lint rule
    tracks ``plan/nodes.py`` without a hand-maintained list."""
    from ..plan.nodes import PlanNode

    coverage: dict[str, frozenset[str]] = {}

    def collect(cls: type) -> set[str]:
        covered: set[str] = set()
        if cls is not PlanNode and not cls.__name__.startswith("_"):
            covered.add(cls.__name__)
        for sub in cls.__subclasses__():
            covered |= collect(sub)
        coverage[cls.__name__] = frozenset(covered)
        return covered

    concrete = frozenset(collect(PlanNode))
    return concrete, coverage


# ---------------------------------------------------------------------------
# Per-file AST checks
# ---------------------------------------------------------------------------


def _is_score_name(node: ast.AST) -> bool:
    if isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Attribute):
        name = node.attr
    else:
        return False
    return name.lower().endswith("score")


def _callee_name(func: ast.AST) -> str | None:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _is_bottom_literal(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant) and node.value is None:
        return True
    return _callee_name(node) == "BOTTOM" or (
        isinstance(node, ast.Name) and node.id == "BOTTOM"
    )


def _isinstance_class_names(tree: ast.AST) -> set[str]:
    """All class names mentioned as the second argument of ``isinstance``."""
    names: set[str] = set()
    for node in ast.walk(tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "isinstance"
            and len(node.args) == 2
        ):
            continue
        spec = node.args[1]
        candidates = spec.elts if isinstance(spec, ast.Tuple) else [spec]
        for candidate in candidates:
            name = _callee_name(candidate) or (
                candidate.id if isinstance(candidate, ast.Name) else None
            )
            if name:
                names.add(name)
    return names


class _FileChecker(ast.NodeVisitor):
    def __init__(self, path: str, concrete: frozenset[str], coverage: dict[str, frozenset[str]]):
        self.path = path
        self.concrete = concrete
        self.coverage = coverage
        self.findings: list[LintFinding] = []
        self._function_stack: list[str] = []
        normalized = path.replace(os.sep, "/")
        self.is_scorepair = normalized.endswith("core/scorepair.py")

    def _report(self, node: ast.AST, code: str, message: str) -> None:
        self.findings.append(
            LintFinding(self.path, getattr(node, "lineno", 0), code, message)
        )

    # -- LN101: raw equality on scores --------------------------------------

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for index, op in enumerate(node.ops):
            if isinstance(op, (ast.Eq, ast.NotEq)) and (
                _is_score_name(operands[index]) or _is_score_name(operands[index + 1])
            ):
                self._report(
                    node,
                    "LN101",
                    "raw == / != on a score value; use scores_close() or "
                    "ScorePair.approx_equal (floats from combined pairs)",
                )
        self.generic_visit(node)

    # -- LN102: ⊥-pair literals ---------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        if not self.is_scorepair and _callee_name(node.func) in ("ScorePair", "pair"):
            first_arg: ast.AST | None = node.args[0] if node.args else None
            for keyword in node.keywords:
                if keyword.arg == "score":
                    first_arg = keyword.value
            if first_arg is not None and _is_bottom_literal(first_arg):
                self._report(
                    node,
                    "LN102",
                    "literal ⊥ score-pair construction outside core/scorepair.py; "
                    "use IDENTITY or bottom()",
                )
        self.generic_visit(node)

    # -- LN103: exhaustive plan-node dispatch -------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_dispatch(node)
        self._function_stack.append(node.name)
        self.generic_visit(node)
        self._function_stack.pop()

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def _check_dispatch(self, node: ast.FunctionDef) -> None:
        last = node.body[-1]
        if not isinstance(last, ast.Raise):
            return
        mentioned = _isinstance_class_names(node)
        covered: set[str] = set()
        for name in mentioned:
            covered |= self.coverage.get(name, frozenset())
        if len(covered) < _DISPATCH_THRESHOLD:
            return
        missing = sorted(self.concrete - covered)
        if missing:
            self.findings.append(
                LintFinding(
                    self.path,
                    last.lineno,
                    "LN103",
                    f"strict plan-node dispatch in {node.name}() misses "
                    f"{', '.join(missing)}; handle them or fall through "
                    "without raising",
                )
            )

    # -- LN201: per-preference prefer loop ----------------------------------

    def visit_For(self, node: ast.For) -> None:
        if _iterates_preferences(node.iter):
            call = self._per_preference_call(node)
            if call is not None:
                self.findings.append(
                    LintFinding(
                        self.path,
                        node.lineno,
                        "LN201",
                        f"loop over preferences applies {call}() once per "
                        "preference (O(|R|·|λ|) passes); use the fused group "
                        "API (prefer_group / apply_prefer_group / "
                        "prefer_seq) instead",
                    )
                )
        self.generic_visit(node)

    def _per_preference_call(self, loop: ast.For) -> str | None:
        for statement in loop.body:
            for node in ast.walk(statement):
                if isinstance(node, ast.Call):
                    name = _callee_name(node.func)
                    # Every single-preference *application* takes the input
                    # relation plus the preference; one-argument calls (e.g.
                    # the plan builder's .prefer(p)) construct plan nodes.
                    if name in _PER_PREFERENCE_CALLS and len(node.args) >= 2:
                        return name
        return None

    # -- LN104: registry mutation -------------------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_registry_target(target, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_registry_target(node.target, node)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._check_registry_target(target, node)
        self.generic_visit(node)

    def _check_registry_target(self, target: ast.AST, node: ast.AST) -> None:
        if (
            isinstance(target, ast.Subscript)
            and _registry_ref(target.value)
            and not self._inside_registrar()
        ):
            self._report(
                node,
                "LN104",
                "aggregate registry mutated directly; go through "
                "register_aggregate() so the laws are checked",
            )

    def _inside_registrar(self) -> bool:
        return "register_aggregate" in self._function_stack

    def _check_registry_method(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in ("update", "setdefault", "pop", "clear")
            and _registry_ref(func.value)
            and not self._inside_registrar()
        ):
            self._report(
                node,
                "LN104",
                f"aggregate registry mutated via .{func.attr}(); go through "
                "register_aggregate() so the laws are checked",
            )

    def generic_visit(self, node: ast.AST) -> None:
        if isinstance(node, ast.Call):
            self._check_registry_method(node)
        super().generic_visit(node)


def _iterates_preferences(expr: ast.AST) -> bool:
    """Does this ``for`` iterable read as a collection of preferences?"""
    if isinstance(expr, ast.Name):
        name = expr.id
    elif isinstance(expr, ast.Attribute):
        name = expr.attr
    elif isinstance(expr, ast.Call):
        callee = _callee_name(expr.func)
        if callee == "preferences":  # e.g. plan.preferences()
            return True
        if callee in ("reversed", "sorted", "list", "tuple", "iter") and expr.args:
            return _iterates_preferences(expr.args[0])
        return False
    else:
        return False
    lowered = name.lower()
    return lowered.endswith("preferences") or lowered in _PREFERENCE_COLLECTION_NAMES


def _registry_ref(node: ast.AST) -> bool:
    return (isinstance(node, ast.Name) and node.id == "_REGISTRY") or (
        isinstance(node, ast.Attribute) and node.attr == "_REGISTRY"
    )


# ---------------------------------------------------------------------------
# Runner
# ---------------------------------------------------------------------------


def _suppressed_codes(source_line: str) -> set[str] | None:
    """Codes suppressed on this line; empty set means "suppress everything"."""
    match = _NOQA.search(source_line)
    if match is None:
        return None
    codes = match.group("codes")
    if not codes:
        return set()
    return {c.strip().upper() for c in codes.split(",") if c.strip()}


def lint_source(path: str, source: str) -> list[LintFinding]:
    """Lint one file's text; applies ``# noqa`` suppressions."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as err:
        return [LintFinding(path, err.lineno or 0, "LN100", f"syntax error: {err.msg}")]
    concrete, coverage = _plan_class_coverage()
    checker = _FileChecker(path, concrete, coverage)
    checker.visit(tree)
    lines = source.splitlines()
    kept = []
    for finding in checker.findings:
        line = lines[finding.line - 1] if 0 < finding.line <= len(lines) else ""
        suppressed = _suppressed_codes(line)
        if suppressed is not None and (not suppressed or finding.code in suppressed):
            continue
        kept.append(finding)
    return kept


def _iter_python_files(paths: list[str]):
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = [d for d in dirnames if d != "__pycache__"]
                for filename in sorted(filenames):
                    if filename.endswith(".py"):
                        yield os.path.join(dirpath, filename)
        elif path.endswith(".py"):
            yield path


def _check_registered_aggregates() -> list[LintFinding]:
    """LN105: re-run the Definition 3 law suite against the live registry."""
    from ..core import aggregates

    findings = []
    for message in aggregates.verify_registered_aggregates():
        findings.append(LintFinding(aggregates.__file__, 0, "LN105", message))
    return findings


def lint_paths(paths: list[str], *, check_aggregates: bool = True) -> list[LintFinding]:
    """Lint every ``.py`` file under *paths* plus the semantic checks."""
    findings: list[LintFinding] = []
    for filename in _iter_python_files(paths):
        with open(filename, encoding="utf-8") as handle:
            findings.extend(lint_source(filename, handle.read()))
    if check_aggregates:
        findings.extend(_check_registered_aggregates())
    return findings


def run_lint(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code (0 = clean)."""
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description="algebraic-safety lint for the repro source tree",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the repro package)",
    )
    args = parser.parse_args(argv)
    paths = args.paths
    if not paths:
        package_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        paths = [package_root]
    findings = lint_paths(paths)
    for finding in findings:
        print(finding)
    if findings:
        print(f"{len(findings)} finding(s)")
        return 1
    print("lint: clean")
    return 0


main = run_lint
