"""AST-based source lint enforcing repo-wide algebraic-safety invariants.

Run as ``python -m repro.lint [paths...]`` (default: the installed ``repro``
package).  Rules (catalog codes LN1xx, see ``docs/STATIC_ANALYSIS.md``):

* **LN101** — no raw ``==`` / ``!=`` where an operand is a score value
  (a name ending in ``score``): combined scores are floats built from
  arithmetic, so exact comparison is a latent bug; use
  :func:`repro.core.scorepair.scores_close` or ``ScorePair.approx_equal``.
* **LN102** — no literal ⊥-pair construction (``ScorePair(None, ...)`` /
  ``pair(BOTTOM, ...)``) outside ``core/scorepair.py``: use the
  ``IDENTITY`` constant or the ``bottom()`` helper so the representation
  of ⊥ stays a single-module decision.
* **LN103** — strict plan-node dispatchers (a function whose last statement
  raises, after ``isinstance`` checks over several ``PlanNode`` subclasses)
  must cover *every* concrete subclass; a new node class added to
  ``plan/nodes.py`` then shows up as a lint error in every visitor that
  does not handle it.
* **LN104** — the aggregate registry in ``core/aggregates.py`` may only be
  mutated through :func:`repro.core.aggregates.register_aggregate`, which
  law-checks the function first.
* **LN105** — every registered aggregate function must satisfy Definition
  3's laws (associativity, commutativity, identity ``⟨⊥,0⟩``); checked by
  re-running the law suite against the live registry.
* **LN201** *(warning)* — a ``for`` loop over a preference collection whose
  body applies preferences one at a time (``prefer`` / ``apply_prefer`` /
  ``apply_prefer_to_rows`` / ``prefer_scores_from_rows``) re-scans the input
  once per preference, O(|R|·|λ|).  Use the fused group API
  (:func:`repro.pexec.batchscore.prefer_group` /
  ``apply_prefer_group``) — or mark intentional reference folds with
  ``# noqa: LN201``.

Concurrency/process-safety rules (LN3xx), added with the sanitizer pass:

* **LN301** — a function reachable from a *process-pool worker entry point*
  (first argument of ``apply_async`` / ``imap`` / ``starmap`` / … or a
  ``Process(target=...)``) mutates module state through a ``global``
  statement.  Under ``fork`` the mutation is silently lost to the driver;
  under ``spawn`` it never happens at all — either way it is a latent
  divergence between in-process and pooled execution.
* **LN302** — a fault-site string literal (``FaultSpec(...)`` /
  ``FaultPlan.transient/latency/corrupting(...)`` / ``.at("...")`` /
  ``.corrupts("...")`` / any ``site=`` keyword or ``*_SITE`` constant) is
  not in :data:`repro.resilience.faults.KNOWN_SITES` and is not a
  ``prefix*`` pattern matching one.  A typo'd site never fires, and a
  passing chaos suite cannot tell that from genuine robustness.
* **LN303** — a ``SharedMemory(create=True, ...)`` segment is created
  outside ``columnar/shm.py``.  That module owns segment lifecycle
  (tracking + unlink); ad-hoc segments leak ``/dev/shm`` space on error
  paths.
* **LN305** — a durability module (``engine/persist.py``, ``serve/wal.py``,
  ``serve/server.py``) performs direct file I/O — a bare ``open(...)`` call
  or ``os.fsync`` / ``os.replace`` / ``os.remove`` — instead of going
  through the ambient VFS (:mod:`repro.resilience.vfs`).  Bypassing the
  VFS makes the I/O invisible to the crash-torture harness: its fault
  injection and power-cut modelling can no longer prove that code path
  recovers.
* **LN304** — a worker-reachable function reads ambient context
  (``current_faults`` / ``current_guard`` / ``current_tracer`` /
  ``batch_scoring_enabled``) outside a ``with use_*(...)`` block that
  installs the matching value.  Worker processes do not inherit the
  driver's contextvars usefully (``spawn`` loses them entirely; ``fork``
  freezes them at pool-creation time), so the read must be explicitly
  overridden in the worker.

Serving-layer cache-coherence rules (LN4xx), added with the result cache:

* **LN401** — a serving-layer module (under ``serve/`` or ``cache/``, other
  than ``serve/server.py`` itself) mutates the shared ``PreferenceStore``
  or ``Database`` directly (``<x>.store.add/add_all/remove/clear(...)``,
  ``<x>.db.insert/insert_many/create_table/drop_table(...)``).  Every
  committed mutation must flow through the :class:`PreferenceServer`
  single-writer mutators, whose commit feed (``add_listener``) is what
  invalidates the digest-keyed result cache and patches the maintained
  score relations — a bypassing write leaves both silently stale.

Suppression: append ``# noqa: LN103`` (or a comma-separated code list, or a
bare ``# noqa``) to the reported line.
"""

from __future__ import annotations

import argparse
import ast
import os
import re
from dataclasses import dataclass

#: ``# noqa`` / ``# noqa: LN101, LN103`` at end of line.
_NOQA = re.compile(r"#\s*noqa(?::\s*(?P<codes>[A-Z0-9, ]+))?", re.IGNORECASE)

#: Minimum number of distinct concrete plan classes an isinstance chain must
#: mention before LN103 treats the function as a plan-node dispatcher.
_DISPATCH_THRESHOLD = 3

#: Single-preference application entry points; calling one of these inside a
#: loop over a preference collection is the LN201 anti-pattern.
_PER_PREFERENCE_CALLS = frozenset(
    {"prefer", "apply_prefer", "apply_prefer_to_rows", "prefer_scores_from_rows"}
)

#: Names that read as "a collection of preferences" when looped over.
_PREFERENCE_COLLECTION_NAMES = frozenset({"prefs", "pool", "preference_pool"})

#: Method names that hand a function to a *process* pool (LN301/LN304 scope).
#: Thread executors (``submit`` on a ThreadPoolExecutor) are deliberately
#: out of scope: threads share the driver's memory and its contextvars
#: behave predictably there.
_WORKER_DISPATCH_ATTRS = frozenset(
    {"apply_async", "map_async", "starmap_async", "imap", "imap_unordered", "starmap"}
)

#: Ambient-context readers and the ``use_*`` context manager that must
#: lexically enclose them inside worker-reachable code (LN304).
_AMBIENT_READS = {
    "current_faults": "use_faults",
    "current_guard": "use_guard",
    "current_tracer": "use_tracer",
    "batch_scoring_enabled": "use_batch_scoring",
}

#: Modules whose file I/O must flow through the ambient VFS (LN305).
_DURABILITY_MODULES = ("engine/persist.py", "serve/wal.py", "serve/server.py")

#: ``os.<attr>`` calls LN305 flags inside durability modules.
_DIRECT_OS_IO = frozenset({"fsync", "replace", "remove"})

#: ``<x>.store.<method>(...)`` calls LN401 flags in serving-layer modules:
#: PreferenceStore mutators that the PreferenceServer single-writer path
#: wraps with WAL logging and commit-feed notification.
_STORE_MUTATORS = frozenset({"add", "add_all", "remove", "clear"})

#: ``<x>.db.<method>(...)`` calls LN401 flags in serving-layer modules.
_DB_MUTATORS = frozenset({"insert", "insert_many", "create_table", "drop_table"})


@dataclass(frozen=True)
class LintFinding:
    """One lint rule violation at a source location."""

    path: str
    line: int
    code: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.code} {self.message}"


# ---------------------------------------------------------------------------
# Plan-node class discovery (LN103)
# ---------------------------------------------------------------------------


def _plan_class_coverage() -> tuple[frozenset[str], dict[str, frozenset[str]]]:
    """Returns (all concrete PlanNode class names, name -> concrete names it
    covers in an isinstance check).  Discovered dynamically so the lint rule
    tracks ``plan/nodes.py`` without a hand-maintained list."""
    from ..plan.nodes import PlanNode

    coverage: dict[str, frozenset[str]] = {}

    def collect(cls: type) -> set[str]:
        covered: set[str] = set()
        # Only classes defined inside the package count as plan nodes a
        # dispatcher must cover — test suites subclass PlanNode to exercise
        # fallback paths, and those must not poison LN103 for everyone.
        if (
            cls is not PlanNode
            and not cls.__name__.startswith("_")
            and cls.__module__.split(".")[0] == "repro"
        ):
            covered.add(cls.__name__)
        for sub in cls.__subclasses__():
            covered |= collect(sub)
        coverage[cls.__name__] = frozenset(covered)
        return covered

    concrete = frozenset(collect(PlanNode))
    return concrete, coverage


# ---------------------------------------------------------------------------
# Per-file AST checks
# ---------------------------------------------------------------------------


def _is_score_name(node: ast.AST) -> bool:
    if isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Attribute):
        name = node.attr
    else:
        return False
    return name.lower().endswith("score")


def _callee_name(func: ast.AST) -> str | None:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _is_bottom_literal(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant) and node.value is None:
        return True
    return _callee_name(node) == "BOTTOM" or (
        isinstance(node, ast.Name) and node.id == "BOTTOM"
    )


def _isinstance_class_names(tree: ast.AST) -> set[str]:
    """All class names mentioned as the second argument of ``isinstance``."""
    names: set[str] = set()
    for node in ast.walk(tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "isinstance"
            and len(node.args) == 2
        ):
            continue
        spec = node.args[1]
        candidates = spec.elts if isinstance(spec, ast.Tuple) else [spec]
        for candidate in candidates:
            name = _callee_name(candidate) or (
                candidate.id if isinstance(candidate, ast.Name) else None
            )
            if name:
                names.add(name)
    return names


class _FileChecker(ast.NodeVisitor):
    def __init__(self, path: str, concrete: frozenset[str], coverage: dict[str, frozenset[str]]):
        self.path = path
        self.concrete = concrete
        self.coverage = coverage
        self.findings: list[LintFinding] = []
        self._function_stack: list[str] = []
        normalized = path.replace(os.sep, "/")
        self.is_scorepair = normalized.endswith("core/scorepair.py")
        self.is_shm = normalized.endswith("columnar/shm.py")
        self.is_durability = normalized.endswith(_DURABILITY_MODULES)
        # LN401 scope: the serving layer, minus the single-writer path itself
        # (serve/server.py owns the mutex, the WAL and the commit feed — its
        # store/db calls *are* the sanctioned write path).
        self.is_serving = (
            "/serve/" in normalized or "/cache/" in normalized
        ) and not normalized.endswith("serve/server.py")

    def _report(self, node: ast.AST, code: str, message: str) -> None:
        self.findings.append(
            LintFinding(self.path, getattr(node, "lineno", 0), code, message)
        )

    # -- LN101: raw equality on scores --------------------------------------

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for index, op in enumerate(node.ops):
            if isinstance(op, (ast.Eq, ast.NotEq)) and (
                _is_score_name(operands[index]) or _is_score_name(operands[index + 1])
            ):
                self._report(
                    node,
                    "LN101",
                    "raw == / != on a score value; use scores_close() or "
                    "ScorePair.approx_equal (floats from combined pairs)",
                )
        self.generic_visit(node)

    # -- LN102: ⊥-pair literals ---------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        if not self.is_scorepair and _callee_name(node.func) in ("ScorePair", "pair"):
            first_arg: ast.AST | None = node.args[0] if node.args else None
            for keyword in node.keywords:
                if keyword.arg == "score":
                    first_arg = keyword.value
            if first_arg is not None and _is_bottom_literal(first_arg):
                self._report(
                    node,
                    "LN102",
                    "literal ⊥ score-pair construction outside core/scorepair.py; "
                    "use IDENTITY or bottom()",
                )
        self._check_fault_site_call(node)
        self._check_shared_memory(node)
        self._check_durability_io(node)
        self._check_unhooked_mutation(node)
        self.generic_visit(node)

    # -- LN401: serving-layer writes that bypass the commit feed -------------

    def _check_unhooked_mutation(self, node: ast.Call) -> None:
        if not self.is_serving:
            return
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        owner = func.value
        if isinstance(owner, ast.Attribute):
            owner_name = owner.attr
        elif isinstance(owner, ast.Name):
            owner_name = owner.id
        else:
            return
        if owner_name == "store" and func.attr in _STORE_MUTATORS:
            what = "PreferenceStore"
        elif owner_name == "db" and func.attr in _DB_MUTATORS:
            what = "Database"
        else:
            return
        self._report(
            node,
            "LN401",
            f"{what} mutated via .{owner_name}.{func.attr}() outside the "
            "server's single-writer path; route the write through the "
            "PreferenceServer mutators so the commit feed invalidates the "
            "result cache and patches maintained score relations",
        )

    # -- LN305: direct I/O bypassing the VFS in durability modules -----------

    def _check_durability_io(self, node: ast.Call) -> None:
        if not self.is_durability:
            return
        func = node.func
        if isinstance(func, ast.Name) and func.id == "open":
            self._report(
                node,
                "LN305",
                "direct open() in a durability module bypasses the VFS; use "
                "current_vfs().open() so crash-torture can inject faults here",
            )
        elif (
            isinstance(func, ast.Attribute)
            and func.attr in _DIRECT_OS_IO
            and isinstance(func.value, ast.Name)
            and func.value.id == "os"
        ):
            self._report(
                node,
                "LN305",
                f"direct os.{func.attr}() in a durability module bypasses the "
                "VFS; use the current_vfs() primitive so crash-torture can "
                "inject faults here",
            )

    # -- LN302: fault-site literal validation --------------------------------

    def _check_fault_site_call(self, node: ast.Call) -> None:
        callee = _callee_name(node.func)
        site_node: ast.AST | None = None
        if callee == "FaultSpec" or (
            callee in ("transient", "latency", "corrupting")
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "FaultPlan"
        ):
            site_node = node.args[0] if node.args else None
        elif callee in ("at", "corrupts") and len(node.args) == 1:
            # Fault-plan visits; require a dotted literal so unrelated
            # .at()/.corrupts() methods never false-positive.
            arg = node.args[0]
            if (
                isinstance(arg, ast.Constant)
                and isinstance(arg.value, str)
                and "." in arg.value
            ):
                site_node = arg
        for keyword in node.keywords:
            if keyword.arg == "site":
                site_node = keyword.value
        if (
            site_node is not None
            and isinstance(site_node, ast.Constant)
            and isinstance(site_node.value, str)
        ):
            self._check_site(node, site_node.value)

    def _check_site(self, node: ast.AST, site: str) -> None:
        if not _is_known_site(site):
            self._report(
                node,
                "LN302",
                f"unknown fault site {site!r}: not in "
                "repro.resilience.faults.KNOWN_SITES (a typo'd site silently "
                "never fires)",
            )

    # -- LN303: ad-hoc shared-memory segments --------------------------------

    def _check_shared_memory(self, node: ast.Call) -> None:
        if self.is_shm or _callee_name(node.func) != "SharedMemory":
            return
        for keyword in node.keywords:
            if (
                keyword.arg == "create"
                and isinstance(keyword.value, ast.Constant)
                and keyword.value.value is True
            ):
                self._report(
                    node,
                    "LN303",
                    "SharedMemory segment created outside columnar/shm.py; "
                    "that module owns segment tracking and unlinking",
                )

    # -- LN103: exhaustive plan-node dispatch -------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_dispatch(node)
        self._check_site_defaults(node)
        self._function_stack.append(node.name)
        self.generic_visit(node)
        self._function_stack.pop()

    def _check_site_defaults(self, node: ast.FunctionDef) -> None:
        """LN302 for ``site: str = "..."`` default parameter values."""
        positional = node.args.posonlyargs + node.args.args
        defaulted = positional[len(positional) - len(node.args.defaults):]
        pairs = list(zip(defaulted, node.args.defaults))
        pairs += [
            (arg, default)
            for arg, default in zip(node.args.kwonlyargs, node.args.kw_defaults)
            if default is not None
        ]
        for arg, default in pairs:
            if (
                arg.arg == "site"
                and isinstance(default, ast.Constant)
                and isinstance(default.value, str)
            ):
                self._check_site(default, default.value)

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def _check_dispatch(self, node: ast.FunctionDef) -> None:
        last = node.body[-1]
        if not isinstance(last, ast.Raise):
            return
        mentioned = _isinstance_class_names(node)
        covered: set[str] = set()
        for name in mentioned:
            covered |= self.coverage.get(name, frozenset())
        if len(covered) < _DISPATCH_THRESHOLD:
            return
        missing = sorted(self.concrete - covered)
        if missing:
            self.findings.append(
                LintFinding(
                    self.path,
                    last.lineno,
                    "LN103",
                    f"strict plan-node dispatch in {node.name}() misses "
                    f"{', '.join(missing)}; handle them or fall through "
                    "without raising",
                )
            )

    # -- LN201: per-preference prefer loop ----------------------------------

    def visit_For(self, node: ast.For) -> None:
        if _iterates_preferences(node.iter):
            call = self._per_preference_call(node)
            if call is not None:
                self.findings.append(
                    LintFinding(
                        self.path,
                        node.lineno,
                        "LN201",
                        f"loop over preferences applies {call}() once per "
                        "preference (O(|R|·|λ|) passes); use the fused group "
                        "API (prefer_group / apply_prefer_group / "
                        "prefer_seq) instead",
                    )
                )
        self.generic_visit(node)

    def _per_preference_call(self, loop: ast.For) -> str | None:
        for statement in loop.body:
            for node in ast.walk(statement):
                if isinstance(node, ast.Call):
                    name = _callee_name(node.func)
                    # Every single-preference *application* takes the input
                    # relation plus the preference; one-argument calls (e.g.
                    # the plan builder's .prefer(p)) construct plan nodes.
                    if name in _PER_PREFERENCE_CALLS and len(node.args) >= 2:
                        return name
        return None

    # -- LN104: registry mutation -------------------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_registry_target(target, node)
            # LN302 also covers `FAULT_SITE = "..."`-style constants.
            if (
                isinstance(target, ast.Name)
                and target.id.upper().endswith("SITE")
                and isinstance(node.value, ast.Constant)
                and isinstance(node.value.value, str)
            ):
                self._check_site(node, node.value.value)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_registry_target(node.target, node)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._check_registry_target(target, node)
        self.generic_visit(node)

    def _check_registry_target(self, target: ast.AST, node: ast.AST) -> None:
        if (
            isinstance(target, ast.Subscript)
            and _registry_ref(target.value)
            and not self._inside_registrar()
        ):
            self._report(
                node,
                "LN104",
                "aggregate registry mutated directly; go through "
                "register_aggregate() so the laws are checked",
            )

    def _inside_registrar(self) -> bool:
        return "register_aggregate" in self._function_stack

    def _check_registry_method(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in ("update", "setdefault", "pop", "clear")
            and _registry_ref(func.value)
            and not self._inside_registrar()
        ):
            self._report(
                node,
                "LN104",
                f"aggregate registry mutated via .{func.attr}(); go through "
                "register_aggregate() so the laws are checked",
            )

    def generic_visit(self, node: ast.AST) -> None:
        if isinstance(node, ast.Call):
            self._check_registry_method(node)
        super().generic_visit(node)


def _iterates_preferences(expr: ast.AST) -> bool:
    """Does this ``for`` iterable read as a collection of preferences?"""
    if isinstance(expr, ast.Name):
        name = expr.id
    elif isinstance(expr, ast.Attribute):
        name = expr.attr
    elif isinstance(expr, ast.Call):
        callee = _callee_name(expr.func)
        if callee == "preferences":  # e.g. plan.preferences()
            return True
        if callee in ("reversed", "sorted", "list", "tuple", "iter") and expr.args:
            return _iterates_preferences(expr.args[0])
        return False
    else:
        return False
    lowered = name.lower()
    return lowered.endswith("preferences") or lowered in _PREFERENCE_COLLECTION_NAMES


def _registry_ref(node: ast.AST) -> bool:
    return (isinstance(node, ast.Name) and node.id == "_REGISTRY") or (
        isinstance(node, ast.Attribute) and node.attr == "_REGISTRY"
    )


def _is_known_site(site: str) -> bool:
    """Is *site* (exact or ``prefix*``) in the fault-site registry?"""
    from ..resilience.faults import KNOWN_SITES

    if site.endswith("*"):
        prefix = site[:-1]
        return any(known.startswith(prefix) for known in KNOWN_SITES)
    return site in KNOWN_SITES


# ---------------------------------------------------------------------------
# Worker process safety (LN301 / LN304) — a module-level dataflow pass
# ---------------------------------------------------------------------------


def _worker_entries(tree: ast.AST) -> set[str]:
    """Function names handed to a process pool or a Process target."""
    entries: set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _WORKER_DISPATCH_ATTRS
            and node.args
            and isinstance(node.args[0], ast.Name)
        ):
            entries.add(node.args[0].id)
        if _callee_name(func) == "Process":
            for keyword in node.keywords:
                if keyword.arg == "target" and isinstance(keyword.value, ast.Name):
                    entries.add(keyword.value.id)
    return entries


def _check_worker_safety(path: str, tree: ast.AST) -> list[LintFinding]:
    """LN301/LN304 over every function reachable from a worker entry point.

    Reachability is the module-local call-graph closure by callee name —
    imported callees are out of scope (they get linted in their own module
    if that module also dispatches workers), which keeps the pass precise
    enough to run with zero suppressions over ``src``.
    """
    entries = _worker_entries(tree)
    if not entries:
        return []
    functions = {
        node.name: node
        for node in ast.walk(tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    }
    seen: set[str] = set()
    stack = [name for name in entries if name in functions]
    findings: list[LintFinding] = []
    while stack:
        name = stack.pop()
        if name in seen:
            continue
        seen.add(name)
        function = functions[name]
        findings.extend(_worker_function_findings(path, function))
        for node in ast.walk(function):
            if isinstance(node, ast.Call):
                callee = _callee_name(node.func)
                if callee in functions and callee not in seen:
                    stack.append(callee)
    return findings


def _worker_function_findings(path: str, function: ast.AST) -> list[LintFinding]:
    findings: list[LintFinding] = []

    # LN301: `global` names the function then assigns.
    declared: set[str] = set()
    for node in ast.walk(function):
        if isinstance(node, ast.Global):
            declared.update(node.names)
    if declared:
        for node in ast.walk(function):
            targets: list[ast.AST] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for target in targets:
                if isinstance(target, ast.Name) and target.id in declared:
                    findings.append(
                        LintFinding(
                            path,
                            node.lineno,
                            "LN301",
                            f"worker-reachable {function.name}() mutates module "
                            f"state ({target.id}); the mutation is lost under "
                            "fork and never happens under spawn",
                        )
                    )

    # LN304: ambient reads without a lexically enclosing use_* override.
    def visit(node: ast.AST, ambient: frozenset[str]) -> None:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            installed = set(ambient)
            for item in node.items:
                expr = item.context_expr
                if isinstance(expr, ast.Call):
                    callee = _callee_name(expr.func)
                    if callee and callee.startswith("use_"):
                        installed.add(callee)
            ambient = frozenset(installed)
        if isinstance(node, ast.Call):
            callee = _callee_name(node.func)
            required = _AMBIENT_READS.get(callee or "")
            if required is not None and required not in ambient:
                findings.append(
                    LintFinding(
                        path,
                        node.lineno,
                        "LN304",
                        f"worker-reachable {function.name}() reads ambient "
                        f"{callee}() without an enclosing {required}(...) "
                        "override; worker processes do not inherit the "
                        "driver's contextvars",
                    )
                )
        for child in ast.iter_child_nodes(node):
            visit(child, ambient)

    visit(function, frozenset())
    return findings


# ---------------------------------------------------------------------------
# Runner
# ---------------------------------------------------------------------------


def _suppressed_codes(source_line: str) -> set[str] | None:
    """Codes suppressed on this line; empty set means "suppress everything"."""
    match = _NOQA.search(source_line)
    if match is None:
        return None
    codes = match.group("codes")
    if not codes:
        return set()
    return {c.strip().upper() for c in codes.split(",") if c.strip()}


def lint_source(path: str, source: str) -> list[LintFinding]:
    """Lint one file's text; applies ``# noqa`` suppressions."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as err:
        return [LintFinding(path, err.lineno or 0, "LN100", f"syntax error: {err.msg}")]
    concrete, coverage = _plan_class_coverage()
    checker = _FileChecker(path, concrete, coverage)
    checker.visit(tree)
    checker.findings.extend(_check_worker_safety(path, tree))
    lines = source.splitlines()
    kept = []
    for finding in checker.findings:
        line = lines[finding.line - 1] if 0 < finding.line <= len(lines) else ""
        suppressed = _suppressed_codes(line)
        if suppressed is not None and (not suppressed or finding.code in suppressed):
            continue
        kept.append(finding)
    return kept


def _iter_python_files(paths: list[str]):
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = [d for d in dirnames if d != "__pycache__"]
                for filename in sorted(filenames):
                    if filename.endswith(".py"):
                        yield os.path.join(dirpath, filename)
        elif path.endswith(".py"):
            yield path


def _check_registered_aggregates() -> list[LintFinding]:
    """LN105: re-run the Definition 3 law suite against the live registry."""
    from ..core import aggregates

    findings = []
    for message in aggregates.verify_registered_aggregates():
        findings.append(LintFinding(aggregates.__file__, 0, "LN105", message))
    return findings


def lint_paths(paths: list[str], *, check_aggregates: bool = True) -> list[LintFinding]:
    """Lint every ``.py`` file under *paths* plus the semantic checks."""
    findings: list[LintFinding] = []
    for filename in _iter_python_files(paths):
        with open(filename, encoding="utf-8") as handle:
            findings.extend(lint_source(filename, handle.read()))
    if check_aggregates:
        findings.extend(_check_registered_aggregates())
    return findings


def run_lint(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code (0 = clean)."""
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description="algebraic-safety lint for the repro source tree",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the repro package)",
    )
    args = parser.parse_args(argv)
    paths = args.paths
    if not paths:
        package_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        paths = [package_root]
    findings = lint_paths(paths)
    for finding in findings:
        print(finding)
    if findings:
        print(f"{len(findings)} finding(s)")
        return 1
    print("lint: clean")
    return 0


main = run_lint
