"""PV3xx: static verification of partition-parallel plan splits.

:func:`repro.pexec.parallel.plan_partitions` rewrites one plan into a
``(worker_plan, leaf_path, merge_nodes, leaf_rows)`` split whose correctness
argument has three legs (see that module's docstring).  This pass re-derives
each leg from the split itself, so a buggy or mutated split is rejected
*before* workers fan out:

* **PV301** — every operator on the root→leaf path must be row-local for
  the chosen child (Select/Project/Prefer above child 0, either side of a
  Join, only the *left* side of a LeftJoin; a worker-side TopK is tolerated
  only as part of the local-cut discipline checked below).  Crossing
  anything else means a partition's output rows depend on rows outside its
  slice, and concatenation is no longer the serial answer.
* **PV302** — the filtering suffix peeled off the root must be re-applied
  globally: the driver's ``merge_nodes`` must match the suffix of the
  original plan operator-for-operator, and any TopK a worker pre-applies as
  a local candidate cut must reappear in the merge (local-top-k without the
  global re-cut keeps up to ``partitions × k`` rows).
* **PV303** — the partition ranges must be a disjoint, contiguous cover of
  ``[0, leaf_rows)``: a gap silently drops rows, an overlap double-counts
  score pairs through the merge fold.
* **PV304** — the split must agree with the plan it claims to come from:
  the leaf path must land on a Relation/Materialized leaf that exists, and
  ``leaf_rows`` must equal that leaf's current row count (a stale split
  re-used across a mutation slices the wrong row range).

A plan that is simply not partitionable is not an error — it degrades to
serial columnar execution — and reports as the informational **PV202**.
"""

from __future__ import annotations

from ..plan.nodes import (
    Join,
    LeftJoin,
    Materialized,
    PlanNode,
    Prefer,
    Project,
    Relation,
    Select,
    TopK,
)
from .diagnostics import Diagnostic, make_diagnostic


def _label(node: PlanNode) -> str:
    if isinstance(node, TopK):
        return f"TopK(k={node.k}, by={node.by!r})"
    if isinstance(node, Select):
        return f"Select({node.condition!r})"
    if isinstance(node, (Relation, Materialized)):
        return f"{type(node).__name__}({getattr(node, 'name', '?')!r})"
    return type(node).__name__


def _peel_suffix(plan: PlanNode) -> tuple[list[PlanNode], PlanNode]:
    """The root filtering suffix (outermost first) and the region below it."""
    suffix: list[PlanNode] = []
    region = plan
    while True:
        if isinstance(region, TopK):
            suffix.append(region)
            region = region.child
        elif isinstance(region, Select) and region.condition.references_score():
            suffix.append(region)
            region = region.child
        else:
            return suffix, region


def _same_filter(a: PlanNode, b: PlanNode) -> bool:
    """Structural equality of two suffix operators, ignoring children."""
    if isinstance(a, TopK) and isinstance(b, TopK):
        return a.k == b.k and a.by == b.by
    if isinstance(a, Select) and isinstance(b, Select):
        return a.condition == b.condition
    return False


def verify_partition_plan(
    plan: PlanNode,
    catalog,
    *,
    partitions: int = 2,
    split=None,
    ranges=None,
) -> list[Diagnostic]:
    """Check one partition split against the plan it was derived from.

    *split* defaults to ``plan_partitions(plan, catalog)`` — pass an
    explicit :class:`~repro.pexec.parallel.PartitionPlan` to vet a split
    built elsewhere (or deliberately corrupted, in tests).  *ranges*
    defaults to ``partition_ranges(split.leaf_rows, partitions)``.
    Returns the (possibly empty) list of diagnostics; only ``PV202`` among
    them is informational.
    """
    from ..pexec.parallel import partition_ranges, plan_partitions

    if split is None:
        split = plan_partitions(plan, catalog)
    if split is None:
        return [
            make_diagnostic(
                "PV202",
                "plan has no leaf reachable through row-local operators only; "
                "partition-parallel execution degrades to one serial fragment",
                _label(plan),
            )
        ]

    findings: list[Diagnostic] = []

    # -- the worker-side wrapper and the global merge suffix (PV302) ----------
    expected_suffix, _region = _peel_suffix(plan)
    worker_suffix, _worker_region = _peel_suffix(split.worker_plan)

    merge_nodes = list(split.merge_nodes)
    for node in merge_nodes:
        if isinstance(node, TopK):
            continue
        if isinstance(node, Select) and node.condition.references_score():
            continue
        findings.append(
            make_diagnostic(
                "PV302",
                f"merge node {_label(node)} is neither a TopK nor a score/conf "
                "selection; the driver merge may only re-apply the filtering suffix",
                _label(node),
            )
        )

    # The merge must re-apply the original suffix from the innermost TopK up:
    # innermost-first, the expected merge is the expected suffix minus the
    # leading run of score-selects the workers pre-applied exactly.
    inner_first = list(reversed(expected_suffix))
    position = 0
    while position < len(inner_first) and isinstance(inner_first[position], Select):
        position += 1
    expected_merge = inner_first[position:]
    if len(merge_nodes) != len(expected_merge) or not all(
        _same_filter(got, want) for got, want in zip(merge_nodes, expected_merge)
    ):
        findings.append(
            make_diagnostic(
                "PV302",
                "driver merge suffix "
                f"[{', '.join(_label(n) for n in merge_nodes)}] does not re-apply "
                "the plan's filtering suffix "
                f"[{', '.join(_label(n) for n in expected_merge)}] globally",
                _label(plan),
            )
        )

    # Worker-side pre-applied filters: any TopK a worker runs as a local cut
    # is exact only because the same TopK is re-applied over the concatenated
    # candidates; a worker TopK missing from the merge under-collects.
    seen_topk = False
    for node in worker_suffix:
        if isinstance(node, TopK):
            if seen_topk:
                findings.append(
                    make_diagnostic(
                        "PV302",
                        f"worker fragment stacks a second local cut {_label(node)}; "
                        "only the innermost TopK is an exact local prefilter",
                        _label(node),
                    )
                )
            seen_topk = True
            if not any(
                isinstance(m, TopK) and _same_filter(m, node) for m in merge_nodes
            ):
                findings.append(
                    make_diagnostic(
                        "PV302",
                        f"worker fragment pre-applies {_label(node)} as a local "
                        "candidate cut but the driver merge never re-applies it "
                        "globally; partitions would return up to partitions×k rows",
                        _label(node),
                    )
                )

    # -- leaf-path row-locality (PV301) and split consistency (PV304) ---------
    leaf = _walk_leaf_path(split.worker_plan, split.leaf_path, findings)
    if leaf is not None:
        actual_rows = _leaf_row_count(leaf, catalog, findings)
        if actual_rows is not None and actual_rows != split.leaf_rows:
            findings.append(
                make_diagnostic(
                    "PV304",
                    f"split records leaf_rows={split.leaf_rows} but the leaf "
                    f"{_label(leaf)} currently holds {actual_rows} rows; a stale "
                    "split slices the wrong row ranges",
                    _label(leaf),
                )
            )

    # -- partition ranges: disjoint contiguous cover (PV303) -------------------
    if ranges is None:
        ranges = partition_ranges(split.leaf_rows, partitions)
    _check_ranges(list(ranges), split.leaf_rows, findings)

    return findings


def _walk_leaf_path(worker_plan: PlanNode, leaf_path, findings) -> PlanNode | None:
    node = worker_plan
    for depth, child_index in enumerate(leaf_path):
        children = node.children()
        if child_index >= len(children):
            findings.append(
                make_diagnostic(
                    "PV304",
                    f"leaf path {tuple(leaf_path)} is dangling: {_label(node)} has "
                    f"{len(children)} children but step {depth} asks for child "
                    f"{child_index}",
                    _label(node),
                )
            )
            return None
        if isinstance(node, (Select, Project, Prefer, TopK)):
            ok = child_index == 0
        elif isinstance(node, Join):
            ok = child_index in (0, 1)
        elif isinstance(node, LeftJoin):
            ok = child_index == 0
        else:
            ok = False
        if not ok:
            findings.append(
                make_diagnostic(
                    "PV301",
                    f"leaf path crosses {_label(node)} through child {child_index}, "
                    "which is not row-local: a partition's output there depends on "
                    "rows outside its slice",
                    _label(node),
                )
            )
            return None
        node = children[child_index]
    if not isinstance(node, (Relation, Materialized)):
        findings.append(
            make_diagnostic(
                "PV304",
                f"leaf path ends at {_label(node)}, not a Relation/Materialized "
                "leaf; there is no row storage to slice",
                _label(node),
            )
        )
        return None
    return node


def _leaf_row_count(leaf: PlanNode, catalog, findings) -> int | None:
    if isinstance(leaf, Materialized):
        return len(leaf.rows)
    if catalog.has_table(leaf.name):
        return len(catalog.table(leaf.name))
    findings.append(
        make_diagnostic(
            "PV304",
            f"partitioned leaf names table {leaf.name!r} which does not exist "
            "in this catalog; the split was built against different state",
            _label(leaf),
        )
    )
    return None


def _check_ranges(ranges, leaf_rows: int, findings) -> None:
    expected_low = 0
    for index, bounds in enumerate(ranges):
        low, high = bounds
        if low != expected_low or high < low:
            findings.append(
                make_diagnostic(
                    "PV303",
                    f"partition {index} covers [{low}, {high}) but the cover so far "
                    f"ends at {expected_low}: "
                    + ("rows are dropped" if low > expected_low else "rows are duplicated"),
                    f"partition:{index}",
                )
            )
            return
        expected_low = high
    if expected_low != leaf_rows:
        findings.append(
            make_diagnostic(
                "PV303",
                f"partition ranges cover [0, {expected_low}) but the leaf holds "
                f"{leaf_rows} rows; the tail is never scanned",
                f"partitions:{len(ranges)}",
            )
        )
