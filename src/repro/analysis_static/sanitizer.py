"""Opt-in concurrency sanitizer: lock order, COW discipline, WAL protocol.

The sanitizer is the runtime member of the static-analysis family: it shares
the SANxxx slice of the diagnostics catalog and turns the concurrency
invariants the docs promise into machine-checked facts.  Hook sites live in
the structures the serving layer leans on —

* :class:`~repro.serve.rwlock.RWLock` acquisition/release builds a global
  **lock-order graph** (lockdep-style): a cycle means two code paths take
  the same locks in opposite orders and can deadlock under the right
  interleaving even if this run got lucky (``SAN101``); same-thread
  re-acquisition of the deliberately non-reentrant lock is reported *before*
  it deadlocks (``SAN102``), and a release by a non-holder is ``SAN103``.
* :meth:`Database.snapshot <repro.engine.database.Database.snapshot>`
  registers every captured table and index object; any later in-place write
  to one of those exact objects — which the copy-on-write fork discipline
  must never allow — is ``SAN201`` (table) / ``SAN202`` (index).
* :class:`~repro.serve.wal.PreferenceWAL` appends must assign contiguous
  LSNs (``SAN301``), must not be acknowledged before the flush — and, in
  ``sync`` mode, the fsync — happened (``SAN302``), and must be mutually
  exclusive (``SAN303``).

Like the tracer, guard and fault plan, the default is a no-op behind one
``enabled`` attribute check (:data:`NULL_SANITIZER`), so instrumentation
costs nothing when off.  Unlike those three the active sanitizer is a
**process-global**, not a ``ContextVar``: lock-order and snapshot-sharing
facts span threads by nature, so every thread must feed the same instance.

Enable it with ``REPRO_SANITIZE=1`` in the environment (picked up at import
time — this is how CI runs the stress and chaos suites as race detectors),
with the ``sanitize=`` kwarg of the chaos runners, or explicitly::

    with use_sanitizer() as sanitizer:
        ...  # run the concurrent workload
    assert not sanitizer.findings

The sanitizer deliberately keeps strong references to every lock, table and
index it has seen: findings are keyed by object identity, and letting an
``id()`` be recycled by the allocator would alias unrelated objects.  That
makes it a debugging/CI tool, not a production default.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager

from .diagnostics import Diagnostic, make_diagnostic


class Sanitizer:
    """Collects SANxxx findings from the instrumentation hooks.

    All hook methods are thread-safe and never raise: a sanitizer that
    could crash the code under test would shadow the very bugs it exists
    to report.  ``findings`` is append-only and deduplicated, so a hot
    loop hitting the same violation reports it once.
    """

    enabled = True

    def __init__(self) -> None:
        self._mutex = threading.Lock()
        self.findings: list[Diagnostic] = []
        self._seen: set[tuple] = set()
        # Lock-order state: per-thread held stacks and the global edge set.
        self._held: dict[int, list[int]] = {}
        self._edges: dict[int, set[int]] = {}
        self._labels: dict[int, str] = {}
        self._pins: dict[int, object] = {}  # identity keys must stay unique
        # COW state: objects captured by at least one snapshot.
        self._captured_tables: dict[int, str] = {}
        self._captured_indexes: dict[int, str] = {}
        # WAL state: id(wal) -> {"last", "thread", "flushed", "synced"}.
        self._wal: dict[int, dict] = {}

    # -- reporting -------------------------------------------------------------

    def _report(self, code: str, key: tuple, message: str, where: str) -> None:
        if (code, key) in self._seen:
            return
        self._seen.add((code, key))
        self.findings.append(make_diagnostic(code, message, where))

    def reset(self) -> None:
        """Drop all findings and tracked state (fresh run, same instance)."""
        with self._mutex:
            self.findings = []
            self._seen = set()
            self._held = {}
            self._edges = {}
            self._labels = {}
            self._pins = {}
            self._captured_tables = {}
            self._captured_indexes = {}
            self._wal = {}

    def _pin(self, obj: object, label: str) -> int:
        key = id(obj)
        if key not in self._pins:
            self._pins[key] = obj
            self._labels[key] = f"{label}#{len(self._labels)}"
        return key

    # -- lock order (SAN1xx) -----------------------------------------------------

    def lock_acquiring(self, lock: object, mode: str, name: str = "lock") -> None:
        """Called *before* blocking on *lock* — the only point where a
        self-deadlock (re-entrant acquisition) is still observable."""
        tid = threading.get_ident()
        with self._mutex:
            key = self._pin(lock, name)
            label = self._labels[key]
            held = self._held.get(tid, [])
            if key in held:
                self._report(
                    "SAN102",
                    (key, tid),
                    f"thread re-acquires non-reentrant {label} ({mode}) it already "
                    "holds; writer preference turns this into a self-deadlock",
                    label,
                )
                return
            for held_key in held:
                edges = self._edges.setdefault(held_key, set())
                if key in edges:
                    continue
                edges.add(key)
                cycle = self._find_cycle(key, held_key)
                if cycle is not None:
                    chain = " -> ".join(self._labels[k] for k in cycle)
                    self._report(
                        "SAN101",
                        frozenset(cycle),
                        f"lock-order cycle {chain}: another interleaving of these "
                        "acquisition orders deadlocks",
                        self._labels[held_key],
                    )

    def lock_acquired(self, lock: object, mode: str) -> None:
        tid = threading.get_ident()
        with self._mutex:
            self._held.setdefault(tid, []).append(id(lock))

    def lock_released(self, lock: object, mode: str) -> None:
        tid = threading.get_ident()
        with self._mutex:
            key = id(lock)
            held = self._held.get(tid, [])
            if key in held:
                # Remove the innermost hold (read locks may legally unlock
                # in any order; the stack is only advisory).
                held.reverse()
                held.remove(key)
                held.reverse()
                return
            label = self._labels.get(key, f"{type(lock).__name__}@{key:#x}")
            self._report(
                "SAN103",
                (key, tid),
                f"thread releases {label} ({mode}) without holding it",
                label,
            )

    def _find_cycle(self, start: int, target: int) -> list[int] | None:
        """A path ``start ->* target`` in the edge graph (closing a cycle)."""
        stack = [(start, [start])]
        visited = {start}
        while stack:
            node, path = stack.pop()
            if node == target:
                return path + [start]
            for succ in self._edges.get(node, ()):
                if succ not in visited:
                    visited.add(succ)
                    stack.append((succ, path + [succ]))
        return None

    # -- copy-on-write snapshots (SAN2xx) ----------------------------------------

    def snapshot_captured(self, tables, indexes) -> None:
        """Register the exact table/index objects a snapshot now shares."""
        with self._mutex:
            for table in tables:
                key = self._pin(table, "table")
                self._captured_tables[key] = getattr(table, "name", "?")
            for index in indexes:
                key = self._pin(index, "index")
                self._captured_indexes[key] = getattr(index, "name", "?")

    def table_written(self, table: object) -> None:
        with self._mutex:
            name = self._captured_tables.get(id(table))
            if name is None:
                return
            self._report(
                "SAN201",
                ("table", id(table)),
                f"write to table {name!r} which a snapshot captured; the "
                "copy-on-write discipline requires forking it first",
                f"table:{name}",
            )

    def index_mutated(self, index: object) -> None:
        with self._mutex:
            name = self._captured_indexes.get(id(index))
            if name is None:
                return
            self._report(
                "SAN202",
                ("index", id(index)),
                f"in-place mutation of snapshot-shared index {name!r}; "
                "replace_table must rebuild fresh live-side indexes instead",
                f"index:{name}",
            )

    # -- WAL durability protocol (SAN3xx) ----------------------------------------

    def _wal_state(self, wal: object) -> dict:
        key = self._pin(wal, "wal")
        return self._wal.setdefault(
            key, {"last": None, "thread": None, "flushed": False, "synced": False}
        )

    def wal_append_begin(self, wal: object, lsn: int) -> None:
        tid = threading.get_ident()
        with self._mutex:
            state = self._wal_state(wal)
            label = self._labels[id(wal)]
            if state["thread"] is not None and state["thread"] != tid:
                self._report(
                    "SAN303",
                    (id(wal), "overlap"),
                    f"two threads are appending to {label} at once; records "
                    "can interleave mid-line",
                    label,
                )
            state["thread"] = tid
            state["flushed"] = False
            state["synced"] = False
            if state["last"] is not None and lsn != state["last"] + 1:
                self._report(
                    "SAN301",
                    (id(wal), state["last"], lsn),
                    f"append to {label} assigns LSN {lsn} after {state['last']}; "
                    "recovery requires contiguous LSNs",
                    label,
                )

    def wal_flushed(self, wal: object) -> None:
        with self._mutex:
            self._wal_state(wal)["flushed"] = True

    def wal_synced(self, wal: object) -> None:
        with self._mutex:
            self._wal_state(wal)["synced"] = True

    def wal_append_end(self, wal: object, lsn: int, sync: bool) -> None:
        with self._mutex:
            state = self._wal_state(wal)
            label = self._labels[id(wal)]
            if not state["flushed"]:
                self._report(
                    "SAN302",
                    (id(wal), lsn, "flush"),
                    f"append of LSN {lsn} to {label} acknowledged without a "
                    "flush; a crash now loses an applied mutation",
                    label,
                )
            elif sync and not state["synced"]:
                self._report(
                    "SAN302",
                    (id(wal), lsn, "fsync"),
                    f"append of LSN {lsn} to sync-mode {label} acknowledged "
                    "without fsync; durability is promised but not delivered",
                    label,
                )
            state["last"] = lsn
            state["thread"] = None

    def wal_reset(self, wal: object) -> None:
        """A checkpoint truncated the log; LSN assignment continues."""
        with self._mutex:
            state = self._wal_state(wal)
            state["thread"] = None

    # -- summaries ---------------------------------------------------------------

    def describe(self) -> str:
        if not self.findings:
            return "sanitizer: no findings"
        lines = [f"sanitizer: {len(self.findings)} finding(s)"]
        lines.extend(f"  {finding}" for finding in self.findings)
        return "\n".join(lines)


class _NullSanitizer:
    """The always-installed default: no checks, near-zero cost."""

    __slots__ = ()

    enabled = False
    findings: list = []

    def lock_acquiring(self, lock, mode, name="lock") -> None:
        pass

    def lock_acquired(self, lock, mode) -> None:
        pass

    def lock_released(self, lock, mode) -> None:
        pass

    def snapshot_captured(self, tables, indexes) -> None:
        pass

    def table_written(self, table) -> None:
        pass

    def index_mutated(self, index) -> None:
        pass

    def wal_append_begin(self, wal, lsn) -> None:
        pass

    def wal_flushed(self, wal) -> None:
        pass

    def wal_synced(self, wal) -> None:
        pass

    def wal_append_end(self, wal, lsn, sync) -> None:
        pass

    def wal_reset(self, wal) -> None:
        pass

    def reset(self) -> None:
        pass

    def describe(self) -> str:
        return "sanitizer: disabled"


NULL_SANITIZER = _NullSanitizer()

#: The process-global active sanitizer (NOT a ContextVar — see module doc).
_ACTIVE: "Sanitizer | _NullSanitizer" = NULL_SANITIZER
_SWAP = threading.Lock()


def current_sanitizer() -> "Sanitizer | _NullSanitizer":
    """The active sanitizer; :data:`NULL_SANITIZER` unless one is installed."""
    return _ACTIVE


def install_sanitizer(sanitizer: Sanitizer | None = None) -> Sanitizer:
    """Install *sanitizer* (a fresh one by default) process-wide."""
    global _ACTIVE
    with _SWAP:
        active = sanitizer if sanitizer is not None else Sanitizer()
        _ACTIVE = active
        return active


def uninstall_sanitizer() -> None:
    """Return to the no-op default."""
    global _ACTIVE
    with _SWAP:
        _ACTIVE = NULL_SANITIZER


@contextmanager
def use_sanitizer(sanitizer: Sanitizer | None = None):
    """Install a sanitizer for the enclosed block, restoring the old one.

    The swap is process-global: concurrent threads inside the block feed
    the same instance (that is the point), so nesting different sanitizers
    from concurrent threads is not meaningful.
    """
    global _ACTIVE
    with _SWAP:
        previous = _ACTIVE
        active = sanitizer if sanitizer is not None else Sanitizer()
        _ACTIVE = active
    try:
        yield active
    finally:
        with _SWAP:
            _ACTIVE = previous


def env_sanitize_enabled() -> bool:
    """True when ``REPRO_SANITIZE`` requests the sanitizer (1/true/yes/on)."""
    return os.environ.get("REPRO_SANITIZE", "").strip().lower() in {
        "1",
        "true",
        "yes",
        "on",
    }


if env_sanitize_enabled():  # pragma: no cover - exercised by the CI sanitize job
    install_sanitizer()
