"""Static plan verifier: a dataflow pass over extended query plans.

The verifier walks a plan tree bottom-up computing, per node, two facts —
the output *schema* (attribute provenance) and whether the subtree
*evaluates any preference* (the score/conf "taint") — and checks the
algebraic preconditions the optimizer's rewrites rely on (Properties
4.1–4.4) plus basic well-formedness, without executing anything:

* filtering operators (``score``/``conf`` selections, ``TopK``) must sit
  *above* every prefer operator — a prefer above them would rescore tuples
  the filter already judged (PV101/PV102, Property 4.1);
* a pushed-down prefer must resolve all of its attributes in its input
  (PV103) and unambiguously belong to that input of a binary operator
  (PV104, Property 4.4);
* prefer chains should be ordered by ascending selectivity (PV105,
  Property 4.3 — opt-in, meaningful only for optimized plans);
* set-operation inputs must be union-compatible (PV106);
* score-bearing paths must reach the root through F-combining operators:
  a prefer in the discarded input of a difference (PV107) or the
  unpreserved input of a left outer join (PV109) wastes its scores;
* all prefer operators must agree on one aggregate function F (PV108 —
  Properties 4.3/4.4 assume a single F per query).

Schemas are derived manually from child facts rather than via
``node.schema(catalog)`` so one broken subtree yields one diagnostic
instead of a cascade at every ancestor.
"""

from __future__ import annotations

from ..core.preference import Preference
from ..engine.cardinality import estimate_condition_selectivity
from ..engine.catalog import Catalog
from ..engine.expressions import Expr
from ..engine.schema import RESERVED_ATTRS, TableSchema
from ..errors import PlanError, ReproError, SchemaError
from ..plan.nodes import (
    Difference,
    Intersect,
    Join,
    LeftJoin,
    Materialized,
    PlanNode,
    Prefer,
    Project,
    Relation,
    Select,
    TopK,
    Union,
)
from .diagnostics import Diagnostic, make_diagnostic

#: Selectivity slack below which two chain neighbours count as ordered.
_CHAIN_TOLERANCE = 1e-9


def _base_name(attr: str) -> str:
    return attr.rsplit(".", 1)[-1].lower()


class PlanVerifier:
    """Checks one plan tree against the invariants listed in the module doc.

    ``ordered_chains`` enables the PV105 chain-order check; leave it off for
    plans as written by the user (the parser emits chains in declaration
    order) and turn it on for optimizer output.  ``default_aggregate`` is the
    query-level F that per-node overrides must match (PV108).
    """

    def __init__(
        self,
        catalog: Catalog,
        *,
        ordered_chains: bool = False,
        default_aggregate=None,
    ):
        self.catalog = catalog
        self.ordered_chains = ordered_chains
        self.default_aggregate = default_aggregate
        self._diagnostics: list[Diagnostic] = []

    def verify(self, plan: PlanNode) -> list[Diagnostic]:
        """Run every check; returns the findings in discovery order."""
        self._diagnostics = []
        self._visit(plan, prefer_above=False)
        self._check_aggregate_agreement(plan)
        if self.ordered_chains:
            self._check_chain_order(plan)
        return self._diagnostics

    # -- reporting ----------------------------------------------------------

    def _report(self, code: str, message: str, node: PlanNode) -> None:
        self._diagnostics.append(make_diagnostic(code, message, where=node.label()))

    # -- the dataflow pass --------------------------------------------------

    def _visit(
        self, node: PlanNode, prefer_above: bool
    ) -> tuple[TableSchema | None, bool]:
        """Returns (output schema or None if unresolvable, subtree has a Prefer)."""
        if isinstance(node, Relation):
            try:
                return node.schema(self.catalog), False
            except ReproError as err:
                self._report("PV100", str(err), node)
                return None, False

        if isinstance(node, Materialized):
            return node.schema(self.catalog), False

        if isinstance(node, Select):
            filters_scores = node.condition.references_score()
            if filters_scores and prefer_above:
                self._report(
                    "PV101",
                    "selection references score/conf but a prefer operator "
                    "above it would rescore the surviving tuples "
                    "(Property 4.1: score filters are post-filters)",
                    node,
                )
            schema, has_prefer = self._visit(node.child, prefer_above)
            if filters_scores and not has_prefer:
                self._report(
                    "PV110",
                    "selection filters on score/conf but its input evaluates "
                    "no preference: every pair is the default ⟨⊥,0⟩",
                    node,
                )
            self._check_condition(node.condition, schema, node, allow_score=True)
            return schema, has_prefer

        if isinstance(node, Project):
            child_schema, has_prefer = self._visit(node.child, prefer_above)
            schema: TableSchema | None = None
            if child_schema is not None:
                try:
                    schema = child_schema.project(node.attrs)
                except SchemaError as err:
                    self._report("PV100", str(err), node)
            return schema, has_prefer

        if isinstance(node, Prefer):
            child_schema, _ = self._visit(node.child, True)
            if child_schema is not None:
                self._check_prefer_input(node.preference, child_schema, node)
            return child_schema, True

        if isinstance(node, (Join, LeftJoin)):
            left_schema, left_prefer = self._visit(node.left, prefer_above)
            right_schema, right_prefer = self._visit(node.right, prefer_above)
            schema = None
            if left_schema is not None and right_schema is not None:
                try:
                    schema = left_schema.join(right_schema)
                except SchemaError as err:
                    self._report("PV100", str(err), node)
                self._check_owner_ambiguity(node.left, right_schema, node)
                self._check_owner_ambiguity(node.right, left_schema, node)
            self._check_condition(node.condition, schema, node, allow_score=False)
            if isinstance(node, LeftJoin) and right_prefer:
                self._report(
                    "PV109",
                    "prefer in the unpreserved (right) input of a left outer "
                    "join: unmatched left tuples keep their own pair, so these "
                    "scores are lost for them",
                    node,
                )
            return schema, left_prefer or right_prefer

        if isinstance(node, (Union, Intersect, Difference)):
            left_schema, left_prefer = self._visit(node.left, prefer_above)
            right_schema, right_prefer = self._visit(node.right, prefer_above)
            if (
                left_schema is not None
                and right_schema is not None
                and not left_schema.union_compatible(right_schema)
            ):
                self._report(
                    "PV106",
                    f"inputs are not union-compatible: "
                    f"{left_schema._describe()} vs {right_schema._describe()}",
                    node,
                )
            if isinstance(node, Difference) and right_prefer:
                self._report(
                    "PV107",
                    "prefer in the subtracted (right) input of a difference: "
                    "right-side pairs are discarded, so its scores never "
                    "reach the root",
                    node,
                )
            return left_schema, left_prefer or right_prefer

        if isinstance(node, TopK):
            if prefer_above:
                self._report(
                    "PV102",
                    f"top-{node.k} by {node.by} below a prefer operator: the "
                    "prefer above would rescore tuples after the cutoff "
                    "(filtering must follow all preference evaluation)",
                    node,
                )
            schema, has_prefer = self._visit(node.child, prefer_above)
            if not has_prefer:
                self._report(
                    "PV110",
                    f"top-{node.k} by {node.by} over an input that evaluates "
                    "no preference: every pair is the default ⟨⊥,0⟩, making "
                    "the cutoff arbitrary",
                    node,
                )
            return schema, has_prefer

        raise PlanError(f"plan verifier: unknown plan node {node!r}")

    # -- per-check helpers --------------------------------------------------

    def _check_condition(
        self,
        condition: Expr,
        schema: TableSchema | None,
        node: PlanNode,
        allow_score: bool,
    ) -> None:
        if schema is None:
            return  # the child already reported; don't cascade
        for attr in sorted(condition.attributes()):
            if _base_name(attr) in RESERVED_ATTRS:
                if not allow_score:
                    self._report(
                        "PV100",
                        f"{node.kind} condition references the reserved "
                        f"attribute {attr!r}; only selections and top-k "
                        "filter on pairs",
                        node,
                    )
                continue
            try:
                schema.index_of(attr)
            except SchemaError as err:
                self._report("PV100", f"{node.kind} condition: {err}", node)

    def _check_prefer_input(
        self, preference: Preference, schema: TableSchema, node: PlanNode
    ) -> None:
        for attr in sorted(preference.attributes()):
            if _base_name(attr) in RESERVED_ATTRS:
                continue
            try:
                schema.index_of(attr)
            except SchemaError as err:
                self._report(
                    "PV103",
                    f"preference {preference.name!r} does not fit its input "
                    f"(pushed to the wrong side?): {err}",
                    node,
                )

    def _check_owner_ambiguity(
        self, side: PlanNode, sibling_schema: TableSchema, parent: PlanNode
    ) -> None:
        """PV104: a prefer sitting on one input of a binary operator whose
        attributes also resolve in the sibling input — Property 4.4 only
        licenses the pushdown when exactly one input owns the attributes."""
        node = side
        while isinstance(node, Prefer):
            attrs = node.preference.attributes()
            shared = sorted(a for a in attrs if sibling_schema.has(a))
            if attrs and shared:
                self._report(
                    "PV104",
                    f"preference {node.preference.name!r} sits on one input of "
                    f"{parent.kind} but {', '.join(shared)} also resolve(s) in "
                    "the sibling input: the owning side is ambiguous "
                    "(Property 4.4)",
                    node,
                )
            node = node.child

    def _check_aggregate_agreement(self, plan: PlanNode) -> None:
        """PV108: the paper fixes one F per query; per-node overrides must
        agree with each other and with the query default."""
        overrides = [
            node.aggregate
            for node in plan.walk()
            if isinstance(node, Prefer) and node.aggregate is not None
        ]
        if not overrides:
            return
        expected = self.default_aggregate if self.default_aggregate is not None else overrides[0]
        conflicting = sorted({fn.name for fn in overrides if fn != expected})
        if conflicting:
            self._report(
                "PV108",
                f"prefer operators disagree on the aggregate function: "
                f"expected {expected.name}, found {', '.join(conflicting)} "
                "(Properties 4.3/4.4 assume a single F per query)",
                plan,
            )

    def _check_chain_order(self, plan: PlanNode) -> None:
        """PV105: each maximal prefer chain should run its most selective
        conditional part first, i.e. ascending selectivity bottom-to-top."""
        for head in self._chain_heads(plan):
            chain: list[Prefer] = []
            node: PlanNode = head
            while isinstance(node, Prefer):
                chain.append(node)
                node = node.child
            if len(chain) < 2:
                continue
            base = node
            try:
                ranked = [
                    (
                        estimate_condition_selectivity(
                            p.preference.condition, base, self.catalog
                        ),
                        p,
                    )
                    for p in chain
                ]
            except ReproError:
                continue  # unresolvable base: PV100 already covers it
            # chain[] is top-down; execution order is bottom-up.
            bottom_up = list(reversed(ranked))
            for (lower_sel, lower), (upper_sel, upper) in zip(bottom_up, bottom_up[1:]):
                if upper_sel < lower_sel - _CHAIN_TOLERANCE:
                    self._report(
                        "PV105",
                        f"prefer chain out of selectivity order: "
                        f"{upper.preference.name!r} (selectivity {upper_sel:.4g}) "
                        f"runs after {lower.preference.name!r} "
                        f"({lower_sel:.4g}); Property 4.3 wants ascending "
                        "selectivity from the bottom up",
                        head,
                    )
                    break

    def _chain_heads(self, plan: PlanNode):
        """Yield the topmost Prefer of every maximal prefer chain."""
        if isinstance(plan, Prefer):
            yield plan
        for node in plan.walk():
            for child in node.children():
                if isinstance(child, Prefer) and not isinstance(node, Prefer):
                    yield child


def verify_plan(
    plan: PlanNode,
    catalog: Catalog,
    *,
    ordered_chains: bool = False,
    default_aggregate=None,
) -> list[Diagnostic]:
    """Convenience wrapper: verify *plan* once and return the diagnostics."""
    verifier = PlanVerifier(
        catalog, ordered_chains=ordered_chains, default_aggregate=default_aggregate
    )
    return verifier.verify(plan)
