"""Benchmark harness: measurement, strategy comparison and text reports."""

from .harness import (
    DEFAULT_STRATEGIES,
    Measurement,
    bench_repeats,
    bench_scale,
    compare_strategies,
    matrix_table,
    measure,
    table2_properties,
)
from .reporting import format_table, write_report

__all__ = [
    "DEFAULT_STRATEGIES",
    "Measurement",
    "measure",
    "compare_strategies",
    "matrix_table",
    "table2_properties",
    "bench_scale",
    "bench_repeats",
    "format_table",
    "write_report",
]
