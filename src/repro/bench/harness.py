"""Experiment harness: timed strategy comparisons over workload queries.

Measurement protocol mirrors §VII: each (query, strategy) cell is executed
with a warm-up discarded run, then ``repeats`` timed runs; the median wall
time is reported together with the simulated-I/O counters of one run (the
cold-cache analogue: counters are reset before each run, and our engine has
no buffer cache to warm).
"""

from __future__ import annotations

import os
import statistics
import time
from dataclasses import dataclass, field

from ..engine.database import Database
from ..plan.nodes import PlanNode
from ..query.session import Session
from ..workloads.queries import WorkloadQuery
from .reporting import format_table

#: Default strategies compared in the headline experiments.
DEFAULT_STRATEGIES = ("ftp", "gbu", "plugin-shared", "plugin-rma")


def bench_scale(default: float = 0.002) -> float:
    """Dataset scale for benchmarks, overridable via REPRO_BENCH_SCALE."""
    return float(os.environ.get("REPRO_BENCH_SCALE", default))


def bench_repeats(default: int = 3) -> int:
    """Timed repetitions per cell, overridable via REPRO_BENCH_REPEATS."""
    return int(os.environ.get("REPRO_BENCH_REPEATS", default))


@dataclass
class Measurement:
    """One (query, strategy) cell."""

    query: str
    strategy: str
    wall_ms: float
    total_io: int
    rows: int
    runs: list[float] = field(default_factory=list)


def measure(
    session: Session,
    query: "str | PlanNode",
    strategy: str,
    repeats: int = 3,
    label: str = "",
) -> Measurement:
    """Median-of-*repeats* timing of one query under one strategy."""
    session.execute(query, strategy=strategy)  # warm-up (compilation, imports)
    times: list[float] = []
    last = None
    for _ in range(max(1, repeats)):
        started = time.perf_counter()
        last = session.execute(query, strategy=strategy)
        times.append((time.perf_counter() - started) * 1e3)
    assert last is not None
    return Measurement(
        query=label or (query if isinstance(query, str) else "plan"),
        strategy=strategy,
        wall_ms=statistics.median(times),
        total_io=last.stats.cost.get("total_io", 0),
        rows=last.stats.rows,
        runs=times,
    )


def compare_strategies(
    db: Database,
    workload_query: WorkloadQuery,
    strategies=DEFAULT_STRATEGIES,
    repeats: int = 3,
) -> list[Measurement]:
    """All strategy cells for one workload query."""
    session = workload_query.session(db)
    return [
        measure(session, workload_query.sql, strategy, repeats, label=workload_query.name)
        for strategy in strategies
    ]


def matrix_table(
    measurements: list[Measurement],
    row_key: str = "query",
    metric: str = "wall_ms",
    title: str = "",
) -> str:
    """Pivot measurements into a text table: rows × strategies."""
    strategies: list[str] = []
    rows: dict[str, dict[str, float]] = {}
    for m in measurements:
        key = getattr(m, row_key)
        if m.strategy not in strategies:
            strategies.append(m.strategy)
        rows.setdefault(str(key), {})[m.strategy] = getattr(m, metric)
    headers = [row_key] + [f"{s} ({_unit(metric)})" for s in strategies]
    body = [
        [key] + [cells.get(s, "-") for s in strategies] for key, cells in rows.items()
    ]
    return format_table(headers, body, title)


def _unit(metric: str) -> str:
    return {"wall_ms": "ms", "total_io": "pages", "rows": "rows"}.get(metric, metric)


def table2_properties(db: Database, workload_query: WorkloadQuery) -> dict:
    """The Table II characterization of a query: N, |R|, |λ|, P/NP."""
    session = workload_query.session(db)
    compiled = session.compile(workload_query.sql)
    plan = compiled.plan
    relations = plan.relations()
    preferred = set()
    for preference in workload_query.preferences:
        preferred |= set(preference.relations)
    preferred &= relations
    result = session.execute(compiled, strategy="gbu")
    return {
        "query": workload_query.name,
        "N": result.stats.rows,
        "|R|": len(relations),
        "|λ|": workload_query.num_preferences,
        "P/NP": f"{len(preferred)}/{len(relations) - len(preferred)}",
    }
