"""Experiment harness: timed strategy comparisons over workload queries.

Measurement protocol mirrors §VII: each (query, strategy) cell is executed
with a warm-up discarded run, then ``repeats`` timed runs; the median wall
time is reported together with the simulated-I/O counters of one run (the
cold-cache analogue: counters are reset before each run, and our engine has
no buffer cache to warm).
"""

from __future__ import annotations

import os
import statistics
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from ..engine.database import Database
from ..obs import Tracer
from ..plan.nodes import PlanNode
from ..query.session import Session
from ..workloads.queries import WorkloadQuery
from .reporting import format_table

#: Default strategies compared in the headline experiments.
DEFAULT_STRATEGIES = ("ftp", "gbu", "plugin-shared", "plugin-rma")


def bench_scale(default: float = 0.002) -> float:
    """Dataset scale for benchmarks, overridable via REPRO_BENCH_SCALE."""
    return float(os.environ.get("REPRO_BENCH_SCALE", default))


def bench_repeats(default: int = 3) -> int:
    """Timed repetitions per cell, overridable via REPRO_BENCH_REPEATS."""
    return int(os.environ.get("REPRO_BENCH_REPEATS", default))


@dataclass
class Measurement:
    """One (query, strategy) cell.

    ``traced`` records whether the timed runs executed under a collecting
    tracer, so persisted BENCH_*.json numbers state whether instrumentation
    was on.  When a trace was additionally collected (outside the timed
    runs), ``trace`` holds its root span and ``trace_overhead_pct`` the
    measured traced-vs-untraced wall-time delta.
    """

    query: str
    strategy: str
    wall_ms: float
    total_io: int
    rows: int
    runs: list[float] = field(default_factory=list)
    traced: bool = False
    trace: object | None = None
    trace_overhead_pct: float | None = None

    # -- tail latency (over the timed runs; see repro.serve.executor) -----------

    def percentile_ms(self, fraction: float) -> float:
        """Nearest-rank percentile of the timed runs, in milliseconds."""
        from ..serve.executor import percentile

        return percentile(self.runs, fraction)

    @property
    def p50_ms(self) -> float:
        return self.percentile_ms(0.50)

    @property
    def p95_ms(self) -> float:
        return self.percentile_ms(0.95)

    @property
    def p99_ms(self) -> float:
        return self.percentile_ms(0.99)

    def as_dict(self) -> dict:
        """JSON-ready cell: headline numbers plus tail latency and raw runs."""
        return {
            "query": self.query,
            "strategy": self.strategy,
            "wall_ms": round(self.wall_ms, 4),
            "p50_ms": round(self.p50_ms, 4),
            "p95_ms": round(self.p95_ms, 4),
            "p99_ms": round(self.p99_ms, 4),
            "total_io": self.total_io,
            "rows": self.rows,
            "runs_ms": [round(t, 4) for t in self.runs],
            "traced": self.traced,
        }


#: Active measurement collectors (innermost last); every Measurement that
#: :func:`measure` produces is appended to each — the hook behind
#: ``run_all.py --json``.
_COLLECTORS: list[list[Measurement]] = []


@contextmanager
def collect_measurements():
    """Collect every :func:`measure` result produced in the ``with`` body.

    Yields the (initially empty) list the measurements accumulate in::

        with collect_measurements() as cells:
            run_report()
        json.dump([c.as_dict() for c in cells], out)

    Nesting is allowed; inner collectors see only their own extent's cells,
    outer collectors see everything.
    """
    cells: list[Measurement] = []
    _COLLECTORS.append(cells)
    try:
        yield cells
    finally:
        _COLLECTORS.remove(cells)


def measure(
    session: Session,
    query: "str | PlanNode",
    strategy: str,
    repeats: int = 3,
    label: str = "",
    trace: bool = False,
    trace_sink=None,
    timeout: float | None = None,
    **execute_kwargs,
) -> Measurement:
    """Median-of-*repeats* timing of one query under one strategy.

    The timed runs always execute with the default no-op tracer.  With
    ``trace=True`` one extra *untimed* traced run is performed afterwards;
    its trace is attached to the measurement (and written to *trace_sink*
    if given) together with the traced-vs-untraced overhead.

    *timeout* arms a fresh per-run :class:`~repro.resilience.QueryGuard`
    deadline on every execution (warm-up included), so a hung strategy
    fails a benchmark with a typed :exc:`~repro.errors.QueryTimeout`
    instead of wedging the whole harness.

    Extra keyword arguments are forwarded verbatim to every
    :meth:`Session.execute` call (warm-up, timed and traced runs alike) —
    the hook benchmarks use to time executor variants, e.g.
    ``measure(..., columnar=True, partitions=4)``.
    """
    session.execute(
        query, strategy=strategy, timeout=timeout, **execute_kwargs
    )  # warm-up
    times: list[float] = []
    last = None
    for _ in range(max(1, repeats)):
        started = time.perf_counter()
        last = session.execute(
            query, strategy=strategy, timeout=timeout, **execute_kwargs
        )
        times.append((time.perf_counter() - started) * 1e3)
    assert last is not None
    name = label or (query if isinstance(query, str) else "plan")
    measurement = Measurement(
        query=name,
        strategy=strategy,
        wall_ms=statistics.median(times),
        total_io=last.stats.cost.get("total_io", 0),
        rows=last.stats.rows,
        runs=times,
    )
    if trace:
        tracer = Tracer()
        traced_times: list[float] = []
        for _ in range(max(1, repeats)):
            started = time.perf_counter()
            traced_result = session.execute(query, strategy=strategy, tracer=tracer)
            traced_times.append((time.perf_counter() - started) * 1e3)
        measurement.trace = traced_result.stats.trace
        untraced = measurement.wall_ms
        traced_ms = statistics.median(traced_times)
        if untraced > 0:
            measurement.trace_overhead_pct = round(
                (traced_ms - untraced) / untraced * 100.0, 2
            )
        if trace_sink is not None:
            trace_sink.write(
                measurement.trace,
                meta={
                    "query": name,
                    "strategy": strategy,
                    "rows": measurement.rows,
                    "wall_ms_untraced": round(untraced, 3),
                    "wall_ms_traced": round(traced_ms, 3),
                },
            )
    for cells in _COLLECTORS:
        cells.append(measurement)
    return measurement


def tracer_overhead(
    session: Session,
    query: "str | PlanNode",
    strategy: str = "gbu",
    repeats: int = 5,
) -> dict:
    """Measure the collecting tracer's overhead on one query.

    Returns ``{"untraced_ms", "traced_ms", "overhead_pct"}`` using the
    median of *repeats* runs each way (untraced runs use the no-op tracer
    path, i.e. the default production configuration).
    """
    session.execute(query, strategy=strategy)  # warm-up
    untraced: list[float] = []
    for _ in range(max(1, repeats)):
        started = time.perf_counter()
        session.execute(query, strategy=strategy)
        untraced.append(time.perf_counter() - started)
    traced: list[float] = []
    for _ in range(max(1, repeats)):
        tracer = Tracer()
        started = time.perf_counter()
        session.execute(query, strategy=strategy, tracer=tracer)
        traced.append(time.perf_counter() - started)
    untraced_ms = statistics.median(untraced) * 1e3
    traced_ms = statistics.median(traced) * 1e3
    overhead = (traced_ms - untraced_ms) / untraced_ms * 100.0 if untraced_ms else 0.0
    return {
        "untraced_ms": round(untraced_ms, 3),
        "traced_ms": round(traced_ms, 3),
        "overhead_pct": round(overhead, 2),
    }


def compare_strategies(
    db: Database,
    workload_query: WorkloadQuery,
    strategies=DEFAULT_STRATEGIES,
    repeats: int = 3,
    trace: bool = False,
    trace_sink=None,
    timeout: float | None = None,
) -> list[Measurement]:
    """All strategy cells for one workload query."""
    session = workload_query.session(db)
    return [
        measure(
            session,
            workload_query.sql,
            strategy,
            repeats,
            label=workload_query.name,
            trace=trace,
            trace_sink=trace_sink,
            timeout=timeout,
        )
        for strategy in strategies
    ]


def matrix_table(
    measurements: list[Measurement],
    row_key: str = "query",
    metric: str = "wall_ms",
    title: str = "",
) -> str:
    """Pivot measurements into a text table: rows × strategies."""
    strategies: list[str] = []
    rows: dict[str, dict[str, float]] = {}
    for m in measurements:
        key = getattr(m, row_key)
        if m.strategy not in strategies:
            strategies.append(m.strategy)
        rows.setdefault(str(key), {})[m.strategy] = getattr(m, metric)
    headers = [row_key] + [f"{s} ({_unit(metric)})" for s in strategies]
    body = [
        [key] + [cells.get(s, "-") for s in strategies] for key, cells in rows.items()
    ]
    return format_table(headers, body, title)


def _unit(metric: str) -> str:
    return {
        "wall_ms": "ms",
        "p50_ms": "ms",
        "p95_ms": "ms",
        "p99_ms": "ms",
        "total_io": "pages",
        "rows": "rows",
    }.get(metric, metric)


def table2_properties(db: Database, workload_query: WorkloadQuery) -> dict:
    """The Table II characterization of a query: N, |R|, |λ|, P/NP."""
    session = workload_query.session(db)
    compiled = session.compile(workload_query.sql)
    plan = compiled.plan
    relations = plan.relations()
    preferred = set()
    for preference in workload_query.preferences:
        preferred |= set(preference.relations)
    preferred &= relations
    result = session.execute(compiled, strategy="gbu")
    return {
        "query": workload_query.name,
        "N": result.stats.rows,
        "|R|": len(relations),
        "|λ|": workload_query.num_preferences,
        "P/NP": f"{len(preferred)}/{len(relations) - len(preferred)}",
    }
