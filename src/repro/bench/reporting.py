"""Plain-text tables for experiment reports (paper-style rows/series)."""

from __future__ import annotations

import os
from typing import Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = "") -> str:
    """Render an aligned, pipe-separated text table."""
    cells = [[_fmt(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in cells:
        lines.append(" | ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def write_report(name: str, content: str, directory: str = "results") -> str:
    """Persist a report under ``results/`` (created on demand); returns path."""
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(content + "\n")
    return path
