"""Result caching and incremental preference maintenance for the serving layer.

Two cooperating layers over the :class:`~repro.serve.server.PreferenceServer`
commit feed (see ``docs/PERFORMANCE.md`` §result caching):

* :mod:`repro.cache.result_cache` — a digest-keyed, bounded-LRU,
  single-flight cache of fully rendered query replies.
* :mod:`repro.cache.maintenance` — materialized per-user score relations
  patched incrementally on preference add/remove and row inserts instead
  of recomputed from scratch.
* :mod:`repro.cache.service` — the cache-aware query path
  :class:`~repro.serve.net.server.NetServer` delegates to (and the
  conformance tests drive directly).
"""

from .maintenance import ScoreMaintainer, applicable_preferences
from .result_cache import ResultCache
from .service import DEFAULT_SQL, CachedQueryService

__all__ = [
    "ResultCache",
    "ScoreMaintainer",
    "CachedQueryService",
    "applicable_preferences",
    "DEFAULT_SQL",
]
