"""Incremental maintenance of materialized per-user score relations.

The paper makes a query's scores a pure fold of the user's preference
sequence over the data; Chomicki's *Database Querying under Changing
Preferences* observes that under preference revision the fold need not be
recomputed from scratch.  :class:`ScoreMaintainer` implements that for the
serving layer: it keeps, per ``(user, table)``, the sparse score relation
``{primary key → ⟨S, C⟩}`` that folding the user's preferences over the
table produces, and consumes the :class:`~repro.serve.server.PreferenceServer`
mutation feed (the same events the preference WAL logs) to patch it in
place:

* ``pref.add`` — the new preference is *last* in fold order, so the delta
  is one :meth:`~repro.core.prefgroup.CompiledGroup.score_rows` pass of a
  single-preference group over the table with the existing state as
  ``base``: O(|R|) cheap dispatch probes, scoring work proportional to the
  rows the preference actually matches, and bit-identical to a full
  recompute (the fused fold replays sequential ``(preference, row)``
  order exactly).
* ``pref.remove`` — aggregates have no inverse, so the maintainer finds
  the rows the removed preference matched (the same dispatch index, again
  O(matches)) and re-folds *only those keys* with the remaining
  preferences; untouched keys cannot have changed.
* ``row.insert`` — the single new row is folded into every affected
  user's state (``score_rows([row], base=state)``).
* ``pref.clear`` — the user's materializations are dropped.

Which preferences apply to which table is decided by condition–schema
overlap analysis (:func:`applicable_preferences`): a preference
participates in table T's score relation iff it names exactly T and every
attribute its condition and scoring reference resolves in T's schema.
Join-wide (multi-relation) preferences are outside the per-table
materialization by construction.

Scope: plain :class:`~repro.core.preference.Preference` profiles.  A user
holding contextual preferences (whose activation depends on an external
context the maintainer cannot know) is not maintainable — mutations drop
that user's state and materialization raises typed
:exc:`~repro.errors.PreferenceError`.
"""

from __future__ import annotations

import threading

from ..core.aggregates import F_S, AggregateFunction
from ..core.preference import Preference
from ..core.prefgroup import PreferenceGroup
from ..core.prelation import ScoreRelation
from ..errors import PreferenceError, ReproError


def applicable_preferences(preferences, table) -> list:
    """The sub-sequence of *preferences* that table *table* can evaluate alone.

    A preference applies iff it names exactly this relation and compiles
    against the table's schema (every condition/scoring attribute
    resolves).  Order is preserved — it is fold order.
    """
    out = []
    for pref in preferences:
        if pref.relations != (table.name,):
            continue
        try:
            pref.condition.compile(table.schema)
        except ReproError:
            continue
        if not set(pref.scoring.attributes()) <= set(table.schema.attribute_names):
            continue
        out.append(pref)
    return out


class ScoreMaintainer:
    """Materialized per-user score relations, patched from the mutation feed.

    Construct over a server's live ``(db, store)`` and :meth:`attach` it so
    commit-order events reach :meth:`on_event` under the server mutex (the
    same ordering discipline the WAL gets).  Reads
    (:meth:`score_relation`) and the :meth:`recompute` oracle take the
    maintainer's own lock; drive them from the writer thread or quiesced
    states — the maintainer materializes from the *live* tables.
    """

    def __init__(self, db, store, aggregate: AggregateFunction = F_S):
        self.db = db
        self.store = store
        self.aggregate = aggregate
        self._lock = threading.Lock()
        #: (user, TABLE) → {pk tuple → ScorePair}; sparse — default pairs absent.
        self._states: dict[tuple, dict] = {}
        #: user → [Preference, ...] mirror of the store bucket, in fold order.
        #: Kept locally so ``pref.remove`` (which only carries a name, and
        #: fires after the store already forgot the object) can find the
        #: removed preference's condition to probe with.
        self._profiles: dict[str, list] = {}

    def attach(self, server) -> "ScoreMaintainer":
        """Subscribe to *server*'s commit feed; returns self for chaining."""
        server.add_listener(self.on_event)
        return self

    # -- reads -------------------------------------------------------------------

    def score_relation(self, user: str, table_name: str) -> dict:
        """The maintained ``{primary key → ScorePair}`` for (user, table).

        Materializes with a full fold on first access; afterwards kept
        incrementally current by :meth:`on_event`.  Returns a copy.
        """
        name = table_name.upper()
        with self._lock:
            state = self._states.get((user, name))
            if state is None:
                state = self._materialize(user, name)
            return dict(state)

    def recompute(self, user: str, table_name: str) -> dict:
        """Full-recompute oracle: the same relation, folded from scratch.

        Reads the store directly (not the mirror), so conformance tests can
        assert maintained state == oracle with exact pair equality.
        """
        name = table_name.upper()
        profile = [self._plain(p) for p in self.store.preferences_of(user)]
        with self._lock:
            return self._full_fold(profile, self.db.table(name))

    def maintained(self) -> list[tuple]:
        """The (user, table) pairs currently materialized."""
        with self._lock:
            return sorted(self._states)

    # -- the mutation feed -------------------------------------------------------

    def on_event(self, op: str, payload: dict) -> None:
        """Consume one committed server mutation (see ``add_listener``)."""
        with self._lock:
            if op == "pref.add":
                self._on_add(payload["user"], payload["preference"])
            elif op == "pref.remove":
                self._on_remove(payload["user"], payload["name"])
            elif op == "pref.clear":
                self._drop_user(payload["user"])
            elif op == "row.insert":
                self._on_insert(payload["table"])

    # -- internals (all under self._lock) ----------------------------------------

    @staticmethod
    def _plain(stored) -> Preference:
        if not isinstance(stored, Preference):
            raise PreferenceError(
                "incremental score maintenance covers plain preferences only; "
                f"cannot maintain a {type(stored).__name__}"
            )
        return stored

    def _materialize(self, user: str, name: str) -> dict:
        profile = self._profiles.get(user)
        if profile is None:
            profile = [self._plain(p) for p in self.store.preferences_of(user)]
            self._profiles[user] = profile
        state = self._full_fold(profile, self.db.table(name))
        self._states[(user, name)] = state
        return state

    def _full_fold(self, profile: list, table) -> dict:
        applicable = applicable_preferences(profile, table)
        if not applicable:
            return {}
        compiled = PreferenceGroup(applicable, self.aggregate).compile(table.schema)
        return compiled.score_rows(table.rows, self._key_fn(table))

    @staticmethod
    def _key_fn(table):
        pk = tuple(table.schema.primary_key)
        if not pk:
            raise PreferenceError(
                f"table {table.name} has no primary key; the maintained score "
                "relation needs a stable row identity"
            )
        return ScoreRelation(pk).key_extractor(table.schema)

    def _drop_user(self, user: str) -> None:
        self._profiles.pop(user, None)
        for key in [k for k in self._states if k[0] == user]:
            del self._states[key]

    def _on_add(self, user: str, preference) -> None:
        profile = self._profiles.get(user)
        if profile is None:
            return  # nothing materialized for this user yet
        if not isinstance(preference, Preference):
            self._drop_user(user)  # profile left the maintainable fragment
            return
        profile.append(preference)
        for user_key, name in [k for k in self._states if k[0] == user]:
            table = self.db.table(name)
            delta = applicable_preferences([preference], table)
            if not delta:
                continue
            compiled = PreferenceGroup(delta, self.aggregate).compile(table.schema)
            # The added preference is last in fold order, so folding it over
            # the existing state replays exactly the sequential
            # (preference, row) order of a recompute: O(matches) scoring.
            self._states[(user_key, name)] = compiled.score_rows(
                table.rows, self._key_fn(table), base=self._states[(user_key, name)]
            )

    def _on_remove(self, user: str, name: str) -> None:
        profile = self._profiles.get(user)
        if profile is None:
            return
        lowered = name.lower()
        removed = None
        for index, pref in enumerate(profile):
            if pref.name.lower() == lowered:
                removed = profile.pop(index)
                break
        if removed is None:
            return
        for user_key, table_name in [k for k in self._states if k[0] == user]:
            table = self.db.table(table_name)
            if not applicable_preferences([removed], table):
                continue
            probe = PreferenceGroup([removed], self.aggregate).compile(table.schema)
            key_fn = self._key_fn(table)
            touched = [row for row in table.rows if probe.matches(row)]
            if not touched:
                continue
            state = self._states[(user_key, table_name)]
            remaining = applicable_preferences(profile, table)
            # Re-fold only the touched keys with the remaining preferences:
            # a fresh per-key fold is exactly what a full recompute would
            # produce there, and keys the removed preference never matched
            # cannot have changed.  (Primary keys are unique, so a touched
            # key has no untouched rows contributing to it.)
            patch: dict = {}
            if remaining:
                group = PreferenceGroup(remaining, self.aggregate)
                patch = group.compile(table.schema).score_rows(touched, key_fn)
            for row in touched:
                state.pop(key_fn(row), None)
            state.update(patch)

    def _on_insert(self, table_name: str) -> None:
        name = str(table_name).upper()
        affected = [k for k in self._states if k[1] == name]
        if not affected:
            return
        table = self.db.table(name)
        row = table.rows[-1]  # the listener fires post-apply, in commit order
        for user_key, _ in affected:
            delta = applicable_preferences(self._profiles[user_key], table)
            if not delta:
                continue
            compiled = PreferenceGroup(delta, self.aggregate).compile(table.schema)
            self._states[(user_key, name)] = compiled.score_rows(
                [row], self._key_fn(table), base=self._states[(user_key, name)]
            )
