"""Digest-keyed result cache: bounded LRU, single-flight, targeted invalidation.

The cache stores fully rendered query replies keyed by value digests
(data digest of the plan's read set, canonical plan fingerprint, user
profile digest — assembled by :mod:`repro.cache.service`).  Because every
component of the key is a content digest, a stale entry can never be *hit*
— any state change changes the key — so explicit invalidation exists to
reclaim memory and keep the hit-rate accounting honest, not for
correctness.

Three disciplines:

* **Bounded LRU** — entries carry an approximate byte size (canonical-JSON
  length of the reply); inserting past ``max_bytes`` evicts from the cold
  end until the budget holds again.
* **Single-flight** — concurrent ``get_or_compute`` calls for one key
  compute once: the first caller becomes the leader, the rest block on an
  event and reuse its value.  A leader that *fails* wakes the waiters to
  retry themselves (one becomes the next leader) — errors are per-request
  (deadlines, faults) and must not be broadcast.
* **Targeted invalidation** — ``invalidate(user=...)`` / ``(table=...)`` /
  ``(below_lsn=...)`` drop exactly the entries a committed mutation made
  unreachable, using the metadata each entry carries (owning user, referenced
  relations, snapshot LSN).

Every event emits a ``cache.hit`` / ``cache.miss`` / ``cache.evict`` /
``cache.invalidate`` span into the ambient :mod:`repro.obs` tracer (free
when no tracer is installed).
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from ..obs.tracer import current_tracer
from ..serve.codec import canonical_json

#: Default memory budget: generous for test workloads, small enough that a
#: long-running server cannot hoard result payloads unboundedly.
DEFAULT_MAX_BYTES = 64 * 1024 * 1024

#: Flat byte charge for a reply canonical JSON cannot measure.
_OPAQUE_CHARGE = 4096


class CacheStats:
    """Counter block for one :class:`ResultCache` (guarded by its lock)."""

    __slots__ = (
        "hits",
        "misses",
        "bypasses",
        "evictions",
        "invalidations",
        "single_flight_waits",
    )

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.bypasses = 0
        self.evictions = 0
        self.invalidations = 0
        self.single_flight_waits = 0


class _Entry:
    __slots__ = ("value", "nbytes", "user", "relations", "lsn")

    def __init__(self, value, nbytes: int, user, relations, lsn: int) -> None:
        self.value = value
        self.nbytes = nbytes
        self.user = user
        self.relations = frozenset(relations)
        self.lsn = lsn


class _InFlight:
    """One leader computing a key; waiters block on the event."""

    __slots__ = ("event", "value", "failed")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.value = None
        self.failed = False


class ResultCache:
    """Bounded, observable, single-flight LRU over digest keys.

    Thread-safe; the internal lock is leaf-level (never held while
    computing or emitting spans), so it composes with the server mutex —
    commit-order listeners may call :meth:`invalidate` while readers hit
    the cache.
    """

    def __init__(self, max_bytes: int = DEFAULT_MAX_BYTES) -> None:
        self.max_bytes = max_bytes
        self.stats = CacheStats()
        self._lock = threading.Lock()
        self._entries: "OrderedDict[tuple, _Entry]" = OrderedDict()
        self._inflight: dict[tuple, _InFlight] = {}
        self._bytes = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def bytes_used(self) -> int:
        with self._lock:
            return self._bytes

    # -- the read path -----------------------------------------------------------

    def get_or_compute(
        self,
        key: tuple,
        compute,
        *,
        user=None,
        relations=(),
        lsn: int = 0,
    ):
        """The cached value for *key*, computing (once) on a miss.

        *user*, *relations* and *lsn* are invalidation metadata attached to
        the entry.  Exceptions from *compute* propagate to the caller that
        ran it; blocked waiters then retry the computation themselves.
        """
        while True:
            with self._lock:
                entry = self._entries.get(key)
                if entry is not None:
                    self._entries.move_to_end(key)
                    self.stats.hits += 1
                    value = entry.value
                flight = None if entry is not None else self._inflight.get(key)
                if entry is None and flight is None:
                    flight = _InFlight()
                    self._inflight[key] = flight
                    leader = True
                    self.stats.misses += 1
                elif entry is None:
                    leader = False
                    self.stats.single_flight_waits += 1
            if entry is not None:
                self._emit("cache.hit", key=_short(key))
                return value
            if not leader:
                flight.event.wait()
                if not flight.failed:
                    with self._lock:
                        self.stats.hits += 1
                    self._emit("cache.hit", key=_short(key), single_flight=True)
                    return flight.value
                continue  # leader failed: compete to become the next leader
            self._emit("cache.miss", key=_short(key))
            try:
                value = compute()
            except BaseException:
                with self._lock:
                    flight.failed = True
                    self._inflight.pop(key, None)
                flight.event.set()
                raise
            self._insert(key, value, user=user, relations=relations, lsn=lsn)
            with self._lock:
                flight.value = value
                self._inflight.pop(key, None)
            flight.event.set()
            return value

    def count_bypass(self) -> None:
        """Record a request served around the cache (uncacheable plan/profile)."""
        with self._lock:
            self.stats.bypasses += 1

    # -- writes ------------------------------------------------------------------

    def _insert(self, key: tuple, value, *, user, relations, lsn: int) -> None:
        nbytes = self._sizeof(value)
        evicted = 0
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old.nbytes
            self._entries[key] = _Entry(value, nbytes, user, relations, lsn)
            self._bytes += nbytes
            while self._bytes > self.max_bytes and self._entries:
                cold_key, cold = self._entries.popitem(last=False)
                self._bytes -= cold.nbytes
                if cold_key == key:
                    # The new entry alone exceeds the budget: it is not
                    # worth holding the whole cache hostage for — drop it.
                    break
                self.stats.evictions += 1
                evicted += 1
        if evicted:
            self._emit("cache.evict", count=evicted)

    @staticmethod
    def _sizeof(value) -> int:
        try:
            return len(canonical_json(value).encode("utf-8"))
        except (TypeError, ValueError):
            return _OPAQUE_CHARGE

    def invalidate(
        self,
        *,
        user=None,
        table: str | None = None,
        below_lsn: int | None = None,
        reason: str = "",
    ) -> int:
        """Drop entries matching any given criterion; returns how many.

        ``user=`` drops one user's entries (preference churn), ``table=``
        drops every entry whose plan read that relation (row mutations),
        ``below_lsn=`` drops entries built from snapshots older than the
        given WAL LSN.  With no criteria the whole cache is cleared.
        """
        with self._lock:
            if user is None and table is None and below_lsn is None:
                doomed = list(self._entries)
            else:
                doomed = [
                    key
                    for key, entry in self._entries.items()
                    if (user is not None and entry.user == user)
                    or (table is not None and table in entry.relations)
                    or (below_lsn is not None and entry.lsn < below_lsn)
                ]
            for key in doomed:
                entry = self._entries.pop(key)
                self._bytes -= entry.nbytes
            self.stats.invalidations += len(doomed)
        if doomed:
            self._emit("cache.invalidate", count=len(doomed), reason=reason)
        return len(doomed)

    def clear(self) -> int:
        return self.invalidate(reason="clear")

    # -- introspection -----------------------------------------------------------

    def stats_snapshot(self) -> dict:
        """Counters + occupancy as one JSON-able dict (the ``stats`` op shape)."""
        with self._lock:
            stats = self.stats
            lookups = stats.hits + stats.misses
            return {
                "hits": stats.hits,
                "misses": stats.misses,
                "bypasses": stats.bypasses,
                "evictions": stats.evictions,
                "invalidations": stats.invalidations,
                "single_flight_waits": stats.single_flight_waits,
                "entries": len(self._entries),
                "bytes": self._bytes,
                "max_bytes": self.max_bytes,
                "hit_rate": (stats.hits / lookups) if lookups else 0.0,
            }

    @staticmethod
    def _emit(name: str, **attrs) -> None:
        tracer = current_tracer()
        if not tracer.enabled:
            return
        with tracer.span(name) as span:
            for key, value in attrs.items():
                span.set(key, value)


def _short(key: tuple) -> str:
    """Abbreviated key for span labels (digest prefixes, not full hashes)."""
    return "/".join(
        part[:12] if isinstance(part, str) else repr(part) for part in key
    )
