"""The cache-aware serving query path, shared by NetServer and tests.

:class:`CachedQueryService` is the single implementation of "answer a
query for a (namespaced) user": take a consistent
:class:`~repro.serve.server.ServerSnapshot`, compile, execute, render the
wire reply — consulting a :class:`~repro.cache.result_cache.ResultCache`
keyed by

``(sha256 of the referenced tables' content digests,
   canonical plan fingerprint (strategy/aggregate/order/oracle included),
   user profile digest)``

Every key component is a value digest, so the key *is* the correctness
argument: the cached reply is a pure function of the key, and any change
to data, plan or profile changes the key.  Restricting the data digest to
the plan's read set (``plan.relations()``) is what keeps unrelated writes
from evicting hot entries — a row landing in table A never perturbs keys
of queries that only read table B, and one user's preference churn never
touches another user's keys.

Explicit invalidation (:meth:`CachedQueryService.on_mutation`, wired to
the server's commit feed) reclaims the memory of entries whose keys just
became unreachable and keeps hit-rate accounting honest.

Queries with no stable value identity — materialized plan leaves,
preferences without a canonical serialization — bypass the cache
(``bypasses`` counter) and compute exactly as the cache-off path does.
``cache=None`` disables caching entirely: byte-for-byte the same
computation, minus the lookup; that is the conformance oracle mode.
"""

from __future__ import annotations

import hashlib

from ..errors import PreferenceError
from ..plan.fingerprint import UncacheablePlan, plan_fingerprint
from ..serve.codec import canonical_json
from ..serve.server import table_digest

#: The default preferential query template (IMDB-shaped databases): used
#: when a query names no SQL — the PREFERRING list is the user's preference
#: names as of the serving snapshot, which is what keeps the query and its
#: oracle on one consistent (data, preferences) pair.
DEFAULT_SQL = """
    SELECT title, director, year FROM MOVIES
      NATURAL JOIN GENRES
      NATURAL JOIN DIRECTORS
    WHERE year >= 1980
    PREFERRING {names}
    TOP 10 BY score
"""


class CachedQueryService:
    """Builds query replies for users, through an optional result cache.

    :param server: the owned :class:`~repro.serve.server.PreferenceServer`.
    :param cache: a :class:`~repro.cache.result_cache.ResultCache`, or
        ``None`` for the cache-off oracle path.  When given, the service
        registers itself on the server's commit feed for targeted
        invalidation.
    :param default_sql: template used when a query names no SQL (must
        accept a ``{names}`` placeholder).
    :param default_strategy: strategy when the request names none.
    """

    def __init__(
        self,
        server,
        cache=None,
        *,
        default_sql: str = DEFAULT_SQL,
        default_strategy: str = "gbu",
    ) -> None:
        self.server = server
        self.cache = cache
        self.default_sql = default_sql
        self.default_strategy = default_strategy
        if cache is not None:
            server.add_listener(self.on_mutation)

    # -- the commit feed ---------------------------------------------------------

    def on_mutation(self, op: str, payload: dict) -> None:
        """Targeted invalidation from one committed server mutation.

        Preference ops touch exactly one user's profile digest, so only
        that user's entries die; a row insert touches exactly one table's
        content digest, so only entries whose plans read that table die.
        """
        if self.cache is None:
            return
        if op in ("pref.add", "pref.remove", "pref.clear"):
            self.cache.invalidate(user=payload["user"], reason=op)
        elif op == "row.insert":
            self.cache.invalidate(table=str(payload["table"]).upper(), reason=op)

    # -- the query path ----------------------------------------------------------

    def query(
        self,
        user: str,
        *,
        sql: str | None = None,
        strategy: str | None = None,
        want_oracle: bool = False,
    ) -> dict:
        """One wire-shaped query reply for *user*, cached when possible."""
        # Late module-attribute access (not a bound name): the corruption
        # tests monkeypatch protocol.triples_digest to prove the client
        # refuses a server whose digest computation went wrong.
        from ..serve.net import protocol

        strategy = strategy or self.default_strategy
        snapshot = self.server.snapshot()
        names = sorted(p.name for p in snapshot.store.preferences_of(user))
        text = sql
        if text is None:
            if not names:
                empty: list = []
                return {
                    "triples": empty,
                    "columns": [],
                    "prefs": [],
                    "digest": protocol.triples_digest(empty),
                    "rows": 0,
                }
            text = self.default_sql.format(names=", ".join(names))
        session = snapshot.session_for(user, strategy=strategy)
        if self.cache is None:
            return self._compute(session, snapshot, user, text, strategy, names, want_oracle)
        keyed = self._key(session, snapshot, user, text, strategy, want_oracle)
        if keyed is None:
            self.cache.count_bypass()
            return self._compute(session, snapshot, user, text, strategy, names, want_oracle)
        key, compiled, relations = keyed
        return self.cache.get_or_compute(
            key,
            lambda: self._compute(
                session, snapshot, user, compiled, strategy, names, want_oracle
            ),
            user=user,
            relations=relations,
            lsn=snapshot.lsn,
        )

    def _key(self, session, snapshot, user, text, strategy, want_oracle):
        """(cache key, compiled query, relations) — or None when uncacheable."""
        compiled = session.compile(text)
        try:
            fingerprint = plan_fingerprint(
                compiled.plan,
                strategy=strategy,
                aggregate=compiled.aggregate
                or getattr(session.engine.aggregate, "name", None),
                order_by=compiled.order_by,
                extra={"oracle": bool(want_oracle)},
            )
            relations = sorted(compiled.plan.relations())
            data = canonical_json(
                {name: table_digest(snapshot.db.table(name)) for name in relations}
            )
            profile = snapshot.store.profile_digest(user)
        except (UncacheablePlan, PreferenceError):
            return None
        data_digest = hashlib.sha256(data.encode("utf-8")).hexdigest()
        return (data_digest, fingerprint, profile), compiled, relations

    def _compute(self, session, snapshot, user, query, strategy, names, want_oracle):
        """The cache-off computation: execute + render the wire reply.

        *query* is SQL text or an already-compiled
        :class:`~repro.query.model.PreferentialQuery` — byte-identical
        results either way (compilation is deterministic).
        """
        from ..serve.net import protocol

        result = session.execute(query, strategy=strategy)
        presented = result.presented()
        triples = protocol.wire_triples(result)
        reply = {
            "triples": triples,
            "columns": list(presented.schema.attribute_names),
            "prefs": names,
            "digest": protocol.triples_digest(triples),
            "rows": len(triples),
        }
        if want_oracle:
            # The conformance oracle, on the *same snapshot*: the wire
            # result must digest-equal a reference-strategy evaluation
            # of the identical (data, preferences) instant.
            oracle = snapshot.session_for(user, strategy="reference").execute(
                query, strategy="reference"
            )
            reply["oracle_digest"] = protocol.triples_digest(
                protocol.wire_triples(oracle)
            )
        return reply

    def stats_snapshot(self) -> "dict | None":
        """The cache's counter block, or None when caching is off."""
        return self.cache.stats_snapshot() if self.cache is not None else None
