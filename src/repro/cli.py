"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``demo`` — build the paper's example movie database, run a preferential
  query under every strategy and print plans, results and statistics.
* ``generate`` — write a synthetic IMDB or DBLP database to a directory
  (see :mod:`repro.engine.persist` for the on-disk format).
* ``query`` — run one preferential SQL statement against a saved database.
* ``repl`` — interactive SQL loop against a saved or generated database.
* ``lint`` — run the algebraic-safety source linter (``repro.analysis_static``).
* ``verify-plan`` — statically verify workload or ad-hoc query plans.
* ``chaos`` — run the seeded fault-injection conformance suite
  (``repro.resilience.chaos``): every strategy under every fault scenario
  must match the oracle or fail with a typed resilience error.
  ``--scenario concurrent`` runs the serving-layer scenario instead
  (``repro.resilience.chaos_concurrent``): writer threads mutate
  preferences while reader threads must match the oracle on their own
  snapshot, plus the crash-at-arbitrary-WAL-offset recovery sweep.
* ``serve-bench`` — closed-loop concurrent serving benchmark
  (``repro.serve.bench``): N client threads through the admission-controlled
  executor, reporting throughput and p50/p95/p99 tail latency.
* ``serve`` — run the asyncio TCP front end (``repro.serve.net``): a
  length-prefixed JSON protocol over a durable or generated database, with
  multi-tenant admission, deadline propagation and graceful drain on
  SIGTERM.  ``chaos --scenario network`` is its fault-injection suite.
* ``serve-load`` — zipfian multi-tenant load generator against the network
  front end (``repro.serve.net.load``); writes the
  ``results/BENCH_serve_load.json`` artifact with p50/p95/p99 and shed-rate.
"""

from __future__ import annotations

import argparse
import os
import sys

from .engine.persist import load_database, save_database
from .errors import ReproError
from .query.session import Session


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Preference-aware relational database (ICDE 2012 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    demo = commands.add_parser("demo", help="run the built-in movie demo")
    demo.add_argument(
        "--trace",
        action="store_true",
        help="print an EXPLAIN ANALYZE-style per-operator trace per strategy",
    )

    generate = commands.add_parser("generate", help="generate a synthetic database")
    generate.add_argument("--dataset", choices=("imdb", "dblp"), default="imdb")
    generate.add_argument("--scale", type=float, default=0.001)
    generate.add_argument("--seed", type=int, default=42)
    generate.add_argument("--out", required=True, help="output directory")

    query = commands.add_parser("query", help="run one SQL statement")
    query.add_argument("--db", required=True, help="database directory")
    query.add_argument(
        "--strategy",
        default="gbu",
        help="execution strategy; a comma-separated list runs each in turn "
        "(e.g. --strategy ftp,bu,gbu)",
    )
    query.add_argument("--explain", action="store_true", help="print plans too")
    query.add_argument(
        "--trace",
        action="store_true",
        help="run under a collecting tracer and print the per-operator "
        "EXPLAIN ANALYZE breakdown (rows, time, aggregate applications)",
    )
    query.add_argument(
        "--profile",
        action="store_true",
        help="print a flat per-operator profile table (calls, wall/CPU ms, rows)",
    )
    query.add_argument(
        "--trace-out",
        metavar="FILE",
        help="append the collected trace(s) to FILE as JSONL",
    )
    query.add_argument("--limit", type=int, default=20, help="rows to print")
    query.add_argument(
        "--timeout",
        type=float,
        metavar="SECONDS",
        help="abort with a typed QueryTimeout when the query runs longer",
    )
    query.add_argument(
        "--max-rows",
        type=int,
        metavar="N",
        help="abort with ResourceExhausted when the result exceeds N rows",
    )
    query.add_argument(
        "--fallback",
        action="store_true",
        help="retry transient faults and fall back along gbu → bu → ftp → "
        "reference instead of failing (results may be marked degraded)",
    )
    query.add_argument(
        "--columnar",
        action="store_true",
        help="execute through the columnar engine (exact; unsupported plan "
        "shapes fall back to the row strategy)",
    )
    query.add_argument(
        "--partitions",
        type=int,
        metavar="N",
        help="partition-parallel columnar execution over N horizontal "
        "partitions (implies --columnar)",
    )
    query.add_argument("sql", help="preferential SQL text")

    repl = commands.add_parser("repl", help="interactive SQL loop")
    repl.add_argument("--db", help="database directory (default: tiny IMDB)")
    repl.add_argument("--strategy", default="gbu")

    lint = commands.add_parser(
        "lint", help="run the algebraic-safety linter over Python sources"
    )
    lint.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the repro package)",
    )

    verify = commands.add_parser(
        "verify-plan", help="statically verify query plans (parsed and optimized)"
    )
    verify.add_argument("--db", help="database directory (default: generated)")
    verify.add_argument(
        "--workload",
        help="verify a named workload query (IMDB-1..3, DBLP-1..3) or 'all'",
    )
    verify.add_argument(
        "--strict",
        action="store_true",
        help="audit every optimizer rewrite and fail on any diagnostic at all",
    )
    verify.add_argument(
        "--scale",
        type=float,
        default=0.0005,
        help="scale of the generated database when --db is not given",
    )
    verify.add_argument(
        "--columnar",
        action="store_true",
        help="also audit the columnar selection-pushdown rewrite per plan",
    )
    verify.add_argument(
        "--partitions",
        type=int,
        help="also verify the N-way partition-parallel split (PV3xx checks)",
    )
    verify.add_argument(
        "sql", nargs="?", help="ad-hoc preferential SQL to verify instead"
    )

    chaos = commands.add_parser(
        "chaos",
        help="run the seeded fault-injection conformance suite "
        "(strategies must match the oracle or fail typed)",
    )
    chaos.add_argument("--seed", type=int, default=42, help="fault-plan RNG seed")
    chaos.add_argument(
        "--scale", type=float, default=0.001, help="synthetic IMDB dataset scale"
    )
    chaos.add_argument(
        "--scenario",
        action="append",
        help="run only the named scenario (repeatable); default: all",
    )
    chaos.add_argument(
        "--list", action="store_true", help="list built-in scenarios and exit"
    )
    chaos.add_argument(
        "--timeout-smoke",
        action="store_true",
        help="also verify that a 1ms-deadline query raises QueryTimeout "
        "instead of hanging",
    )
    chaos.add_argument(
        "--writers", type=int, default=4,
        help="writer threads for --scenario concurrent (default 4)",
    )
    chaos.add_argument(
        "--readers", type=int, default=4,
        help="reader threads for --scenario concurrent (default 4)",
    )
    chaos.add_argument(
        "--queries", type=int, default=8,
        help="queries per reader for --scenario concurrent (default 8)",
    )
    chaos.add_argument(
        "--sanitize",
        action="store_true",
        help="run under the concurrency sanitizer; any SANxxx finding fails "
        "the run (also enabled by REPRO_SANITIZE=1)",
    )

    torture = commands.add_parser(
        "crash-torture",
        help="crash the durable server at every injectable I/O point (plus "
        "SIGKILL rounds) and digest-verify that recovery loses nothing "
        "acknowledged",
    )
    torture.add_argument("--seed", type=int, default=0, help="workload/fault RNG seed")
    torture.add_argument(
        "--rounds", type=int, default=10,
        help="in-process torture rounds; each sweeps every crash point of a "
        "fresh workload (default 10)",
    )
    torture.add_argument(
        "--ops", type=int, default=18,
        help="scripted server operations per round (default 18)",
    )
    torture.add_argument(
        "--sigkill-rounds", type=int, default=None, metavar="N",
        help="subprocess rounds SIGKILLed mid-workload (default rounds//5, "
        "min 1; 0 disables)",
    )
    torture.add_argument(
        "--no-mutation-check", action="store_true",
        help="skip the self-check that a deliberately lossy replay is caught",
    )

    serve_bench = commands.add_parser(
        "serve-bench",
        help="closed-loop concurrent serving benchmark: throughput and "
        "p50/p95/p99 tail latency through the admission-controlled executor",
    )
    serve_bench.add_argument(
        "--threads", type=int, default=4, help="client (and worker) threads"
    )
    serve_bench.add_argument(
        "--duration", type=float, default=2.0, help="measurement window, seconds"
    )
    serve_bench.add_argument("--strategy", default="gbu")
    serve_bench.add_argument("--scale", type=float, default=0.001)
    serve_bench.add_argument("--seed", type=int, default=42)
    serve_bench.add_argument(
        "--queue-limit", type=int, help="admission waiting room (default 2×threads)"
    )
    serve_bench.add_argument(
        "--session-limit", type=int, help="per-session in-flight cap (default none)"
    )
    serve_bench.add_argument(
        "--trace-out",
        metavar="FILE",
        help="append the serve.latency span to FILE as JSONL",
    )
    serve_bench.add_argument(
        "--columnar",
        action="store_true",
        help="serve queries through the columnar engine",
    )
    serve_bench.add_argument(
        "--partitions",
        type=int,
        metavar="N",
        help="partition-parallel columnar execution per query "
        "(implies --columnar)",
    )

    serve = commands.add_parser(
        "serve",
        help="run the asyncio TCP front end (length-prefixed JSON protocol; "
        "SIGTERM drains gracefully)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7432)
    serve.add_argument(
        "--data", metavar="DIR",
        help="durable server directory (created if missing); default: "
        "ephemeral synthetic IMDB",
    )
    serve.add_argument("--scale", type=float, default=0.001,
                       help="synthetic IMDB scale for an ephemeral server")
    serve.add_argument("--seed", type=int, default=42)
    serve.add_argument("--workers", type=int, default=4)
    serve.add_argument("--queue-limit", type=int, default=32)
    serve.add_argument(
        "--tenant-quota", type=int, default=None, metavar="N",
        help="per-tenant in-flight cap (default: unmetered)",
    )
    serve.add_argument(
        "--trace-out", metavar="FILE",
        help="append per-connection serve.net spans to FILE as JSONL",
    )
    serve.add_argument(
        "--no-cache", action="store_true",
        help="disable the digest-keyed result cache (cache-off oracle mode)",
    )
    serve.add_argument(
        "--cache-mb", type=int, default=64, metavar="MB",
        help="result-cache memory budget in MiB (default 64)",
    )

    serve_load = commands.add_parser(
        "serve-load",
        help="zipfian multi-tenant load against the network front end "
        "(client-observed p50/p95/p99 + shed-rate)",
    )
    serve_load.add_argument("--users", type=int, default=1_000_000,
                            help="simulated user universe (default 10^6)")
    serve_load.add_argument("--tenants", type=int, default=4)
    serve_load.add_argument("--requests", type=int, default=800)
    serve_load.add_argument("--clients", type=int, default=8)
    serve_load.add_argument("--churn", type=float, default=0.15,
                            help="fraction of requests that mutate preferences")
    serve_load.add_argument("--scale", type=float, default=0.001)
    serve_load.add_argument("--seed", type=int, default=42)
    serve_load.add_argument("--zipf-s", type=float, default=1.2)
    serve_load.add_argument("--workers", type=int, default=4)
    serve_load.add_argument("--queue-limit", type=int, default=16)
    serve_load.add_argument("--tenant-quota", type=int, default=16)
    serve_load.add_argument(
        "--no-cache", action="store_true",
        help="disable the digest-keyed result cache for this run",
    )
    serve_load.add_argument(
        "--out", metavar="FILE",
        help="write the JSON report to FILE (e.g. results/BENCH_serve_load.json)",
    )

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "demo":
            return _demo(trace=args.trace)
        if args.command == "generate":
            return _generate(args)
        if args.command == "query":
            return _query(args)
        if args.command == "repl":
            return _repl(args)
        if args.command == "lint":
            return _lint(args)
        if args.command == "verify-plan":
            return _verify_plan(args)
        if args.command == "chaos":
            return _chaos(args)
        if args.command == "crash-torture":
            return _crash_torture(args)
        if args.command == "serve-bench":
            return _serve_bench(args)
        if args.command == "serve":
            return _serve(args)
        if args.command == "serve-load":
            return _serve_load(args)
    except ReproError as err:
        print(f"error: {err}", file=sys.stderr)
        return 1
    return 0  # pragma: no cover - argparse enforces a command


def _demo(trace: bool = False) -> int:
    from .engine.database import Database
    from .engine.types import DataType
    from .core.preference import Preference
    from .core.scoring import recency_score
    from .engine.expressions import cmp, eq
    from .pexec.engine import STRATEGIES

    db = Database()
    db.create_table(
        "MOVIES",
        [
            ("m_id", DataType.INT),
            ("title", DataType.TEXT),
            ("year", DataType.INT),
            ("d_id", DataType.INT),
        ],
        primary_key=["m_id"],
    )
    db.create_table(
        "DIRECTORS",
        [("d_id", DataType.INT), ("director", DataType.TEXT)],
        primary_key=["d_id"],
    )
    db.insert_many(
        "MOVIES",
        [
            (1, "Gran Torino", 2008, 1),
            (2, "Wall Street", 2010, 3),
            (3, "Million Dollar Baby", 2004, 1),
            (4, "Match Point", 2005, 2),
            (5, "Scoop", 2006, 2),
        ],
    )
    db.insert_many("DIRECTORS", [(1, "C. Eastwood"), (2, "W. Allen"), (3, "O. Stone")])
    db.analyze()

    session = Session(db)
    session.register(Preference("p2", "DIRECTORS", eq("d_id", 1), 0.9, 0.8))
    session.register(
        Preference("recent", "MOVIES", cmp("year", ">=", 2005), recency_score("year", 2011), 0.7)
    )
    sql = (
        "SELECT title, director FROM MOVIES NATURAL JOIN DIRECTORS "
        "PREFERRING p2, recent TOP 3 BY score"
    )
    print("demo query:")
    print(" ", sql.strip())
    print()
    print(session.explain(sql))
    print()
    for strategy in STRATEGIES:
        result = session.execute(sql, strategy=strategy)
        print(f"-- {strategy}")
        _print_result(session, result, limit=5)
        if trace:
            print()
            print(session.explain_analyze(sql, strategy))
        print()
    return 0


def _generate(args) -> int:
    from .workloads import generate_dblp, generate_imdb

    generator = generate_imdb if args.dataset == "imdb" else generate_dblp
    print(f"generating {args.dataset} at scale {args.scale} (seed {args.seed})...")
    db = generator(scale=args.scale, seed=args.seed)
    save_database(db, args.out)
    for name in db.catalog.table_names():
        print(f"  {name:<14} {len(db.table(name)):>9} rows")
    print(f"saved to {args.out}")
    return 0


def _query(args) -> int:
    db = load_database(args.db)
    strategies = [s.strip() for s in args.strategy.split(",") if s.strip()]
    if not strategies:
        raise ReproError(f"--strategy {args.strategy!r} names no strategy")
    resilience = None
    if args.fallback:
        from .resilience import ResiliencePolicy

        resilience = ResiliencePolicy()
    session = Session(db, strategy=strategies[0], resilience=resilience)
    want_trace = args.trace or args.profile or args.trace_out
    sink = None
    if args.trace_out:
        from .obs import JsonlSink

        sink = JsonlSink(args.trace_out)
    for index, strategy in enumerate(strategies):
        if len(strategies) > 1:
            if index:
                print()
            print(f"-- {strategy}")
        if args.explain:
            print(session.explain(args.sql, strategy=strategy))
            print()
        tracer = None
        if want_trace:
            from .obs import Tracer

            tracer = Tracer()
        result = session.execute(
            args.sql,
            strategy=strategy,
            tracer=tracer,
            timeout=args.timeout,
            max_rows=args.max_rows,
            columnar=args.columnar,
            partitions=args.partitions,
        )
        _print_result(session, result, args.limit)
        if result.stats.degraded:
            print(
                "warning: degraded result — " + "; ".join(result.stats.failures),
                file=sys.stderr,
            )
        if args.trace:
            from .plan.printer import explain_analyze

            print()
            print(explain_analyze(result.executed_plan, result.stats.trace))
        if args.profile:
            from .obs import render_profile

            print()
            print(render_profile(result.stats.trace))
        if sink is not None:
            sink.write(
                result.stats.trace,
                meta={"sql": args.sql, "strategy": strategy, "rows": result.stats.rows},
            )
    if sink is not None:
        print(f"traces appended to {args.trace_out}", file=sys.stderr)
    return 0


def _repl(args) -> int:
    if args.db:
        db = load_database(args.db)
    else:
        from .workloads import generate_imdb

        print("no --db given: generating a tiny synthetic IMDB database...")
        db = generate_imdb(scale=0.001, seed=42)
    session = Session(db, strategy=args.strategy)
    print("tables:", ", ".join(db.catalog.table_names()))
    print("enter SQL (PREFERRING (...) SCORE ... supported), \\q to quit")
    while True:
        try:
            line = input("repro> ").strip()
        except EOFError:
            break
        if not line:
            continue
        if line in ("\\q", "quit", "exit"):
            break
        try:
            result = session.execute(line)
            _print_result(session, result, limit=20)
        except ReproError as err:
            print(f"error: {err}")
    return 0


def _lint(args) -> int:
    from .analysis_static.lint import run_lint

    return run_lint(args.paths or None)


def _verify_plan(args) -> int:
    """Statically verify parsed and optimized plans; non-zero on findings.

    Error-severity diagnostics always fail the command; under ``--strict``
    any diagnostic at all does, and the optimizer additionally audits every
    rule fire (a bad rewrite raises RewriteViolation and fails too).
    """
    from .analysis_static.diagnostics import Severity
    from .errors import RewriteViolation
    from .workloads import all_queries

    if not args.workload and not args.sql:
        raise ReproError("verify-plan needs --workload NAME|all or an SQL argument")

    queries = []
    if args.workload:
        catalog = {q.name.lower(): q for q in all_queries()}
        if args.workload.lower() == "all":
            queries = list(catalog.values())
        elif args.workload.lower() in catalog:
            queries = [catalog[args.workload.lower()]]
        else:
            names = ", ".join(sorted(q.name for q in all_queries()))
            raise ReproError(f"unknown workload {args.workload!r}; choose {names} or all")

    databases: dict[str, object] = {}

    def database_for(dataset: str):
        if dataset not in databases:
            if args.db:
                databases[dataset] = load_database(args.db)
            else:
                from .workloads import generate_dblp, generate_imdb

                generator = generate_imdb if dataset == "imdb" else generate_dblp
                databases[dataset] = generator(scale=args.scale, seed=42)
        return databases[dataset]

    failures = 0
    findings = 0

    def report(name: str, stage: str, diagnostics) -> None:
        nonlocal failures, findings
        for diagnostic in diagnostics:
            findings += 1
            print(f"{name} [{stage}] {diagnostic}")
            if diagnostic.severity is Severity.ERROR or args.strict:
                failures += 1

    def check(name: str, session: Session, sql: str) -> None:
        nonlocal failures
        report(
            name,
            "parsed",
            session.verify(sql, columnar=args.columnar, partitions=args.partitions),
        )
        try:
            report(name, "optimized", session.verify(sql, optimized=True))
        except RewriteViolation as violation:
            failures += 1
            print(f"{name} [optimized] {violation}")

    if queries:
        for query in queries:
            session = query.session(database_for(query.dataset), strict=args.strict)
            check(query.name, session, query.sql)
    if args.sql:
        session = Session(database_for("imdb"), strict=args.strict)
        check("adhoc", session, args.sql)

    checked = len(queries) + (1 if args.sql else 0)
    if failures:
        print(f"verify-plan: {failures} failing finding(s) over {checked} plan(s)")
        return 1
    suffix = f", {findings} informational finding(s)" if findings else ""
    print(f"verify-plan: {checked} plan(s) clean{suffix}")
    return 0


def _chaos(args) -> int:
    from .resilience.chaos import builtin_scenarios, run_chaos, timeout_smoke

    scenarios = builtin_scenarios()
    if args.list:
        for scenario in scenarios:
            print(f"{scenario.name:<20} {scenario.description}")
        print(
            f"{'concurrent':<20} writers mutate the live server while readers "
            "must match the oracle on their snapshot; plus the "
            "crash-at-any-WAL-offset recovery sweep"
        )
        print(
            f"{'crash':<20} short crash-torture run: injected I/O faults and "
            "a SIGKILL round, recovery digest-verified "
            "(full sweep: python -m repro crash-torture)"
        )
        print(
            f"{'network':<20} network front-end chaos: seeded connection "
            "drops / stalls / torn frames with server-side oracle digests, "
            "kill+recovery of acked writes, typed overload shedding"
        )
        return 0
    status = 0
    run_classic = True
    if args.scenario:
        wanted = {name.lower() for name in args.scenario}
        if "concurrent" in wanted:
            wanted.discard("concurrent")
            if not _concurrent_chaos(args):
                status = 1
            run_classic = run_classic and bool(wanted)
        if "crash" in wanted:
            wanted.discard("crash")
            from .resilience.crashtest import run_crash_torture

            report = run_crash_torture(seed=args.seed, rounds=3, ops=12)
            print(report.describe())
            if not report.ok:
                status = 1
            run_classic = run_classic and bool(wanted)
        if "network" in wanted:
            wanted.discard("network")
            from .serve.net.chaos import run_network_chaos

            report = run_network_chaos(seed=args.seed, scale=min(args.scale, 0.001))
            print(report.describe())
            if not report.ok:
                status = 1
            run_classic = run_classic and bool(wanted)
        known = {s.name.lower() for s in scenarios}
        unknown = wanted - known
        if unknown:
            raise ReproError(
                f"unknown scenario(s) {sorted(unknown)}; choose from "
                + ", ".join(sorted(known | {'concurrent', 'crash', 'network'}))
            )
        scenarios = [s for s in scenarios if s.name.lower() in wanted]
    if run_classic:
        report = run_chaos(
            seed=args.seed,
            scale=args.scale,
            scenarios=scenarios,
            sanitize=args.sanitize or None,
        )
        print(report.describe())
        if not report.ok:
            status = 1
    if args.timeout_smoke:
        print()
        outcome = timeout_smoke(scale=args.scale)
        print(outcome.message)
        if not outcome.ok:
            status = 1
    return status


def _concurrent_chaos(args) -> bool:
    """Run the serving-layer chaos scenario + WAL recovery sweep; True when OK."""
    import tempfile

    from .resilience.chaos_concurrent import run_concurrent_chaos, wal_recovery_check

    report = run_concurrent_chaos(
        seed=args.seed,
        scale=args.scale,
        writers=args.writers,
        readers=args.readers,
        queries_per_reader=args.queries,
        sanitize=args.sanitize or None,
    )
    print(report.describe())
    print()
    with tempfile.TemporaryDirectory(prefix="repro-wal-chaos-") as directory:
        recovery = wal_recovery_check(directory, seed=args.seed)
    print(recovery.describe())
    return report.ok and recovery.ok


def _crash_torture(args) -> int:
    from .resilience.crashtest import run_crash_torture

    report = run_crash_torture(
        seed=args.seed,
        rounds=args.rounds,
        ops=args.ops,
        sigkill_rounds=args.sigkill_rounds,
        mutation_check=not args.no_mutation_check,
    )
    print(report.describe())
    return 0 if report.ok else 1


def _serve_bench(args) -> int:
    from .serve.bench import serve_bench

    sink = None
    if args.trace_out:
        from .obs import JsonlSink

        sink = JsonlSink(args.trace_out)
    report = serve_bench(
        threads=args.threads,
        duration=args.duration,
        strategy=args.strategy,
        scale=args.scale,
        seed=args.seed,
        queue_limit=args.queue_limit,
        session_limit=args.session_limit,
        trace_sink=sink,
        columnar=args.columnar,
        partitions=args.partitions,
    )
    print(report.describe())
    if sink is not None:
        print(f"serving telemetry appended to {args.trace_out}", file=sys.stderr)
    return 0 if report.ok else 1


def _serve(args) -> int:
    import asyncio

    from .serve.net.server import NetServer

    sink = None
    if args.trace_out:
        from .obs import JsonlSink

        sink = JsonlSink(args.trace_out)
    if args.data:
        from .serve.server import PreferenceServer

        # A brand-new directory adopts the synthetic IMDB sample as its
        # baseline; an existing one recovers checkpoint + WAL and the
        # generator is never run.
        fresh = not os.path.isdir(args.data) or not os.listdir(args.data)
        initial = None
        if fresh:
            from .workloads.imdb import generate_imdb

            initial = generate_imdb(scale=args.scale, seed=args.seed)
        server, replay = PreferenceServer.open(args.data, initial=initial)
        print(
            f"serving durable state from {args.data} "
            f"({'fresh baseline' if fresh else 'recovered'}, "
            f"lsn={server.wal.lsn}, replayed {len(replay.records)} records)",
            file=sys.stderr,
        )
    else:
        from .serve.server import PreferenceServer
        from .workloads.imdb import generate_imdb

        server = PreferenceServer(generate_imdb(scale=args.scale, seed=args.seed))
        print(
            f"serving ephemeral synthetic IMDB (scale={args.scale})",
            file=sys.stderr,
        )
    net = NetServer(
        server,
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_limit=args.queue_limit,
        tenant_quota=args.tenant_quota,
        trace_sink=sink,
        cache=not args.no_cache,
        cache_bytes=args.cache_mb * 1024 * 1024,
    )

    async def main() -> None:
        await net.start()
        print(f"listening on {net.host}:{net.port}", file=sys.stderr)
        await net.serve_until_stopped()

    asyncio.run(main())
    print("drained and stopped", file=sys.stderr)
    return 0


def _serve_load(args) -> int:
    from .serve.net.load import describe, run_serve_load, write_report

    report = run_serve_load(
        users=args.users,
        tenants=args.tenants,
        requests=args.requests,
        clients=args.clients,
        churn=args.churn,
        scale=args.scale,
        seed=args.seed,
        zipf_s=args.zipf_s,
        workers=args.workers,
        queue_limit=args.queue_limit,
        tenant_quota=args.tenant_quota,
        cache=not args.no_cache,
    )
    print(describe(report))
    if args.out:
        write_report(report, args.out)
        print(f"report written to {args.out}", file=sys.stderr)
    return 0 if report["untyped_failed"] == 0 else 1


def _print_result(session: Session, result, limit: int) -> None:
    presented = result.presented()
    header = list(presented.schema.attribute_names) + ["score", "conf"]
    print(" | ".join(header))
    for index, (row, score, conf) in enumerate(presented.triples()):
        if index >= limit:
            print(f"... ({len(presented)} rows total)")
            break
        rendered = [str(v) for v in row]
        rendered.append("⊥" if score is None else f"{score:.4f}")
        rendered.append(f"{conf:.4f}")
        print(" | ".join(rendered))
    print(result.stats.summary())
