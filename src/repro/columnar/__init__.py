"""Columnar execution core: per-attribute columns + selection vectors.

The row engine evaluates plans tuple-at-a-time over :class:`PRelation`
values.  This package provides a *columnar* evaluation mode for the same
plans: base tables are decomposed into per-attribute column lists (cached on
the owning :class:`~repro.engine.database.Database` and invalidated by its
mutation counter), selections are evaluated column-at-a-time into selection
vectors, joins hash over key columns, and runs of prefer operators are
folded in one fused pass through :class:`~repro.core.prefgroup.CompiledGroup`.

The mode is opt-in (``Session.execute(columnar=True)``) and *exact*: every
result is bit-identical to the reference row evaluator — the differential
conformance harness (``tests/conformance.py``) enforces equality of raw
``(row, score, conf)`` triples, not rounded ones.  Plan shapes the columnar
operators do not cover raise :exc:`~repro.errors.ColumnarUnsupported` and
the engine falls back to the requested row strategy.

Partition-parallel execution over this core lives in
:mod:`repro.pexec.parallel`.
"""

from .column import ColumnStore, ColumnarRelation, column_store_for
from .executor import audited_push_selections, evaluate_columnar, push_selections
from .vectorized import selection_vector

__all__ = [
    "ColumnStore",
    "ColumnarRelation",
    "column_store_for",
    "audited_push_selections",
    "evaluate_columnar",
    "push_selections",
    "selection_vector",
]
