"""Column representation: lazily-transposed per-attribute columns.

Rows stay the storage of record (the engine's tables are row-major tuples);
a :class:`ColumnStore` materializes individual attribute columns on first
touch and keeps them for reuse.  For base tables the store is cached on the
owning :class:`~repro.engine.database.Database` keyed by the table name and
the database's monotonic ``version`` counter, so repeated queries share the
transposition work and any DDL/DML invalidates it.

:class:`ColumnarRelation` is the intermediate-result value of the columnar
executor: a schema, a row list, the parallel score-pair list, and a column
store over those rows.  Converting to/from :class:`PRelation` is free of
per-value work (the same row/pair lists are shared).
"""

from __future__ import annotations

from typing import Sequence

from ..core.prelation import PRelation
from ..core.scorepair import IDENTITY, ScorePair
from ..engine.schema import TableSchema
from ..engine.table import Row


class ColumnStore:
    """Per-attribute columns over a fixed row list, transposed lazily."""

    __slots__ = ("rows", "_columns", "_buckets")

    def __init__(self, rows: Sequence[Row]):
        self.rows = rows
        self._columns: dict[int, list] = {}
        self._buckets: dict[tuple[int, ...], dict[tuple, list[int]]] = {}

    def __len__(self) -> int:
        return len(self.rows)

    def column(self, index: int) -> list:
        """The values of attribute position *index*, one list entry per row."""
        column = self._columns.get(index)
        if column is None:
            column = [row[index] for row in self.rows]
            self._columns[index] = column
        return column

    def buckets(self, indices: tuple[int, ...]) -> dict[tuple, list[int]]:
        """Hash-join build side over the key columns at *indices*, memoized.

        Maps each key tuple to the row positions holding it, in row order.
        Positions index ``rows`` (and any parallel pair list), so a store
        shared between scans shares the build work: for base tables the
        memo lives as long as the cached store itself — until the next
        database mutation — and forked partition workers inherit warm
        buckets copy-on-write.
        """
        buckets = self._buckets.get(indices)
        if buckets is None:
            columns = [self.column(i) for i in indices]
            buckets = {}
            for j in range(len(self.rows)):
                key = tuple(column[j] for column in columns)
                buckets.setdefault(key, []).append(j)
            self._buckets[indices] = buckets
        return buckets

    def materialized_columns(self) -> tuple[int, ...]:
        """Positions already transposed (introspection for tests/EXPLAIN)."""
        return tuple(sorted(self._columns))


def column_store_for(db, name: str) -> ColumnStore:
    """The cached :class:`ColumnStore` of base table *name* on *db*.

    Cache entries are ``(version, store)``; any mutation bumps
    ``db.version`` and the next scan rebuilds.  Snapshots start with an
    empty cache of their own (they are fresh ``Database`` instances).
    """
    table = db.catalog.table(name)
    key = table.name.lower()
    cached = db.columnar_cache.get(key)
    if cached is not None and cached[0] == db.version:
        return cached[1]
    store = ColumnStore(list(table.rows))
    db.columnar_cache[key] = (db.version, store)
    return store


class ColumnarRelation:
    """A p-relation in columnar clothing: rows + pairs + a column store."""

    __slots__ = ("schema", "store", "pairs")

    def __init__(
        self,
        schema: TableSchema,
        store: ColumnStore,
        pairs: Sequence[ScorePair] | None = None,
    ):
        self.schema = schema
        self.store = store
        if pairs is None:
            self.pairs: list[ScorePair] = [IDENTITY] * len(store)
        else:
            self.pairs = list(pairs) if not isinstance(pairs, list) else pairs

    @classmethod
    def from_rows(
        cls,
        schema: TableSchema,
        rows: Sequence[Row],
        pairs: Sequence[ScorePair] | None = None,
    ) -> "ColumnarRelation":
        return cls(schema, ColumnStore(rows), pairs)

    @classmethod
    def from_prelation(cls, relation: PRelation) -> "ColumnarRelation":
        return cls(relation.schema, ColumnStore(relation.rows), relation.pairs)

    @property
    def rows(self) -> Sequence[Row]:
        return self.store.rows

    def __len__(self) -> int:
        return len(self.store)

    def column(self, index: int) -> list:
        return self.store.column(index)

    def take(self, selection: Sequence[int]) -> "ColumnarRelation":
        """Apply a selection vector (sorted, unique, in-range positions)."""
        rows = self.store.rows
        pairs = self.pairs
        return ColumnarRelation.from_rows(
            self.schema,
            [rows[i] for i in selection],
            [pairs[i] for i in selection],
        )

    def to_prelation(self) -> PRelation:
        return PRelation(self.schema, list(self.rows), list(self.pairs))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        name = self.schema.name or "<derived>"
        return f"ColumnarRelation({name}, {len(self)} rows)"
