"""The columnar plan evaluator: a reference-shaped walk over columns.

``evaluate_columnar`` mirrors :func:`repro.pexec.reference.evaluate_reference`
node by node — same recursion, same guard checks at operator boundaries,
fault-injection site ``strategy.columnar`` — but executes Select/Project/
Join/LeftJoin/TopK through the columnar operators (:mod:`.ops`) and chains
of adjacent ``Prefer`` nodes as one fused pass through
:func:`repro.pexec.batchscore.prefer_group` (bit-identical to the sequential
fold; falls back to the per-preference fold when batch scoring is ambiently
disabled).  Set operations are rare and not on the hot path: they delegate
to the reference algebra on materialized p-relations, which keeps them
identical by construction.

Before evaluating, :func:`push_selections` sinks score-free selection
conjuncts as deep as the schema allows (below prefers, other selects, and
into the resolving side of joins — only the *left* side of a left join).
Every rewrite performed is exact on multisets of ``(row, pair)``: selections
are per-row and every operator below computes each output row's pair from
its input rows' pairs independently of the rest of the relation, so
filtering early removes exactly the rows a later filter would have removed,
with every surviving pair combined from the same inputs in the same order.

Unknown plan nodes raise :exc:`~repro.errors.ColumnarUnsupported`; the
engine treats that as a capability miss and re-runs the row strategy.
"""

from __future__ import annotations

from ..core import algebra
from ..core.aggregates import F_S, AggregateFunction
from ..core.prefer import prefer
from ..core.prelation import PRelation
from ..errors import ColumnarUnsupported
from ..plan.nodes import (
    Difference,
    Intersect,
    Join,
    LeftJoin,
    Materialized,
    PlanNode,
    Prefer,
    Project,
    Relation,
    Select,
    TopK,
    Union,
)
from ..resilience import current_faults, current_guard
from . import ops
from .column import ColumnarRelation, column_store_for

FAULT_SITE = "strategy.columnar"


def evaluate_columnar(
    plan: PlanNode,
    db,
    aggregate: AggregateFunction = F_S,
    *,
    pushdown: bool = True,
    strict: bool = False,
) -> PRelation:
    """Evaluate *plan* columnar-wise against *db*, returning a p-relation.

    Exact: the result's raw ``(row, score, conf)`` triples equal the
    reference evaluator's on every supported plan (the conformance suite
    asserts this without rounding).  The pushdown rewrite goes through the
    same audit discipline as the row optimizer's rules (see
    :func:`audited_push_selections`); *strict* raises
    :class:`~repro.errors.RewriteViolation` on an audit failure.
    """
    if pushdown:
        plan = audited_push_selections(
            plan, db.catalog, strict=strict, aggregate=aggregate
        )
    return _evaluate(plan, db, aggregate).to_prelation()


def _evaluate(plan: PlanNode, db, aggregate: AggregateFunction) -> ColumnarRelation:
    guard = current_guard()
    if guard.enabled:
        guard.check()
    faults = current_faults()
    if faults.enabled:
        faults.at(FAULT_SITE)
    if isinstance(plan, Relation):
        store = column_store_for(db, plan.name)
        return ColumnarRelation(plan.schema(db.catalog), store)
    if isinstance(plan, Materialized):
        return ColumnarRelation.from_rows(plan.schema(db.catalog), plan.rows)
    if isinstance(plan, Select):
        return ops.select(_evaluate(plan.child, db, aggregate), plan.condition)
    if isinstance(plan, Project):
        return ops.project(_evaluate(plan.child, db, aggregate), plan.attrs)
    if isinstance(plan, Join):
        return ops.join(
            _evaluate(plan.left, db, aggregate),
            _evaluate(plan.right, db, aggregate),
            plan.condition,
            aggregate,
        )
    if isinstance(plan, LeftJoin):
        return ops.left_join(
            _evaluate(plan.left, db, aggregate),
            _evaluate(plan.right, db, aggregate),
            plan.condition,
            aggregate,
        )
    if isinstance(plan, Prefer):
        return _evaluate_prefer_chain(plan, db, aggregate)
    if isinstance(plan, TopK):
        return ops.topk(_evaluate(plan.child, db, aggregate), plan.k, plan.by)
    if isinstance(plan, (Union, Intersect, Difference)):
        left = _evaluate(plan.left, db, aggregate).to_prelation()
        right = _evaluate(plan.right, db, aggregate).to_prelation()
        apply = {
            Union: algebra.union,
            Intersect: algebra.intersect,
            Difference: algebra.difference,
        }[type(plan)]
        result = apply(left, right, aggregate)
        return ColumnarRelation.from_rows(result.schema, result.rows, result.pairs)
    raise ColumnarUnsupported(f"columnar executor: unknown node {plan!r}")


def _evaluate_prefer_chain(
    plan: Prefer, db, aggregate: AggregateFunction
) -> ColumnarRelation:
    """Fold a maximal chain of Prefer nodes, fused per same-aggregate run.

    The chain applies innermost-first (the written preference order).
    Consecutive prefers sharing one effective aggregate become a single
    :func:`prefer_group` pass; a change of aggregate starts a new run.
    """
    from ..pexec.batchscore import batch_scoring_enabled, prefer_group

    chain: list[Prefer] = []
    node: PlanNode = plan
    while isinstance(node, Prefer):
        chain.append(node)
        node = node.child
    child = _evaluate(node, db, aggregate)

    relation = child.to_prelation()
    fused = batch_scoring_enabled()
    run: list = []
    run_aggregate: AggregateFunction | None = None
    for prefer_node in reversed(chain):
        effective = prefer_node.aggregate or aggregate
        if run and effective is not run_aggregate:
            relation = _apply_run(relation, run, run_aggregate, fused, prefer_group)
            run = []
        run.append(prefer_node.preference)
        run_aggregate = effective
    if run:
        relation = _apply_run(relation, run, run_aggregate, fused, prefer_group)
    return ColumnarRelation.from_rows(relation.schema, relation.rows, relation.pairs)


def _apply_run(relation, preferences, aggregate, fused, prefer_group):
    if fused:
        return prefer_group(relation, preferences, aggregate)
    for preference in preferences:  # noqa: LN201 — deliberate sequential fold
        relation = prefer(relation, preference, aggregate)
    return relation


# ---------------------------------------------------------------------------
# Exact selection pushdown
# ---------------------------------------------------------------------------


def push_selections(plan: PlanNode, catalog) -> PlanNode:
    """Sink score-free selection conjuncts toward the leaves, exactly.

    Safe sinks: below another Select, below a Prefer (scoring is per-row),
    below a Project whose input still resolves every referenced attribute
    unambiguously, and into the side of a Join that resolves *all* the
    conjunct's attributes (only the left side for a LeftJoin — right-side
    filtering would change which left rows get NULL padding).  Conjuncts
    that fit nowhere deeper stay where they were.
    """
    from ..engine.expressions import conjoin, conjuncts

    children = plan.children()
    if children:
        plan = plan.with_children([push_selections(c, catalog) for c in children])
    if not isinstance(plan, Select) or plan.condition.references_score():
        return plan
    child = plan.child
    origin_schema = child.schema(catalog)
    remaining = []
    for part in conjuncts(plan.condition):
        # Only sink conjuncts that already resolve unambiguously where they
        # stand — an ill-formed condition must keep failing exactly like it
        # does under the row evaluator.
        if not all(origin_schema.has(a) for a in part.attributes()):
            remaining.append(part)
            continue
        sunk = _sink(child, part, catalog)
        if sunk is None:
            remaining.append(part)
        else:
            child = sunk
    if not remaining:
        return child
    return Select(child, conjoin(remaining))


def _sink(node: PlanNode, part, catalog) -> PlanNode | None:
    """*node* with *part* placed strictly below its root, or ``None``."""
    if isinstance(node, Select):
        return Select(_sink_or_wrap(node.child, part, catalog), node.condition)
    if isinstance(node, Prefer):
        return Prefer(
            _sink_or_wrap(node.child, part, catalog), node.preference, node.aggregate
        )
    if isinstance(node, Project):
        child_schema = node.child.schema(catalog)
        if all(child_schema.has(a) for a in part.attributes()):
            return Project(_sink_or_wrap(node.child, part, catalog), node.attrs)
        return None
    if isinstance(node, (Join, LeftJoin)):
        left_schema = node.left.schema(catalog)
        right_schema = node.right.schema(catalog)
        attrs = part.attributes()
        on_left = all(left_schema.has(a) for a in attrs)
        on_right = all(right_schema.has(a) for a in attrs)
        if on_left and not on_right:
            return node.with_children(
                [_sink_or_wrap(node.left, part, catalog), node.right]
            )
        if on_right and not on_left and isinstance(node, Join):
            return node.with_children(
                [node.left, _sink_or_wrap(node.right, part, catalog)]
            )
        return None
    return None


def _sink_or_wrap(node: PlanNode, part, catalog) -> PlanNode:
    """Sink *part* below *node* if possible, else select directly above it."""
    sunk = _sink(node, part, catalog)
    return sunk if sunk is not None else Select(node, part)


def audited_push_selections(
    plan: PlanNode, catalog, *, strict: bool = False, aggregate=None
) -> PlanNode:
    """:func:`push_selections` under the row optimizer's audit discipline.

    Mirrors ``PreferenceOptimizer.optimize`` exactly: without a collecting
    tracer and without *strict*, the rewrite runs unaudited (zero overhead);
    otherwise every fire gets an ``optimize.rule`` span, the (before, after)
    pair goes through :class:`~repro.analysis_static.RewriteAuditor`, error
    findings bump ``optimizer.rewrite_violation``, and *strict* raises
    :class:`~repro.errors.RewriteViolation`.
    """
    from ..obs import current_tracer

    tracer = current_tracer()
    if not tracer.enabled and not strict:
        return push_selections(plan, catalog)

    from ..analysis_static.auditor import RewriteAuditor
    from ..analysis_static.diagnostics import Severity
    from ..errors import RewriteViolation

    name = "columnar.push_selections"
    with tracer.span("optimize.rule", label=name) as span:
        pushed = push_selections(plan, catalog)
        fired = pushed != plan
        span.set("fired", fired)
        if not fired:
            return pushed
        tracer.count("optimizer.rule_fired")
        auditor = RewriteAuditor(catalog, default_aggregate=aggregate)
        diagnostics = auditor.audit(name, plan, pushed)
        if diagnostics:
            span.set("diagnostics", [str(d) for d in diagnostics])
            violations = [d for d in diagnostics if d.severity is Severity.ERROR]
            if violations:
                tracer.count("optimizer.rewrite_violation", len(violations))
                if strict:
                    raise RewriteViolation(name, violations)
        return pushed
