"""Columnar implementations of the hot operators.

Each operator mirrors its reference counterpart in
:mod:`repro.core.algebra` — same iteration order, same NULL handling, same
pair combination through ``F`` — but reads attribute columns instead of
whole rows wherever that saves work:

* ``select`` evaluates the condition as a selection vector
  (:mod:`.vectorized`) and gathers the surviving rows once;
* ``join``/``left_join`` extract hash keys from the cached key columns and
  only touch full rows for emitted matches;
* ``topk`` delegates to :func:`repro.filtering.topk` — the deterministic
  total order is the one thing every mode must share bit-for-bit.

Conditions over the reserved ``score``/``conf`` attributes always use the
compiled row path (they read the pair, not a column).
"""

from __future__ import annotations

from typing import Sequence

from ..core.aggregates import AggregateFunction
from ..engine.expressions import Expr, is_true
from ..engine.joinutil import split_equi_condition
from ..engine.table import Row
from ..filtering import topk as topk_prelation
from .column import ColumnarRelation
from .vectorized import selection_vector


def select(relation: ColumnarRelation, condition: Expr) -> ColumnarRelation:
    """``σ_φ(R)`` — vectorized when φ has a kernel, row fallback otherwise."""
    if condition.references_score():
        fn = condition.compile(relation.schema, with_score=True)
        pairs = relation.pairs
        vector = [
            i
            for i, row in enumerate(relation.rows)
            if fn(row + (pairs[i].score, pairs[i].conf))
        ]
        return relation.take(vector)
    vector = selection_vector(condition, relation.schema, relation.store)
    if vector is None:
        fn = condition.compile(relation.schema)
        vector = [i for i, row in enumerate(relation.rows) if fn(row)]
    return relation.take(vector)


def project(relation: ColumnarRelation, attrs: Sequence[str]) -> ColumnarRelation:
    """``π_A(R)`` — bag semantics, pairs survive (as in the reference)."""
    positions = [relation.schema.index_of(a) for a in attrs]
    schema = relation.schema.project(attrs)
    rows = [tuple(row[i] for i in positions) for row in relation.rows]
    return ColumnarRelation.from_rows(schema, rows, list(relation.pairs))


def join(
    left: ColumnarRelation,
    right: ColumnarRelation,
    condition: Expr,
    aggregate: AggregateFunction,
) -> ColumnarRelation:
    """``R ⋈_{φ,F} S`` — hash join over key columns, residual on candidates."""
    return _join(left, right, condition, aggregate, outer=False)


def left_join(
    left: ColumnarRelation,
    right: ColumnarRelation,
    condition: Expr,
    aggregate: AggregateFunction,
) -> ColumnarRelation:
    """``R ⟕_{φ,F} S`` — unmatched left rows survive NULL-padded."""
    return _join(left, right, condition, aggregate, outer=True)


def _join(
    left: ColumnarRelation,
    right: ColumnarRelation,
    condition: Expr,
    aggregate: AggregateFunction,
    outer: bool,
) -> ColumnarRelation:
    schema = left.schema.join(right.schema)
    equi, residual = split_equi_condition(condition, left.schema, right.schema)
    combine = aggregate.combine
    padding = (None,) * len(right.schema.columns) if outer else None
    rows: list[Row] = []
    pairs = []

    left_rows = left.rows
    left_pairs = left.pairs
    right_rows = right.rows
    right_pairs = right.pairs

    if equi:
        left_columns = [left.column(left.schema.index_of(a)) for a, _ in equi]
        right_indices = tuple(right.schema.index_of(b) for _, b in equi)
        buckets = right.store.buckets(right_indices)
        residual_fn = residual.compile(schema) if residual is not None else None
        empty: list[int] = []
        for i in range(len(left_rows)):
            key = tuple(column[i] for column in left_columns)
            matched = False
            if not any(part is None for part in key):
                row = left_rows[i]
                pair = left_pairs[i]
                for j in buckets.get(key, empty):
                    combined_row = row + right_rows[j]
                    if residual_fn is not None and not residual_fn(combined_row):
                        continue
                    matched = True
                    rows.append(combined_row)
                    pairs.append(combine(pair, right_pairs[j]))
            if outer and not matched:
                rows.append(left_rows[i] + padding)
                pairs.append(left_pairs[i])
    else:
        fn = None if is_true(condition) else condition.compile(schema)
        for i in range(len(left_rows)):
            row = left_rows[i]
            pair = left_pairs[i]
            matched = False
            for j in range(len(right_rows)):
                combined_row = row + right_rows[j]
                if fn is not None and not fn(combined_row):
                    continue
                matched = True
                rows.append(combined_row)
                pairs.append(combine(pair, right_pairs[j]))
            if outer and not matched:
                rows.append(row + padding)
                pairs.append(pair)

    return ColumnarRelation.from_rows(schema, rows, pairs)


def topk(relation: ColumnarRelation, k: int, by: str) -> ColumnarRelation:
    """``top(k, score|conf)`` — the shared deterministic total-order cut."""
    result = topk_prelation(relation.to_prelation(), k, by)
    return ColumnarRelation.from_rows(result.schema, result.rows, result.pairs)
