"""Shared-memory shipping of materialized column buffers to workers.

Base tables reach partition workers for free: the worker pool is forked
from the driver process, so the catalog's row storage is shared
copy-on-write.  *Materialized* plan leaves are different — they exist only
in the driver's heap — so :func:`pack` pickles their payload once into a
:class:`multiprocessing.shared_memory.SharedMemory` segment and workers
attach read-only by name instead of receiving a per-task pickle through the
pool's pipe.

Every created segment is tracked in a module registry; :func:`release` (and
the pool teardown in :mod:`repro.pexec.parallel`) unlinks it, and
:func:`active_segments` lets the test suite assert in teardown that no
segment leaked.
"""

from __future__ import annotations

import pickle
from multiprocessing import shared_memory

#: Names of segments created by this process and not yet released.
_SEGMENTS: dict[str, shared_memory.SharedMemory] = {}


def pack(payload: object) -> tuple[str, int]:
    """Pickle *payload* into a fresh shared-memory segment.

    Returns ``(name, size)`` — the handle a worker needs for :func:`load`.
    """
    data = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    segment = shared_memory.SharedMemory(create=True, size=max(1, len(data)))
    segment.buf[: len(data)] = data
    _SEGMENTS[segment.name] = segment
    return segment.name, len(data)


def load(handle: tuple[str, int]) -> object:
    """Attach to a segment by handle and unpickle its payload (worker side)."""
    name, size = handle
    segment = shared_memory.SharedMemory(name=name)
    try:
        return pickle.loads(bytes(segment.buf[:size]))
    finally:
        segment.close()


def release(name: str) -> None:
    """Close and unlink one segment created by :func:`pack`."""
    segment = _SEGMENTS.pop(name, None)
    if segment is not None:
        segment.close()
        segment.unlink()


def release_all() -> None:
    """Unlink every live segment (pool teardown / atexit safety net)."""
    for name in list(_SEGMENTS):
        release(name)


def active_segments() -> list[str]:
    """Names of segments not yet released — must be empty after a query."""
    return sorted(_SEGMENTS)
