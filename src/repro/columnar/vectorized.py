"""Vectorized predicate evaluation: expression tree → selection vector.

A selection vector is a strictly increasing list of row positions that
satisfy a condition.  The kernels here replicate the NULL semantics of the
compiled row closures in :mod:`repro.engine.expressions` *exactly* — the
differential conformance suite compares raw values, so "almost the same
treatment of None" is not good enough:

* ``a = b``  → false unless the left side is non-NULL and equal;
* other comparisons → false when either side is NULL;
* ``IN (…)`` → plain membership (``None`` can genuinely be in the list);
* ``BETWEEN`` → false for NULL;
* ``AND`` → conjunct vectors intersected in operand order.

Only shapes with a clear columnar evaluation are handled; anything else
(``OR``, ``NOT``, arithmetic operands, score/conf references…) returns
``None`` and the caller falls back to the compiled row predicate on exactly
the same rows — same answer, just row-at-a-time.
"""

from __future__ import annotations

from ..engine.expressions import (
    _COMPARATORS,
    And,
    Attr,
    Between,
    Comparison,
    Expr,
    InList,
    IsNull,
    Literal,
)
from ..engine.schema import TableSchema
from .column import ColumnStore


def selection_vector(
    condition: Expr, schema: TableSchema, store: ColumnStore
) -> list[int] | None:
    """Positions in *store* satisfying *condition*, or ``None`` if the
    condition has no vectorized kernel (caller must fall back to rows)."""
    count = len(store)
    if isinstance(condition, Literal):
        return list(range(count)) if condition.value else []
    if isinstance(condition, And):
        selected: list[int] | None = None
        for operand in condition.operands:
            vector = selection_vector(operand, schema, store)
            if vector is None:
                return None
            if selected is None:
                selected = vector
            else:
                keep = set(vector)
                selected = [i for i in selected if i in keep]
            if not selected:
                return []
        return selected
    if isinstance(condition, Comparison):
        return _comparison_vector(condition, schema, store)
    if isinstance(condition, InList):
        if not isinstance(condition.expr, Attr):
            return None
        column = store.column(schema.index_of(condition.expr.name))
        values = condition.values
        return [i for i, v in enumerate(column) if v in values]
    if isinstance(condition, Between):
        if not isinstance(condition.expr, Attr):
            return None
        column = store.column(schema.index_of(condition.expr.name))
        low, high = condition.low, condition.high
        return [
            i for i, v in enumerate(column) if v is not None and low <= v <= high
        ]
    if isinstance(condition, IsNull):
        if not isinstance(condition.expr, Attr):
            return None
        column = store.column(schema.index_of(condition.expr.name))
        if condition.negated:
            return [i for i, v in enumerate(column) if v is not None]
        return [i for i, v in enumerate(column) if v is None]
    return None


def _comparison_vector(
    condition: Comparison, schema: TableSchema, store: ColumnStore
) -> list[int] | None:
    left, right, op = condition.left, condition.right, condition.op
    if isinstance(left, Attr) and isinstance(right, Literal):
        column = store.column(schema.index_of(left.name))
        value = right.value
        if op == "=":
            return [
                i for i, v in enumerate(column) if v is not None and v == value
            ]
        if value is None:
            return []
        compare = _COMPARATORS[op]
        return [
            i for i, v in enumerate(column) if v is not None and compare(v, value)
        ]
    if isinstance(left, Literal) and isinstance(right, Attr):
        column = store.column(schema.index_of(right.name))
        value = left.value
        if op == "=":
            if value is None:
                return []
            return [i for i, v in enumerate(column) if value == v]
        if value is None:
            return []
        compare = _COMPARATORS[op]
        return [
            i for i, v in enumerate(column) if v is not None and compare(value, v)
        ]
    if isinstance(left, Attr) and isinstance(right, Attr):
        a = store.column(schema.index_of(left.name))
        b = store.column(schema.index_of(right.name))
        if op == "=":
            return [
                i for i in range(len(a)) if a[i] is not None and a[i] == b[i]
            ]
        compare = _COMPARATORS[op]
        return [
            i
            for i in range(len(a))
            if a[i] is not None and b[i] is not None and compare(a[i], b[i])
        ]
    return None


def check_selection_invariants(vector: list[int], count: int) -> None:
    """Assert the selection-vector contract (used by the property tests)."""
    previous = -1
    for position in vector:
        if not isinstance(position, int):
            raise AssertionError(f"non-integer position {position!r}")
        if position <= previous:
            raise AssertionError(
                f"positions must be strictly increasing: {position} after {previous}"
            )
        if not (0 <= position < count):
            raise AssertionError(f"position {position} outside [0, {count})")
        previous = position
