"""The paper's core contribution: preference model, p-relations, algebra.

* :class:`Preference` — the ``(σ_φ, S, C)`` triple of Definition 1.
* :class:`PRelation` / :class:`ScoreRelation` — Definition 2 and its §VI
  physical realization.
* :mod:`~repro.core.aggregates` — aggregate functions ``F`` (Definition 3).
* :mod:`~repro.core.algebra` — the extended relational operators.
* :func:`prefer` — the ``λ_{p,F}`` operator.
"""

from .aggregates import (
    F_MAX,
    F_MIN,
    F_S,
    AggregateFunction,
    MaxConfidence,
    MinConfidence,
    WeightedSum,
    check_laws,
    get_aggregate,
)
from .preference import Preference  # noqa: I001  (must precede .context: import cycle)
from .context import ContextualPreference, active_preferences
from .prefer import prefer
from .prelation import PRelation, ScoreRelation
from .scorepair import BOTTOM, IDENTITY, ScorePair, pair
from .scoring import (
    CallableScore,
    ConstantScore,
    ExprScore,
    ScoringFunction,
    around_score,
    rating_score,
    recency_score,
    weighted,
)

__all__ = [
    "Preference",
    "ContextualPreference",
    "active_preferences",
    "PRelation",
    "ScoreRelation",
    "ScorePair",
    "pair",
    "BOTTOM",
    "IDENTITY",
    "prefer",
    "AggregateFunction",
    "WeightedSum",
    "MaxConfidence",
    "MinConfidence",
    "F_S",
    "F_MAX",
    "F_MIN",
    "get_aggregate",
    "check_laws",
    "ScoringFunction",
    "ConstantScore",
    "ExprScore",
    "CallableScore",
    "rating_score",
    "recency_score",
    "around_score",
    "weighted",
]
