"""Aggregate functions ``F : ⟨S,C⟩ × ⟨S,C⟩ → ⟨S,C⟩`` (Definition 3).

An aggregate function combines two score/confidence pairs into one.  The
paper requires every F to be **associative** and **commutative** and to have
``⟨⊥, 0⟩`` as **identity** — these laws are what make the prefer operator
commutative (Property 4.3) and allow it to be pushed through binary operators
(Property 4.4).  :func:`check_laws` verifies them empirically and backs the
property-based tests.

Built-in instances:

* :class:`WeightedSum` — the paper's ``F_S``: the new score is the
  confidence-weighted combination of the non-⊥ input scores
  (``Σ C_k·S_k / Σ C_k``) and the new confidence is the **sum** of input
  confidences (``Σ C_k``).  Summed confidences may exceed 1, which the paper
  notes explicitly; the sum "captures how many preferences have been
  satisfied" while the weighted score keeps low-confidence evidence from
  dominating.  Note the score must be the *normalized* weighted combination:
  the unnormalized ``Σ C_k·S_k`` would not be associative, contradicting the
  paper's stated requirement, so F_S here carries the weighted mean.
* :class:`MaxConfidence` — the paper's ``F_max``: the pair with the highest
  confidence wins (deterministic tie-break on score keeps it commutative).
* :class:`MinConfidence` — pessimistic dual of ``F_max``.

Zero-confidence corner: a known score with confidence 0 carries no evidence.
To keep the laws exact, F_S treats such pairs as dominated by any pair with
positive confidence; among themselves the larger score survives.  Both rules
are symmetric and associative.
"""

from __future__ import annotations

from typing import Iterable

from ..errors import PreferenceError
from .scorepair import IDENTITY, ScorePair


class AggregateFunction:
    """Base class for aggregate functions over score/confidence pairs."""

    #: Short name used in plan printouts and benchmark reports.
    name = "abstract"

    def combine(self, a: ScorePair, b: ScorePair) -> ScorePair:
        raise NotImplementedError

    def combine_many(self, pairs: Iterable[ScorePair]) -> ScorePair:
        """Left fold of :meth:`combine` starting from the identity."""
        out = IDENTITY
        for p in pairs:
            out = self.combine(out, p)
        return out

    def __repr__(self) -> str:
        return f"F[{self.name}]"

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other)

    def __hash__(self) -> int:
        return hash(type(self))


class WeightedSum(AggregateFunction):
    """``F_S``: ⟨Σ C_k·S_k / Σ C_k, Σ C_k⟩ over inputs with S_k ≠ ⊥."""

    name = "F_S"

    def combine(self, a: ScorePair, b: ScorePair) -> ScorePair:
        if a.is_bottom:
            return IDENTITY if b.is_bottom else b
        if b.is_bottom:
            return a
        total_conf = a.conf + b.conf
        if total_conf == 0.0:
            # No evidence on either side: keep the larger score (associative).
            return ScorePair(max(a.score, b.score), 0.0)
        if a.conf == 0.0:
            return b
        if b.conf == 0.0:
            return a
        score = (a.conf * a.score + b.conf * b.score) / total_conf
        return ScorePair(score, total_conf)


class MaxConfidence(AggregateFunction):
    """``F_max``: the input pair with the maximum confidence (Example 5).

    Ties on confidence are broken by the larger score so the function stays
    commutative (the paper's argmax leaves ties unspecified; any symmetric
    rule works).
    """

    name = "F_max"

    def combine(self, a: ScorePair, b: ScorePair) -> ScorePair:
        if a.is_bottom:
            return IDENTITY if b.is_bottom else b
        if b.is_bottom:
            return a
        if (a.conf, a.score) >= (b.conf, b.score):
            return a
        return b


class MinConfidence(AggregateFunction):
    """Dual of ``F_max``: keep the least-confident known pair."""

    name = "F_min"

    def combine(self, a: ScorePair, b: ScorePair) -> ScorePair:
        if a.is_bottom:
            return IDENTITY if b.is_bottom else b
        if b.is_bottom:
            return a
        if (a.conf, -(a.score or 0.0)) <= (b.conf, -(b.score or 0.0)):
            return a
        return b


#: Default aggregate function, as assumed by the paper "for the sake of
#: simplicity (and without loss of generality)".
F_S = WeightedSum()
F_MAX = MaxConfidence()
F_MIN = MinConfidence()

_REGISTRY: dict[str, AggregateFunction] = {f.name.lower(): f for f in (F_S, F_MAX, F_MIN)}
_REGISTRY.update({"sum": F_S, "max": F_MAX, "min": F_MIN, "weighted": F_S})


def get_aggregate(name: str) -> AggregateFunction:
    """Look up a built-in aggregate function by name (``F_S``, ``max``...)."""
    fn = _REGISTRY.get(name.lower())
    if fn is None:
        raise PreferenceError(f"unknown aggregate function {name!r}")
    return fn


# ---------------------------------------------------------------------------
# Law checking (Definition 3 requirements)
# ---------------------------------------------------------------------------


def check_identity(fn: AggregateFunction, sample: ScorePair, tolerance: float = 1e-9) -> bool:
    """``F(⟨⊥,0⟩, x) = x`` and ``F(x, ⟨⊥,0⟩) = x``."""
    return fn.combine(IDENTITY, sample).approx_equal(sample, tolerance) and fn.combine(
        sample, IDENTITY
    ).approx_equal(sample, tolerance)


def check_commutative(
    fn: AggregateFunction, a: ScorePair, b: ScorePair, tolerance: float = 1e-9
) -> bool:
    return fn.combine(a, b).approx_equal(fn.combine(b, a), tolerance)


def check_associative(
    fn: AggregateFunction,
    a: ScorePair,
    b: ScorePair,
    c: ScorePair,
    tolerance: float = 1e-6,
) -> bool:
    left = fn.combine(fn.combine(a, b), c)
    right = fn.combine(a, fn.combine(b, c))
    return left.approx_equal(right, tolerance)


def check_laws(
    fn: AggregateFunction, samples: Iterable[ScorePair], tolerance: float = 1e-6
) -> bool:
    """Check identity/commutativity/associativity over all sample triples."""
    pool = list(samples)
    for a in pool:
        if not check_identity(fn, a, tolerance):
            return False
        for b in pool:
            if not check_commutative(fn, a, b, tolerance):
                return False
            for c in pool:
                if not check_associative(fn, a, b, c, tolerance):
                    return False
    return True
