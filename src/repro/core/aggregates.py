"""Aggregate functions ``F : ⟨S,C⟩ × ⟨S,C⟩ → ⟨S,C⟩`` (Definition 3).

An aggregate function combines two score/confidence pairs into one.  The
paper requires every F to be **associative** and **commutative** and to have
``⟨⊥, 0⟩`` as **identity** — these laws are what make the prefer operator
commutative (Property 4.3) and allow it to be pushed through binary operators
(Property 4.4).  :func:`check_laws` verifies them empirically and backs the
property-based tests.

Built-in instances:

* :class:`WeightedSum` — the paper's ``F_S``: the new score is the
  confidence-weighted combination of the non-⊥ input scores
  (``Σ C_k·S_k / Σ C_k``) and the new confidence is the **sum** of input
  confidences (``Σ C_k``).  Summed confidences may exceed 1, which the paper
  notes explicitly; the sum "captures how many preferences have been
  satisfied" while the weighted score keeps low-confidence evidence from
  dominating.  Note the score must be the *normalized* weighted combination:
  the unnormalized ``Σ C_k·S_k`` would not be associative, contradicting the
  paper's stated requirement, so F_S here carries the weighted mean.
* :class:`MaxConfidence` — the paper's ``F_max``: the pair with the highest
  confidence wins (deterministic tie-break on score keeps it commutative).
* :class:`MinConfidence` — pessimistic dual of ``F_max``.

Zero-confidence corner: a known score with confidence 0 carries no evidence.
To keep the laws exact, F_S treats such pairs as dominated by any pair with
positive confidence; among themselves the larger score survives.  Both rules
are symmetric and associative.

Bottom corner: a ⟨⊥, c⟩ pair (a matched preference whose scoring function
abstained) carries evidence but no score.  Two bottoms combine into one
bottom pair — F_S sums their confidences, F_max/F_min keep the larger (the
identity law forces a rule where ⟨⊥, 0⟩ is absorbed) — while a bottom next
to a known score is dropped entirely: folding its confidence into the known
pair would break associativity of the weighted mean.

Registration: every aggregate enters the name registry through
:func:`register_aggregate`, which first law-checks the instance over a
deterministic sample pool (lint rule LN104 flags direct registry mutation,
LN105 re-checks the live registry).
"""

from __future__ import annotations

from typing import Iterable

from ..errors import PreferenceError
from .scorepair import IDENTITY, ScorePair, bottom, pair


class AggregateFunction:
    """Base class for aggregate functions over score/confidence pairs."""

    #: Short name used in plan printouts and benchmark reports.
    name = "abstract"

    def combine(self, a: ScorePair, b: ScorePair) -> ScorePair:
        raise NotImplementedError

    def combine_many(self, pairs: Iterable[ScorePair]) -> ScorePair:
        """Left fold of :meth:`combine` starting from the identity."""
        out = IDENTITY
        for p in pairs:
            out = self.combine(out, p)
        return out

    def __repr__(self) -> str:
        return f"F[{self.name}]"

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other)

    def __hash__(self) -> int:
        return hash(type(self))


class WeightedSum(AggregateFunction):
    """``F_S``: ⟨Σ C_k·S_k / Σ C_k, Σ C_k⟩ over inputs with S_k ≠ ⊥."""

    name = "F_S"

    def combine(self, a: ScorePair, b: ScorePair) -> ScorePair:
        if a.is_bottom and b.is_bottom:
            # Evidence without scores accumulates: ⟨⊥,c1⟩ + ⟨⊥,c2⟩ = ⟨⊥,c1+c2⟩
            # (returning IDENTITY here would violate the identity law for
            # ⟨⊥, c>0⟩ inputs — confidence must survive the fold).
            return bottom(a.conf + b.conf)
        if a.is_bottom:
            return b
        if b.is_bottom:
            return a
        total_conf = a.conf + b.conf
        if total_conf == 0.0:
            # No evidence on either side: keep the larger score (associative).
            return ScorePair(max(a.score, b.score), 0.0)
        if a.conf == 0.0:
            return b
        if b.conf == 0.0:
            return a
        score = (a.conf * a.score + b.conf * b.score) / total_conf
        return ScorePair(score, total_conf)


class MaxConfidence(AggregateFunction):
    """``F_max``: the input pair with the maximum confidence (Example 5).

    Ties on confidence are broken by the larger score so the function stays
    commutative (the paper's argmax leaves ties unspecified; any symmetric
    rule works).
    """

    name = "F_max"

    def combine(self, a: ScorePair, b: ScorePair) -> ScorePair:
        if a.is_bottom and b.is_bottom:
            return bottom(max(a.conf, b.conf))
        if a.is_bottom:
            return b
        if b.is_bottom:
            return a
        if (a.conf, a.score) >= (b.conf, b.score):
            return a
        return b


class MinConfidence(AggregateFunction):
    """Dual of ``F_max``: keep the least-confident known pair."""

    name = "F_min"

    def combine(self, a: ScorePair, b: ScorePair) -> ScorePair:
        if a.is_bottom and b.is_bottom:
            # max, not min: the identity law needs ⟨⊥, 0⟩ absorbed, not kept.
            return bottom(max(a.conf, b.conf))
        if a.is_bottom:
            return b
        if b.is_bottom:
            return a
        if (a.conf, -(a.score or 0.0)) <= (b.conf, -(b.score or 0.0)):
            return a
        return b


#: Name → instance registry; populate it only through
#: :func:`register_aggregate` (enforced by lint rule LN104).
_REGISTRY: dict[str, AggregateFunction] = {}


def register_aggregate(
    fn: AggregateFunction, *aliases: str, check: bool = True
) -> AggregateFunction:
    """Register *fn* under its name plus *aliases*, law-checking it first.

    Raises :class:`~repro.errors.PreferenceError` when the instance violates
    Definition 3 (associativity, commutativity, identity ``⟨⊥,0⟩``) over the
    deterministic sample pool.  Returns *fn* so built-ins can be registered
    at definition site.  ``check=False`` skips the laws — only for tests
    that need a deliberately broken instance in the registry.
    """
    if check:
        failures = failed_laws(fn)
        if failures:
            raise PreferenceError(
                f"aggregate {fn.name!r} violates Definition 3: "
                + "; ".join(failures)
            )
    for key in (fn.name, *aliases):
        _REGISTRY[key.lower()] = fn
    return fn


def get_aggregate(name: str) -> AggregateFunction:
    """Look up a registered aggregate function by name (``F_S``, ``max``...)."""
    fn = _REGISTRY.get(name.lower())
    if fn is None:
        raise PreferenceError(f"unknown aggregate function {name!r}")
    return fn


def registered_aggregates() -> dict[str, AggregateFunction]:
    """A copy of the name → instance registry (for introspection/lint)."""
    return dict(_REGISTRY)


# ---------------------------------------------------------------------------
# Law checking (Definition 3 requirements)
# ---------------------------------------------------------------------------


def check_identity(fn: AggregateFunction, sample: ScorePair, tolerance: float = 1e-9) -> bool:
    """``F(⟨⊥,0⟩, x) = x`` and ``F(x, ⟨⊥,0⟩) = x``."""
    return fn.combine(IDENTITY, sample).approx_equal(sample, tolerance) and fn.combine(
        sample, IDENTITY
    ).approx_equal(sample, tolerance)


def check_commutative(
    fn: AggregateFunction, a: ScorePair, b: ScorePair, tolerance: float = 1e-9
) -> bool:
    return fn.combine(a, b).approx_equal(fn.combine(b, a), tolerance)


def check_associative(
    fn: AggregateFunction,
    a: ScorePair,
    b: ScorePair,
    c: ScorePair,
    tolerance: float = 1e-6,
) -> bool:
    left = fn.combine(fn.combine(a, b), c)
    right = fn.combine(a, fn.combine(b, c))
    return left.approx_equal(right, tolerance)


def check_laws(
    fn: AggregateFunction, samples: Iterable[ScorePair], tolerance: float = 1e-6
) -> bool:
    """Check identity/commutativity/associativity over all sample triples."""
    pool = list(samples)
    for a in pool:
        if not check_identity(fn, a, tolerance):
            return False
        for b in pool:
            if not check_commutative(fn, a, b, tolerance):
                return False
            for c in pool:
                if not check_associative(fn, a, b, c, tolerance):
                    return False
    return True


#: Deterministic sample pool for registration-time law checking.  Covers the
#: identity, a bottom pair carrying evidence (the F_S regression: its
#: confidence must survive F(⟨⊥,0⟩, ·)), zero-confidence known scores, plain
#: pairs, and an out-of-[0,1] confidence from summed combinations.
LAW_SAMPLES: tuple[ScorePair, ...] = (
    IDENTITY,
    bottom(0.5),
    pair(0.0, 0.0),
    pair(1.0, 0.0),
    pair(0.25, 0.5),
    pair(0.5, 1.0),
    pair(1.0, 1.0),
    pair(0.75, 0.3),
    pair(0.4, 2.5),
)


def failed_laws(
    fn: AggregateFunction,
    samples: Iterable[ScorePair] = LAW_SAMPLES,
    tolerance: float = 1e-6,
) -> list[str]:
    """Names of the Definition 3 laws *fn* violates, with one witness each."""
    pool = list(samples)
    failures: list[str] = []
    for a in pool:
        if not check_identity(fn, a, tolerance):
            failures.append(f"identity: F(⟨⊥,0⟩, {a!r}) ≠ {a!r}")
            break
    done = False
    for a in pool:
        for b in pool:
            if not check_commutative(fn, a, b, tolerance):
                failures.append(f"commutativity: F({a!r}, {b!r}) ≠ F({b!r}, {a!r})")
                done = True
                break
        if done:
            break
    done = False
    for a in pool:
        for b in pool:
            for c in pool:
                if not check_associative(fn, a, b, c, tolerance):
                    failures.append(
                        f"associativity: F(F({a!r}, {b!r}), {c!r}) ≠ "
                        f"F({a!r}, F({b!r}, {c!r}))"
                    )
                    done = True
                    break
            if done:
                break
        if done:
            break
    return failures


def verify_registered_aggregates() -> list[str]:
    """Law failures of every instance in the live registry (lint rule LN105)."""
    out: list[str] = []
    checked: list[AggregateFunction] = []
    for fn in _REGISTRY.values():
        if any(fn is seen for seen in checked):
            continue
        checked.append(fn)
        for failure in failed_laws(fn):
            out.append(f"registered aggregate {fn.name!r} ({type(fn).__name__}): {failure}")
    return out


# ---------------------------------------------------------------------------
# Built-in instances
# ---------------------------------------------------------------------------

#: Default aggregate function, as assumed by the paper "for the sake of
#: simplicity (and without loss of generality)".
F_S = register_aggregate(WeightedSum(), "sum", "weighted")
F_MAX = register_aggregate(MaxConfidence(), "max")
F_MIN = register_aggregate(MinConfidence(), "min")
