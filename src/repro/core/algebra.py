"""Extended relational algebra over p-relations (Section IV-B).

Every standard operator is lifted to p-relations: unary operators preserve
the score/confidence pair of each surviving tuple, binary operators combine
the pairs of matching tuples through an aggregate function ``F``.  These
functions are the library's *reference semantics* — deliberately direct
implementations of the paper's definitions; the physical execution
strategies in :mod:`repro.pexec` are tested against them.

Set operations treat inputs as sets of tuples (duplicates within one input
are first merged through ``F``), matching the paper's set-based relational
model; projection keeps bag semantics like SQL.
"""

from __future__ import annotations

from typing import Sequence

from ..engine.expressions import Expr, is_true
from ..engine.joinutil import split_equi_condition
from ..engine.table import Row
from ..errors import PlanError
from .aggregates import F_S, AggregateFunction
from .prelation import PRelation
from .scorepair import ScorePair


# ---------------------------------------------------------------------------
# Unary operators
# ---------------------------------------------------------------------------


def select(relation: PRelation, condition: Expr) -> PRelation:
    """``σ_φ(R)``: keep tuples satisfying φ, pairs unchanged.

    φ may reference the reserved ``score``/``conf`` attributes (used by
    post-preference filters such as ``σ_{conf ≥ τ}``); those comparisons see
    ⊥ as NULL, i.e. they are never satisfied by unknown scores.
    """
    if condition.references_score():
        fn = condition.compile(relation.schema, with_score=True)
        kept = [
            (row, pair)
            for row, pair in relation
            if fn(row + (pair.score, pair.conf))
        ]
    else:
        fn = condition.compile(relation.schema)
        kept = [(row, pair) for row, pair in relation if fn(row)]
    return PRelation(relation.schema, [r for r, _ in kept], [p for _, p in kept])


def project(relation: PRelation, attrs: Sequence[str]) -> PRelation:
    """``π_A(R)``: keep the listed attributes plus the score/conf pair."""
    positions = [relation.schema.index_of(a) for a in attrs]
    schema = relation.schema.project(attrs)
    rows = [tuple(row[i] for i in positions) for row in relation.rows]
    return PRelation(schema, rows, list(relation.pairs))


# ---------------------------------------------------------------------------
# Joins
# ---------------------------------------------------------------------------


def join(
    left: PRelation,
    right: PRelation,
    condition: Expr,
    aggregate: AggregateFunction = F_S,
) -> PRelation:
    """``R ⋈_{φ,F} S``: concatenated matches carry ``F(pair_r, pair_s)``.

    Equality conjuncts between the two sides are executed as a hash join;
    any residual condition is applied to candidate pairs.  A condition of
    TRUE yields the full product.
    """
    schema = left.schema.join(right.schema)
    equi, residual = split_equi_condition(condition, left.schema, right.schema)
    combine = aggregate.combine
    rows: list[Row] = []
    pairs: list[ScorePair] = []

    if equi:
        left_positions = [left.schema.index_of(a) for a, _ in equi]
        right_positions = [right.schema.index_of(b) for _, b in equi]
        buckets: dict[tuple, list[tuple[Row, ScorePair]]] = {}
        for row, pair in right:
            key = tuple(row[i] for i in right_positions)
            buckets.setdefault(key, []).append((row, pair))
        residual_fn = residual.compile(schema) if residual is not None else None
        for row, pair in left:
            key = tuple(row[i] for i in left_positions)
            if any(part is None for part in key):
                continue
            for other_row, other_pair in buckets.get(key, ()):
                combined_row = row + other_row
                if residual_fn is not None and not residual_fn(combined_row):
                    continue
                rows.append(combined_row)
                pairs.append(combine(pair, other_pair))
    else:
        fn = None if is_true(condition) else condition.compile(schema)
        for row, pair in left:
            for other_row, other_pair in right:
                combined_row = row + other_row
                if fn is not None and not fn(combined_row):
                    continue
                rows.append(combined_row)
                pairs.append(combine(pair, other_pair))

    return PRelation(schema, rows, pairs)


def left_join(
    left: PRelation,
    right: PRelation,
    condition: Expr,
    aggregate: AggregateFunction = F_S,
) -> PRelation:
    """``R ⟕_{φ,F} S``: inner matches combine pairs through F; unmatched
    R-tuples survive padded with NULLs, keeping their own pair.

    Matching is tracked per left *occurrence* (not per value), so duplicate
    left tuples with different pairs each get their own padded row.
    """
    schema = left.schema.join(right.schema)
    equi, residual = split_equi_condition(condition, left.schema, right.schema)
    combine = aggregate.combine
    padding = (None,) * len(right.schema.columns)
    rows: list[Row] = []
    pairs: list[ScorePair] = []

    if equi:
        left_positions = [left.schema.index_of(a) for a, _ in equi]
        right_positions = [right.schema.index_of(b) for _, b in equi]
        buckets: dict[tuple, list[tuple[Row, ScorePair]]] = {}
        for row, pair in right:
            key = tuple(row[i] for i in right_positions)
            buckets.setdefault(key, []).append((row, pair))
        residual_fn = residual.compile(schema) if residual is not None else None
        for row, pair in left:
            key = tuple(row[i] for i in left_positions)
            matched = False
            if not any(part is None for part in key):
                for other_row, other_pair in buckets.get(key, ()):
                    combined_row = row + other_row
                    if residual_fn is not None and not residual_fn(combined_row):
                        continue
                    matched = True
                    rows.append(combined_row)
                    pairs.append(combine(pair, other_pair))
            if not matched:
                rows.append(row + padding)
                pairs.append(pair)
    else:
        fn = None if is_true(condition) else condition.compile(schema)
        for row, pair in left:
            matched = False
            for other_row, other_pair in right:
                combined_row = row + other_row
                if fn is not None and not fn(combined_row):
                    continue
                matched = True
                rows.append(combined_row)
                pairs.append(combine(pair, other_pair))
            if not matched:
                rows.append(row + padding)
                pairs.append(pair)

    return PRelation(schema, rows, pairs)


def product(left: PRelation, right: PRelation, aggregate: AggregateFunction = F_S) -> PRelation:
    """``R × S`` — a join with condition TRUE."""
    from ..engine.expressions import TRUE

    return join(left, right, TRUE, aggregate)




# ---------------------------------------------------------------------------
# Set operations
# ---------------------------------------------------------------------------


def _check_compatible(left: PRelation, right: PRelation, op: str) -> None:
    if not left.schema.union_compatible(right.schema):
        raise PlanError(f"{op}: schemas are not union-compatible")


def _collapse(relation: PRelation, aggregate: AggregateFunction) -> dict[Row, ScorePair]:
    """Merge duplicate rows within one input through F (set semantics)."""
    out: dict[Row, ScorePair] = {}
    for row, pair in relation:
        if row in out:
            out[row] = aggregate.combine(out[row], pair)
        else:
            out[row] = pair
    return out


def union(left: PRelation, right: PRelation, aggregate: AggregateFunction = F_S) -> PRelation:
    """``R ∪_F S``: tuples in either input; pairs of common tuples combined."""
    _check_compatible(left, right, "union")
    merged = _collapse(left, aggregate)
    for row, pair in _collapse(right, aggregate).items():
        if row in merged:
            merged[row] = aggregate.combine(merged[row], pair)
        else:
            merged[row] = pair
    return PRelation(left.schema, list(merged.keys()), list(merged.values()))


def intersect(left: PRelation, right: PRelation, aggregate: AggregateFunction = F_S) -> PRelation:
    """``R ∩_F S``: tuples in both inputs, pairs combined through F."""
    _check_compatible(left, right, "intersect")
    left_map = _collapse(left, aggregate)
    right_map = _collapse(right, aggregate)
    rows: list[Row] = []
    pairs: list[ScorePair] = []
    for row, pair in left_map.items():
        if row in right_map:
            rows.append(row)
            pairs.append(aggregate.combine(pair, right_map[row]))
    return PRelation(left.schema, rows, pairs)


def difference(left: PRelation, right: PRelation, aggregate: AggregateFunction = F_S) -> PRelation:
    """``R − S``: tuples of R absent from S, keeping R's pairs."""
    _check_compatible(left, right, "difference")
    right_rows = set(right.rows)
    left_map = _collapse(left, aggregate)
    rows = [row for row in left_map if row not in right_rows]
    return PRelation(left.schema, rows, [left_map[row] for row in rows])
