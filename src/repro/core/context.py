"""Context-dependent preferences (the [26]-style flavour of Section II).

The paper distinguishes context that is *data-dependent* (expressible in the
conditional part σ_φ, e.g. "in the context of comedies, prefer recent
years" — our multi-relational preferences cover that) from context that is
*ephemeral and external to the database* ("I like comedies when I am alone
and horror films with friends").  This module covers the latter: a
:class:`ContextualPreference` pairs a preference with a predicate over an
external context, and is only *active* — i.e. included in a query — when the
session's current context satisfies it.

A context is a plain mapping (``{"company": "alone", "daytime": "evening"}``);
the activation condition is either such a mapping (every listed key must
match; a tuple/set/list value means "any of these") or an arbitrary
predicate callable.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Mapping

from ..errors import PreferenceError
from .preference import Preference

Context = Mapping[str, Any]
ContextPredicate = Callable[[Context], bool]


class ContextualPreference:
    """A preference that applies only in matching external contexts."""

    __slots__ = ("preference", "when", "_predicate")

    def __init__(
        self,
        preference: Preference,
        when: "Mapping[str, Any] | ContextPredicate",
    ):
        self.preference = preference
        self.when = when
        if callable(when):
            self._predicate: ContextPredicate = when
        elif isinstance(when, Mapping):
            self._predicate = _mapping_predicate(when)
        else:
            raise PreferenceError(
                "ContextualPreference needs a mapping or a predicate, "
                f"got {when!r}"
            )

    @property
    def name(self) -> str:
        return self.preference.name

    def is_active(self, context: Context) -> bool:
        """True when the preference applies under *context*."""
        return bool(self._predicate(context))

    def __repr__(self) -> str:
        return f"ContextualPreference({self.preference.name}, when={self.when!r})"


def _mapping_predicate(requirements: Mapping[str, Any]) -> ContextPredicate:
    frozen = dict(requirements)

    def predicate(context: Context) -> bool:
        for key, expected in frozen.items():
            if key not in context:
                return False
            actual = context[key]
            if isinstance(expected, (tuple, set, frozenset, list)):
                if actual not in expected:
                    return False
            elif actual != expected:
                return False
        return True

    return predicate


def active_preferences(
    candidates: Iterable["Preference | ContextualPreference"],
    context: Context,
) -> list[Preference]:
    """Resolve a mixed list against *context*.

    Plain preferences are always active; contextual ones only when their
    predicate holds.  The relative order is preserved.
    """
    out: list[Preference] = []
    for candidate in candidates:
        if isinstance(candidate, ContextualPreference):
            if candidate.is_active(context):
                out.append(candidate.preference)
        else:
            out.append(candidate)
    return out
