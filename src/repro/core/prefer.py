"""The prefer operator ``λ_{p,F}(R)`` (Section IV-C).

``prefer`` evaluates a preference ``p = (σ_φ, S, C)`` on a p-relation: every
tuple satisfying the conditional part receives the pair
``F(⟨S_r, C_r⟩, ⟨S(r), C⟩)`` — its previous pair combined with the
preference's score and confidence; all other tuples pass through unchanged.
Preference evaluation never filters tuples: filtering is a separate,
subsequent phase (Section V).
"""

from __future__ import annotations

from ..engine.schema import TableSchema
from ..engine.table import Row
from typing import Callable, Sequence

from ..obs import current_tracer
from .aggregates import F_S, AggregateFunction
from .preference import Preference
from .prelation import PRelation
from .scorepair import ScorePair


def prefer(
    relation: PRelation,
    preference: Preference,
    aggregate: AggregateFunction = F_S,
) -> PRelation:
    """Evaluate *preference* over *relation*, returning a new p-relation.

    The input is not mutated.  Rows failing the conditional part keep their
    pair; rows satisfying it have their pair combined with
    ``⟨S(row), C⟩`` through *aggregate*.
    """
    combiner = make_combiner(relation.schema, preference, aggregate)
    applied = 0
    pairs = []
    for row, pair in zip(relation.rows, relation.pairs):
        fresh = combiner(row, pair)
        if fresh is not pair:  # the combiner returns the input pair untouched
            applied += 1      # unless the conditional part matched
        pairs.append(fresh)
    tracer = current_tracer()
    if tracer.enabled:
        tracer.count("rows_in", len(relation.rows))
        tracer.count("aggregate.combine", applied)
    return PRelation(relation.schema, list(relation.rows), pairs)


def prefer_seq(
    relation: PRelation,
    preferences: "Sequence[Preference]",
    aggregate: AggregateFunction = F_S,
) -> PRelation:
    """Sequentially fold *preferences* over *relation*, copying pairs ONCE.

    Identical results to ``prefer()`` applied per preference, but the rows
    and pairs lists are copied once per group instead of once per
    preference — the unfused counterpart of
    :func:`repro.pexec.batchscore.prefer_group`.
    """
    rows = list(relation.rows)
    pairs = list(relation.pairs)
    applied = 0
    for preference in preferences:
        combiner = make_combiner(relation.schema, preference, aggregate)
        for position, row in enumerate(rows):
            current = pairs[position]
            fresh = combiner(row, current)
            if fresh is not current:
                applied += 1
                pairs[position] = fresh
    tracer = current_tracer()
    if tracer.enabled:
        tracer.count("rows_in", len(rows) * len(preferences))
        tracer.count("aggregate.combine", applied)
    return PRelation(relation.schema, rows, pairs)


def make_combiner(
    schema: TableSchema,
    preference: Preference,
    aggregate: AggregateFunction = F_S,
) -> Callable[[Row, ScorePair], ScorePair]:
    """Compile the per-row core of the prefer operator against *schema*.

    The returned closure maps ``(row, current_pair)`` to the updated pair.
    Both the reference evaluator and the physical score-relation routines
    share this compilation, so their semantics cannot drift apart.
    """
    condition = preference.condition.compile(schema)
    scoring = preference.scoring.compile(schema)
    confidence = preference.confidence
    combine = aggregate.combine

    def apply(row: Row, current: ScorePair) -> ScorePair:
        if not condition(row):
            return current
        return combine(current, ScorePair(scoring(row), confidence))

    return apply
