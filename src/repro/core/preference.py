"""Preferences — the triple ``(σ_φ, S, C)`` of Definition 1.

A preference on relation(s) ``R`` consists of:

* the **conditional** part ``σ_φ`` — a boolean expression selecting the
  affected tuples (a *soft* constraint: it never disqualifies tuples, it only
  decides who gets scored);
* the **scoring** part ``S`` — a :class:`~repro.core.scoring.ScoringFunction`
  mapping affected tuples to ``[0, 1] ∪ {⊥}``;
* the **confidence** ``C ∈ [0, 1]`` — the credibility of the preference
  (1 for explicitly stated preferences, lower for learnt ones).

Atomic preferences target exactly one tuple (a user rating — conditional
part is a primary-key equality, confidence 1).  Generic preferences are
set-oriented and may span product relations (multi-relational, e.g. the
paper's p6 on ``MOVIES × GENRES``) or express membership (p7: any movie
having a join partner in ``AWARDS``, conditional part ``σ_true``).
"""

from __future__ import annotations

from typing import Any, Sequence

from ..engine.expressions import TRUE, Attr, Expr, IsNull, eq, is_true, map_attributes
from ..errors import PreferenceError
from .scoring import ConstantScore, ScoringFunction


class Preference:
    """An immutable preference triple bound to one or more relations."""

    __slots__ = ("name", "relations", "condition", "scoring", "confidence")

    def __init__(
        self,
        name: str,
        relations: Sequence[str] | str,
        condition: Expr,
        scoring: ScoringFunction | float,
        confidence: float,
    ):
        if isinstance(relations, str):
            relations = (relations,)
        if not relations:
            raise PreferenceError("a preference must name at least one relation")
        if not 0.0 <= confidence <= 1.0:
            raise PreferenceError(
                f"preference confidence must lie in [0, 1], got {confidence}"
            )
        if isinstance(scoring, (int, float)):
            scoring = ConstantScore(float(scoring))
        self.name = name
        self.relations: tuple[str, ...] = tuple(r.upper() for r in relations)
        self.condition = condition
        self.scoring = scoring
        self.confidence = float(confidence)

    # -- classification ------------------------------------------------------

    @property
    def is_multi_relational(self) -> bool:
        """Defined on a product of relations (e.g. p6 on MOVIES × GENRES)."""
        return len(self.relations) > 1

    @property
    def is_membership(self) -> bool:
        """A membership preference: σ_true over a product relation (p7)."""
        return self.is_multi_relational and is_true(self.condition)

    # -- introspection --------------------------------------------------------

    def attributes(self) -> set[str]:
        """All attributes used by either the conditional or the scoring part.

        This is the set the query parser must project through the plan and
        the set Property 4.4 inspects when pushing the prefer operator
        through a binary operator.
        """
        return self.condition.attributes() | self.scoring.attributes()

    def condition_attributes(self) -> set[str]:
        return self.condition.attributes()

    def qualify(self, catalog) -> "Preference":
        """A copy with bare attributes qualified against the declared relations.

        Evaluating a single-relation preference on a join result can make a
        bare attribute like ``d_id`` ambiguous; qualification resolves it to
        ``DIRECTORS.d_id`` up front.  Attributes that are already qualified,
        unknown, or present in several of the declared relations are left
        untouched.
        """
        schemas = []
        for name in self.relations:
            if catalog.has_table(name):
                schemas.append(catalog.table(name).schema)

        def qualify_attr(attr: str) -> str:
            if "." in attr:
                return attr
            owners = [s for s in schemas if s.has(attr)]
            if len(owners) != 1:
                return attr
            return owners[0].column(attr).qualified_name

        condition = map_attributes(self.condition, qualify_attr)
        scoring = self.scoring.map_attributes(qualify_attr)
        if condition == self.condition and scoring == self.scoring:
            return self
        return Preference(self.name, self.relations, condition, scoring, self.confidence)

    def describe(self) -> str:
        relations = "×".join(self.relations)
        return (
            f"{self.name}[{relations}] = (σ{{{self.condition!r}}}, "
            f"{self.scoring.describe()}, {self.confidence:g})"
        )

    def __repr__(self) -> str:
        return f"Preference({self.describe()})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Preference):
            return NotImplemented
        return (
            self.name == other.name
            and self.relations == other.relations
            and self.condition == other.condition
            and self.scoring == other.scoring
            and self.confidence == other.confidence
        )

    def __hash__(self) -> int:
        return hash((self.name, self.relations, self.condition, self.scoring, self.confidence))

    # -- constructors ----------------------------------------------------------

    @classmethod
    def atomic(
        cls,
        relation: str,
        key_attr: str,
        key_value: Any,
        score: float,
        name: str | None = None,
        confidence: float = 1.0,
    ) -> "Preference":
        """An atomic preference for exactly one tuple (a user rating).

        Example 1: ``p1[MOVIES] = (σ_{m_id=m3}, 0.8, 1)``.
        """
        return cls(
            name or f"atomic({relation}.{key_attr}={key_value!r})",
            relation,
            eq(key_attr, key_value),
            ConstantScore(score),
            confidence,
        )

    @classmethod
    def membership_outer(
        cls,
        relations: Sequence[str],
        partner_key: str,
        score: float = 1.0,
        confidence: float = 1.0,
        name: str | None = None,
    ) -> "Preference":
        """A membership preference for use over a LEFT OUTER join.

        Over an inner join every result tuple has a partner, so p7's σ_true
        works; over ``R ⟕ S`` the condition must reject the NULL-padded rows
        instead: ``σ_{S.key IS NOT NULL}``.  *partner_key* names a key
        attribute of the joined (nullable) relation.
        """
        return cls(
            name or f"member({'×'.join(relations)})",
            relations,
            IsNull(Attr(partner_key), negated=True),
            ConstantScore(score),
            confidence,
        )

    @classmethod
    def membership(
        cls,
        relations: Sequence[str],
        score: float = 1.0,
        confidence: float = 1.0,
        name: str | None = None,
    ) -> "Preference":
        """A membership preference: tuples having a join partner are preferred.

        Example 3 / p7: ``p7[MOVIES × AWARDS] = (σ_true, 1, 0.9)``.
        """
        return cls(
            name or f"member({'×'.join(relations)})",
            relations,
            TRUE,
            ConstantScore(score),
            confidence,
        )
