"""Preference groups — fused single-pass evaluation of many preferences.

A :class:`PreferenceGroup` is an *ordered* sequence of preferences sharing
one aggregate function F.  Evaluating the group sequentially — one full pass
over the input per preference, the shape of the naive prefer fold — costs
O(|R|·|λ|) condition checks.  Compiling the group against a schema yields a
:class:`CompiledGroup` that evaluates every preference in a **single pass**
over the rows, with three cooperating optimizations:

* **Preference dispatch index** — preferences whose conditional part carries
  an equality conjunct (``attr = v``, or ``attr IN (v1..vk)``) are bucketed
  into per-attribute hash maps ``value → [preferences]``.  Each row then
  *probes* one map per distinct dispatch attribute instead of testing every
  condition: O(|R| + matches) instead of O(|R|·|λ|).  Conditions with no
  usable equality conjunct fall back to a residual always-check list, so the
  index is a pure optimization, never a semantic restriction.
* **Fused combining** — all matching ⟨S, C⟩ pairs of a row are folded
  through F in one loop.  Fold safety rests on Definition 3: F is
  associative and commutative (asserted via the registered-aggregate law
  checks before any group is built), which is exactly what makes the
  per-row fused fold order equivalent to the per-preference sequential
  order.  Where float identity matters (duplicate score-relation keys) the
  fold replays the sequential ``(preference, row)`` order bit-for-bit.
* **Memoized distinct-value scoring** — condition and scoring outcomes
  depend only on the *preference-relevant* attributes, and workload rows
  share few distinct values on preferred attributes.  The compiled group
  caches the full match list per projection of those attributes, so a
  repeated value combination costs one dict lookup.  Caches live on the
  compiled group — created per evaluation, on the Intermediate/PRelation
  side — never on shared tables, so snapshot isolation is preserved.

Chomicki's semantic-optimization line of work (see PAPERS.md) prunes and
reuses preference evaluation by exploiting the structure of the preference
formula; this module is the same idea applied at the physical layer.
"""

from __future__ import annotations

from operator import itemgetter
from typing import Callable, Sequence

from ..engine.expressions import (
    Attr,
    Comparison,
    Expr,
    InList,
    Literal,
    conjoin,
    conjuncts,
    is_true,
)
from ..engine.schema import TableSchema
from ..engine.table import Row
from ..errors import PreferenceError, SchemaError
from .aggregates import AggregateFunction, failed_laws
from .preference import Preference
from .scorepair import ScorePair
from .scoring import ConstantScore

#: Memoization is skipped when a group reads more than this many distinct
#: attributes: building a wide projection tuple per row would cost more than
#: the dispatch probes it saves.
MEMO_MAX_ATTRS = 8

#: Adaptive memo bailout: after this many distinct projections, a pass whose
#: hit rate is below one hit per ``MEMO_BAILOUT_RATIO`` misses abandons the
#: memo — the projections are evidently near-unique (e.g. keyed on an id
#: column), so every lookup is a wasted key build.
MEMO_BAILOUT_MISSES = 512
MEMO_BAILOUT_RATIO = 4

#: Aggregate instances whose Definition 3 laws have been verified for fused
#: folding (value keeps the instance alive so ids stay unambiguous).
_FOLD_SAFE: dict[int, AggregateFunction] = {}


def ensure_fold_safe(aggregate: AggregateFunction) -> None:
    """Assert (once per instance) that *aggregate* may be folded in any order.

    The fused combiner reorders applications relative to the sequential
    per-preference fold; that is only sound for an associative, commutative
    F with identity ⟨⊥,0⟩ — Definition 3, re-checked here via the same law
    suite :func:`repro.core.aggregates.register_aggregate` runs.
    """
    if id(aggregate) in _FOLD_SAFE:
        return
    failures = failed_laws(aggregate)
    if failures:
        raise PreferenceError(
            f"aggregate {aggregate.name!r} is not safe for fused batch "
            "scoring; Definition 3 violations: " + "; ".join(failures)
        )
    _FOLD_SAFE[id(aggregate)] = aggregate


class GroupStats:
    """Counters of one fused evaluation pass (reported as ``prefer.batch``)."""

    __slots__ = (
        "rows_in",
        "probes",
        "dispatch_hits",
        "residual_checks",
        "memo_hits",
        "fused_combines",
        "matches",
    )

    def __init__(self) -> None:
        self.rows_in = 0
        self.probes = 0
        self.dispatch_hits = 0
        self.residual_checks = 0
        self.memo_hits = 0
        self.fused_combines = 0
        self.matches = 0

    def as_dict(self) -> dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}


class _Entry:
    """One compiled preference: dispatch metadata plus row closures."""

    __slots__ = ("index", "condition", "residual", "scoring", "confidence", "pair")

    def __init__(self, index, condition, residual, scoring, confidence, pair=None):
        self.index = index
        #: Full compiled condition (used on the residual always-check list).
        self.condition = condition
        #: Non-equality conjuncts of an indexed condition; ``None`` when the
        #: dispatch probe alone decides the match.
        self.residual = residual
        self.scoring = scoring
        self.confidence = confidence
        #: Precomputed ⟨S,C⟩ when S is row-independent (``ConstantScore``) —
        #: the common workload shape; saves a NamedTuple build per match.
        self.pair = pair


def dispatch_probe(condition: Expr) -> "tuple[str, tuple, Expr | None] | None":
    """Extract an equality probe ``(attr, values, residual)`` from *condition*.

    Returns ``None`` when the condition has no top-level equality conjunct a
    hash index can serve — the preference then joins the residual list.
    ``values`` is every constant the attribute may equal (one for ``=``,
    several for ``IN``); ``residual`` is the conjunction of the remaining
    conjuncts, or ``None`` when the probe alone is the condition.

    NULL care: ``attr = NULL`` never matches (engine NULL semantics), and an
    ``IN`` list containing NULL *does* match NULL rows — a hash probe keyed
    on the row value cannot honour both, so the former is registered with no
    values and the latter is declared non-indexable.
    """
    parts = conjuncts(condition)
    for position, part in enumerate(parts):
        probe = _single_probe(part)
        if probe is None:
            continue
        attr, values = probe
        rest = conjoin(parts[:position] + parts[position + 1 :])
        return attr, values, (None if is_true(rest) else rest)
    return None


def _single_probe(part: Expr) -> "tuple[str, tuple] | None":
    if isinstance(part, Comparison) and part.op == "=":
        left, right = part.left, part.right
        if isinstance(left, Literal) and isinstance(right, Attr):
            left, right = right, left
        if isinstance(left, Attr) and isinstance(right, Literal):
            if right.value is None:
                return left.name, ()  # attr = NULL: matches nothing
            return left.name, (right.value,)
        return None
    if isinstance(part, InList) and isinstance(part.expr, Attr):
        if any(value is None for value in part.values):
            return None  # IN (... NULL ...) matches NULL rows; not probe-able
        return part.expr.name, tuple(part.values)
    return None


class PreferenceGroup:
    """An ordered run of preferences evaluated under one aggregate F.

    Order is semantic: it is the sequential fold order the fused evaluation
    replays exactly (innermost/first preference applied first).
    """

    __slots__ = ("preferences", "aggregate")

    def __init__(
        self, preferences: Sequence[Preference], aggregate: AggregateFunction
    ):
        if not preferences:
            raise PreferenceError("a preference group needs at least one preference")
        ensure_fold_safe(aggregate)
        self.preferences: tuple[Preference, ...] = tuple(preferences)
        self.aggregate = aggregate

    def __len__(self) -> int:
        return len(self.preferences)

    def compile(self, schema: TableSchema) -> "CompiledGroup":
        return CompiledGroup(self, schema)


class CompiledGroup:
    """A :class:`PreferenceGroup` compiled against one row schema."""

    __slots__ = (
        "group",
        "schema",
        "combine",
        "stats",
        "_dispatch",
        "_fast",
        "_residual",
        "_memo",
        "_memo_positions",
        "_memo_key",
        "_indexed_count",
    )

    def __init__(self, group: PreferenceGroup, schema: TableSchema):
        self.group = group
        self.schema = schema
        self.combine = group.aggregate.combine
        self.stats = GroupStats()
        #: row position → (value → [entry, ...])  — the dispatch index.
        self._dispatch: list[tuple[int, dict]] = []
        self._residual: list[_Entry] = []
        dispatch_tables: dict[int, dict] = {}
        relevant: set[str] = set()
        self._indexed_count = 0
        for index, preference in enumerate(group.preferences):
            relevant |= preference.attributes()
            scoring = preference.scoring.compile(schema)
            confidence = preference.confidence
            pair = (
                ScorePair(preference.scoring.value, confidence)
                if isinstance(preference.scoring, ConstantScore)
                else None
            )
            probe = dispatch_probe(preference.condition)
            if probe is not None:
                attr, values, residual_expr = probe
                try:
                    position = schema.index_of(attr)
                except SchemaError:
                    probe = None
                else:
                    residual = (
                        None
                        if residual_expr is None
                        else residual_expr.compile(schema)
                    )
                    entry = _Entry(index, None, residual, scoring, confidence, pair)
                    table = dispatch_tables.setdefault(position, {})
                    for value in values:
                        table.setdefault(value, []).append(entry)
                    self._indexed_count += 1
            if probe is None:
                condition = preference.condition.compile(schema)
                self._residual.append(
                    _Entry(index, condition, None, scoring, confidence, pair)
                )
        self._dispatch = sorted(dispatch_tables.items())
        # Pure-dispatch fast path: with no residual list, no per-entry
        # residual conjuncts and row-independent scoring, a probe's match
        # list is fully determined by the probed value — precompute it, so a
        # row costs one dict lookup per dispatch attribute and nothing else.
        self._fast: "list[tuple[int, dict]] | None" = None
        if self._dispatch and not self._residual:
            eligible = all(
                entry.residual is None and entry.pair is not None
                for _, table in self._dispatch
                for entries in table.values()
                for entry in entries
            )
            if eligible:
                self._fast = [
                    (
                        position,
                        {
                            value: [(e.index, e.pair) for e in entries]
                            for value, entries in table.items()
                        },
                    )
                    for position, table in self._dispatch
                ]
        self._memo: dict[tuple, list] = {}
        if all(_resolves(schema, a) for a in relevant):
            positions = sorted({schema.index_of(a) for a in relevant})
        else:
            positions = None
        if positions is not None and len(positions) <= MEMO_MAX_ATTRS:
            self._memo_positions: tuple[int, ...] | None = tuple(positions)
            # itemgetter builds the projection key at C speed; with one
            # position it yields a bare value, which is an equally good (and
            # cheaper) dict key than a 1-tuple.
            self._memo_key: "Callable[[Row], object] | None" = (
                itemgetter(*positions) if positions else _EMPTY_KEY
            )
        else:
            # Wide or unresolvable projections: memoization would cost more
            # than it saves (or would be unsound); fall back to dispatch.
            self._memo_positions = None
            self._memo_key = None

    # -- introspection (unit tests / docs) -----------------------------------

    @property
    def indexed_count(self) -> int:
        """How many preferences the dispatch index serves."""
        return self._indexed_count

    @property
    def residual_count(self) -> int:
        """How many preferences fall back to the always-check list."""
        return len(self._residual)

    @property
    def memo_enabled(self) -> bool:
        return self._memo_positions is not None

    # -- per-row match computation -------------------------------------------

    def matches(self, row: Row) -> "list[tuple[int, ScorePair]]":
        """The row's matching ``(preference index, ⟨S,C⟩)`` list, in group order."""
        stats = self.stats
        stats.rows_in += 1
        memo_key = self._memo_key
        if memo_key is not None:
            key = memo_key(row)
            cached = self._memo.get(key)
            if cached is not None:
                stats.memo_hits += 1
                stats.matches += len(cached)
                return cached
            result = self._compute_matches(row)
            self._memo[key] = result
            stats.matches += len(result)
            return result
        result = self._compute_matches(row)
        stats.matches += len(result)
        return result

    def _compute_matches(self, row: Row) -> "list[tuple[int, ScorePair]]":
        stats = self.stats
        fast = self._fast
        if fast is not None:
            found: "list[tuple[int, ScorePair]] | None" = None
            merged = False
            hit_count = 0
            for position, table in fast:
                value = row[position]
                if value is None:
                    continue  # equality never matches NULL
                lst = table.get(value)
                if not lst:
                    continue
                hit_count += len(lst)
                if found is None:
                    found = lst  # the shared precomputed list; never mutated
                else:
                    found = found + lst
                    merged = True
            stats.probes += len(fast)
            if found is None:
                return _NO_MATCHES
            stats.dispatch_hits += hit_count
            if merged:
                # Concatenation of per-table lists: restore group order.
                found.sort(key=_match_index)
            return found
        hits: list[_Entry] = []
        probes = 0
        dispatch_hits = 0
        residual_checks = 0
        for position, table in self._dispatch:
            probes += 1
            value = row[position]
            if value is None:
                continue  # equality never matches NULL
            entries = table.get(value)
            if not entries:
                continue
            dispatch_hits += len(entries)
            for entry in entries:
                residual = entry.residual
                if residual is not None:
                    residual_checks += 1
                    if not residual(row):
                        continue
                hits.append(entry)
        for entry in self._residual:
            residual_checks += 1
            if entry.condition(row):
                hits.append(entry)
        stats.probes += probes
        stats.dispatch_hits += dispatch_hits
        stats.residual_checks += residual_checks
        if not hits:
            return _NO_MATCHES
        if len(hits) > 1:
            hits.sort(key=_entry_index)
        return [
            (
                entry.index,
                entry.pair
                if entry.pair is not None
                else ScorePair(entry.scoring(row), entry.confidence),
            )
            for entry in hits
        ]

    def _bail_out_of_memo(self) -> None:
        """Drop the memo for this group: projections proved near-unique.

        Called from the bulk loops once ``MEMO_BAILOUT_MISSES`` distinct
        projections accumulated with a sub-``1/MEMO_BAILOUT_RATIO`` hit rate;
        returns ``None`` so callers can rebind their local ``memo_key``.
        """
        self._memo_key = None
        self._memo_positions = None
        self._memo.clear()
        return None

    # -- fused evaluation ----------------------------------------------------

    def score_pairs(self, rows: Sequence[Row], pairs: Sequence[ScorePair]) -> list[ScorePair]:
        """Fused prefer fold over parallel (row, pair) arrays (PRelation form).

        Bit-identical to folding each preference over the arrays in group
        order: rows are independent here, so the per-row fused fold *is* the
        sequential order.
        """
        combine = self.combine
        memo = self._memo
        memo_key = self._memo_key
        compute = self._compute_matches
        memo_hits = 0
        misses = 0
        match_count = 0
        out: list[ScorePair] = []
        append = out.append
        for row, current in zip(rows, pairs):
            if memo_key is not None:
                key = memo_key(row)
                matched = memo.get(key)
                if matched is None:
                    matched = compute(row)
                    memo[key] = matched
                    misses += 1
                    if (
                        misses == MEMO_BAILOUT_MISSES
                        and memo_hits * MEMO_BAILOUT_RATIO < misses
                    ):
                        memo_key = self._bail_out_of_memo()
                else:
                    memo_hits += 1
            else:
                matched = compute(row)
            if matched:
                match_count += len(matched)
                for _, fresh in matched:
                    current = combine(current, fresh)
            append(current)
        stats = self.stats
        stats.rows_in += len(out)
        stats.memo_hits += memo_hits
        stats.matches += match_count
        stats.fused_combines += match_count
        return out

    def score_rows(
        self,
        rows: Sequence[Row],
        key_fn: Callable[[Row], tuple],
        base: "dict[tuple, ScorePair] | None" = None,
    ) -> "dict[tuple, ScorePair]":
        """Fused prefer fold into a sparse score relation (Intermediate form).

        Replays the sequential semantics of ``scorerel.apply_prefer`` exactly,
        including the removal of keys whose pair collapses to the default:
        matches are folded per key in ``(preference, row)`` order — the order
        |λ| separate passes would have produced — so results stay
        bit-identical even when several rows share a score-relation key.
        """
        stats = self.stats
        combine = self.combine
        memo = self._memo
        memo_key = self._memo_key
        compute = self._compute_matches
        memo_hits = 0
        misses = 0
        match_count = 0
        rows_in = 0
        scores: dict[tuple, ScorePair] = dict(base) if base else {}
        buckets: dict[tuple, list] = {}
        for sequence, row in enumerate(rows):
            rows_in += 1
            if memo_key is not None:
                mkey = memo_key(row)
                matched = memo.get(mkey)
                if matched is None:
                    matched = compute(row)
                    memo[mkey] = matched
                    misses += 1
                    if (
                        misses == MEMO_BAILOUT_MISSES
                        and memo_hits * MEMO_BAILOUT_RATIO < misses
                    ):
                        memo_key = self._bail_out_of_memo()
                else:
                    memo_hits += 1
            else:
                matched = compute(row)
            if not matched:
                continue
            match_count += len(matched)
            key = key_fn(row)
            bucket = buckets.get(key)
            if bucket is None:
                buckets[key] = [(sequence, matched)]
            else:
                bucket.append((sequence, matched))
        stats.rows_in += rows_in
        stats.memo_hits += memo_hits
        stats.matches += match_count
        for key, per_row in buckets.items():
            if len(per_row) == 1:
                flat = per_row[0][1]
            else:
                # Re-serialize to the sequential fold order: preference-major,
                # then row order — what per-preference passes would have done.
                triples = [
                    (index, sequence, fresh)
                    for sequence, matched in per_row
                    for index, fresh in matched
                ]
                triples.sort(key=_triple_order)
                flat = [(index, fresh) for index, _, fresh in triples]
            previous = scores.get(key)
            for _, fresh in flat:
                if previous is None:
                    combined = fresh
                else:
                    combined = combine(previous, fresh)
                    stats.fused_combines += 1
                previous = None if combined.is_default else combined
            if previous is None:
                scores.pop(key, None)
            else:
                scores[key] = previous
        return scores


#: Shared result for rows matching no preference — by far the common case
#: under selective pools; never mutated by callers.
_NO_MATCHES: "list[tuple[int, ScorePair]]" = []


def _EMPTY_KEY(row: Row) -> tuple:
    """Memo key for attribute-free groups: every row projects to ``()``."""
    return ()


#: Sort key restoring group order after merging per-table match lists.
_match_index = itemgetter(0)


def _entry_index(entry: _Entry) -> int:
    return entry.index


def _triple_order(triple) -> tuple[int, int]:
    return (triple[0], triple[1])


def _resolves(schema: TableSchema, attr: str) -> bool:
    try:
        schema.index_of(attr)
    except SchemaError:
        return False
    return True
