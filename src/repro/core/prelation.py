"""p-relations (Definition 2) and score relations (§VI implementation).

Two representations of the same concept live here:

* :class:`PRelation` — the *value-level* view: every row carries its
  ``⟨score, conf⟩`` pair explicitly (parallel arrays beside the row list).
  This is the representation of Definition 2 and what the reference
  evaluator and the extended algebra operate on.
* :class:`ScoreRelation` — the *physical* view used by the execution
  strategies, mirroring the paper's prototype: a side table
  ``R_P(pk, score, conf)`` holding **only** tuples with non-default pairs,
  keyed by the (possibly composite) primary key of the base relation.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Sequence

from ..engine.schema import TableSchema
from ..engine.table import Row, Table
from ..errors import ExecutionError
from .scorepair import IDENTITY, ScorePair


class PRelation:
    """A relation whose tuples carry explicit score/confidence pairs."""

    __slots__ = ("schema", "rows", "pairs")

    def __init__(
        self,
        schema: TableSchema,
        rows: Sequence[Row] = (),
        pairs: Sequence[ScorePair] | None = None,
    ):
        self.schema = schema
        self.rows: list[Row] = list(rows)
        if pairs is None:
            self.pairs: list[ScorePair] = [IDENTITY] * len(self.rows)
        else:
            if len(pairs) != len(self.rows):
                raise ExecutionError(
                    f"PRelation needs one pair per row: {len(rows)} rows, {len(pairs)} pairs"
                )
            self.pairs = list(pairs)

    # -- constructors ----------------------------------------------------------

    @classmethod
    def from_table(cls, table: Table) -> "PRelation":
        """Lift a base table: every tuple gets the default pair ⟨⊥, 0⟩."""
        return cls(table.schema, list(table.rows))

    @classmethod
    def from_triples(
        cls, schema: TableSchema, triples: Iterable[tuple[Row, float | None, float]]
    ) -> "PRelation":
        rows: list[Row] = []
        pairs: list[ScorePair] = []
        for row, score, conf in triples:
            rows.append(tuple(row))
            pairs.append(ScorePair(score, conf))
        return cls(schema, rows, pairs)

    # -- access -----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[tuple[Row, ScorePair]]:
        return zip(self.rows, self.pairs)

    def triples(self) -> Iterator[tuple[Row, float | None, float]]:
        """Iterate ``(row, score, conf)`` triples."""
        for row, p in zip(self.rows, self.pairs):
            yield row, p.score, p.conf

    def append(self, row: Row, pair: ScorePair) -> None:
        self.rows.append(row)
        self.pairs.append(pair)

    def scored_fraction(self) -> float:
        """Fraction of tuples carrying a non-default pair."""
        if not self.rows:
            return 0.0
        return sum(1 for p in self.pairs if not p.is_default) / len(self.rows)

    # -- ordering / presentation --------------------------------------------------

    def sorted_by(self, key: str = "score", descending: bool = True) -> "PRelation":
        """A copy ordered by ``score`` or ``conf``; ⊥ scores sort last."""
        if key not in ("score", "conf"):
            raise ExecutionError(f"sort key must be 'score' or 'conf', got {key!r}")

        def sort_key(item: tuple[Row, ScorePair]):
            _, p = item
            value = p.score if key == "score" else p.conf
            missing = value is None
            return (missing, -(value or 0.0) if descending else (value or 0.0))

        ordered = sorted(zip(self.rows, self.pairs), key=sort_key)
        return PRelation(self.schema, [r for r, _ in ordered], [p for _, p in ordered])

    def as_multiset(self, precision: int = 9) -> dict[tuple, int]:
        """Multiset of rounded ``(row, score, conf)`` triples, for comparisons."""
        out: dict[tuple, int] = {}
        for row, p in zip(self.rows, self.pairs):
            score = None if p.score is None else round(p.score, precision)
            key = (row, score, round(p.conf, precision))
            out[key] = out.get(key, 0) + 1
        return out

    def same_contents(self, other: "PRelation", precision: int = 9) -> bool:
        """Order-insensitive equality with float rounding — the oracle check."""
        return self.as_multiset(precision) == other.as_multiset(precision)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        name = self.schema.name or "<derived>"
        return f"PRelation({name}, {len(self.rows)} rows)"


class ScoreRelation:
    """The paper's ``R_P(pk, score, conf)``: sparse pairs keyed by primary key.

    Only non-default pairs are stored, so ``|R_P| ≤ |R|``.  For join and set
    operation results the key is the concatenation of the input keys.
    """

    __slots__ = ("key_attrs", "entries")

    def __init__(self, key_attrs: Sequence[str], entries: dict[tuple, ScorePair] | None = None):
        if not key_attrs:
            raise ExecutionError("a score relation requires a key")
        self.key_attrs: tuple[str, ...] = tuple(key_attrs)
        self.entries: dict[tuple, ScorePair] = dict(entries or {})

    def __len__(self) -> int:
        return len(self.entries)

    def get(self, key: tuple) -> ScorePair:
        """The pair for *key*; the default ⟨⊥, 0⟩ when absent."""
        return self.entries.get(key, IDENTITY)

    def put(self, key: tuple, pair: ScorePair) -> None:
        """Store *pair*; default pairs are kept out of the table."""
        if pair.is_default:
            self.entries.pop(key, None)
        else:
            self.entries[key] = pair

    def items(self) -> Iterator[tuple[tuple, ScorePair]]:
        return iter(self.entries.items())

    def copy(self) -> "ScoreRelation":
        return ScoreRelation(self.key_attrs, dict(self.entries))

    def key_extractor(self, schema: TableSchema) -> Callable[[Row], tuple]:
        """Compile a function extracting this relation's key from rows of *schema*."""
        positions = tuple(schema.index_of(a) for a in self.key_attrs)
        return lambda row: tuple(row[i] for i in positions)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ScoreRelation(key={self.key_attrs}, {len(self.entries)} entries)"
