"""Score/confidence pairs ``⟨S, C⟩`` — the currency of the preference algebra.

The paper writes ``⟨S, C⟩`` for a score *S* with confidence *C*.  A score of
``⊥`` ("bottom") denotes lack of knowledge about how interesting a tuple is
and is the default; we represent it as Python ``None``.  The default
confidence is ``0``.  ``IDENTITY = ⟨⊥, 0⟩`` is the identity element every
aggregate function must respect (Definition 3).
"""

from __future__ import annotations

import math
from typing import NamedTuple

#: Representation of the unknown score ``⊥``.
BOTTOM = None


class ScorePair(NamedTuple):
    """An immutable ``⟨score, confidence⟩`` pair.

    ``score`` is ``None`` (⊥) or a float; a single preference assigns scores
    in ``[0, 1]``, but combined pairs may exceed 1 (paper, §IV-A).
    ``conf`` is a non-negative float; a single preference's confidence lies in
    ``[0, 1]`` but sums may exceed 1.
    """

    score: float | None
    conf: float

    @property
    def is_default(self) -> bool:
        """True for the identity ``⟨⊥, 0⟩``."""
        return self.score is None and self.conf == 0.0

    @property
    def is_bottom(self) -> bool:
        """True when the score is unknown (⊥)."""
        return self.score is None

    def approx_equal(self, other: "ScorePair", tolerance: float = 1e-9) -> bool:
        """Float-tolerant equality used throughout the test suite."""
        if (self.score is None) != (other.score is None):
            return False
        if self.score is not None and not math.isclose(
            self.score, other.score, rel_tol=tolerance, abs_tol=tolerance
        ):
            return False
        return math.isclose(self.conf, other.conf, rel_tol=tolerance, abs_tol=tolerance)

    def __repr__(self) -> str:
        score = "⊥" if self.score is None else f"{self.score:.4g}"
        return f"⟨{score},{self.conf:.4g}⟩"


#: ``⟨⊥, 0⟩`` — default pair of every tuple and identity element of every F.
IDENTITY = ScorePair(BOTTOM, 0.0)


def pair(score: float | None, conf: float) -> ScorePair:
    """Build a validated :class:`ScorePair`."""
    if conf < 0:
        raise ValueError(f"confidence must be non-negative, got {conf}")
    return ScorePair(score, float(conf))


def bottom(conf: float = 0.0) -> ScorePair:
    """A ⟨⊥, conf⟩ pair: an unknown score carrying *conf* worth of evidence.

    The only sanctioned way to build bottom pairs outside this module (the
    lint rule LN102 flags literal ``ScorePair(None, ...)`` constructions so
    the representation of ⊥ stays a single-module decision).
    """
    if conf < 0:
        raise ValueError(f"confidence must be non-negative, got {conf}")
    return ScorePair(BOTTOM, float(conf))


def scores_close(a: float | None, b: float | None, tolerance: float = 1e-9) -> bool:
    """Float-tolerant score equality, ⊥-aware.

    Combined scores are weighted means: exact ``==`` on them is a latent bug
    (lint rule LN101).  ⊥ equals only ⊥.
    """
    if a is None or b is None:
        return a is None and b is None
    return math.isclose(a, b, rel_tol=tolerance, abs_tol=tolerance)
