"""Scoring functions — the ``S`` part of a preference (Definition 1).

A scoring function maps the attribute values of a tuple to a score in
``[0, 1] ∪ {⊥}``.  Like engine expressions, scoring functions are compiled
once against a schema into a row closure, so evaluating a preference over a
relation costs no per-row name resolution.

The paper's running examples (Section III) are provided as constructors:

* ``S_r(rating) = 0.1 · rating``                      → :func:`rating_score`
* ``S_m(year, x) = year / x``                         → :func:`recency_score`
* ``S_d(duration, x) = 1 − |duration − x| / x``       → :func:`around_score`
* ``0.5·S_m + 0.5·S_d`` (multi-attribute, pref. p5)   → :func:`weighted`

Arbitrary arithmetic over attributes is available through :class:`ExprScore`
and arbitrary Python callables through :class:`CallableScore`.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from ..engine.expressions import Arithmetic, Attr, Expr, Func, Literal
from ..engine.schema import TableSchema
from ..errors import PreferenceError

Row = tuple
ScoreFn = Callable[[Row], float | None]


def _clamp_unit(value: Any) -> float | None:
    """Force a raw scoring result into ``[0, 1] ∪ {⊥}``."""
    if value is None:
        return None
    if value < 0.0:
        return 0.0
    if value > 1.0:
        return 1.0
    return float(value)


class ScoringFunction:
    """Base class for the scoring part ``S`` of a preference."""

    def compile(self, schema: TableSchema) -> ScoreFn:
        """Return a closure mapping a row of *schema* to a score (or ⊥)."""
        raise NotImplementedError

    def attributes(self) -> set[str]:
        """Attribute names (``A_s``) the function reads; empty for constants."""
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError

    def map_attributes(self, fn) -> "ScoringFunction":
        """Rebuild with attribute names passed through *fn* (qualification)."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"S[{self.describe()}]"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ScoringFunction):
            return NotImplemented
        return type(self) is type(other) and self._key() == other._key()

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._key()))

    def _key(self) -> tuple:
        raise NotImplementedError


class ConstantScore(ScoringFunction):
    """Assign the same score to every affected tuple (e.g. preference p3)."""

    def __init__(self, value: float):
        if not 0.0 <= value <= 1.0:
            raise PreferenceError(f"a preference score must lie in [0, 1], got {value}")
        self.value = float(value)

    def compile(self, schema: TableSchema) -> ScoreFn:
        value = self.value
        return lambda row: value

    def attributes(self) -> set[str]:
        return set()

    def map_attributes(self, fn) -> "ScoringFunction":
        return self

    def describe(self) -> str:
        return f"{self.value:g}"

    def _key(self) -> tuple:
        return (self.value,)


class ExprScore(ScoringFunction):
    """Score computed by an arithmetic expression, clamped into [0, 1].

    A ``None`` result (NULL attribute or division by zero) becomes ⊥.
    """

    def __init__(self, expr: Expr, label: str | None = None):
        self.expr = expr
        self.label = label

    def compile(self, schema: TableSchema) -> ScoreFn:
        fn = self.expr.compile(schema)
        return lambda row: _clamp_unit(fn(row))

    def attributes(self) -> set[str]:
        return self.expr.attributes()

    def map_attributes(self, fn) -> "ScoringFunction":
        from ..engine.expressions import map_attributes

        return ExprScore(map_attributes(self.expr, fn), self.label)

    def describe(self) -> str:
        return self.label or repr(self.expr)

    def _key(self) -> tuple:
        return (self.expr,)


class CallableScore(ScoringFunction):
    """Score computed by an arbitrary Python callable over named attributes.

    The callable receives the attribute values positionally, in the declared
    order; results are clamped into [0, 1], ``None`` becomes ⊥.  Declared
    attributes make the function transparent to the optimizer (Property 4.4
    needs to know which relation owns them) and to the query parser (which
    must project them).
    """

    def __init__(self, fn: Callable[..., float | None], attrs: Sequence[str], label: str | None = None):
        if not attrs:
            raise PreferenceError("CallableScore requires at least one attribute")
        self.fn = fn
        self.attrs = tuple(attrs)
        self.label = label or getattr(fn, "__name__", "callable")

    def compile(self, schema: TableSchema) -> ScoreFn:
        positions = [schema.index_of(a) for a in self.attrs]
        fn = self.fn
        if len(positions) == 1:
            position = positions[0]
            return lambda row: _clamp_unit(fn(row[position]))
        return lambda row: _clamp_unit(fn(*(row[i] for i in positions)))

    def attributes(self) -> set[str]:
        return {a.lower() for a in self.attrs}

    def map_attributes(self, fn) -> "ScoringFunction":
        return CallableScore(self.fn, [fn(a) for a in self.attrs], self.label)

    def describe(self) -> str:
        return f"{self.label}({', '.join(self.attrs)})"

    def _key(self) -> tuple:
        return (self.fn, self.attrs)


# ---------------------------------------------------------------------------
# The paper's example scoring functions
# ---------------------------------------------------------------------------


def rating_score(attr: str = "rating") -> ScoringFunction:
    """``S_r(rating) = 0.1 · rating`` — higher-rated tuples score higher."""
    return ExprScore(
        Arithmetic("*", Literal(0.1), Attr(attr)),
        label=f"S_r({attr})",
    )


def recency_score(attr: str = "year", x: int = 2011) -> ScoringFunction:
    """``S_m(year, x) = year / x`` — more recent tuples score higher."""
    if x <= 0:
        raise PreferenceError("recency_score requires a positive reference year")
    return ExprScore(
        Arithmetic("/", Attr(attr), Literal(float(x))),
        label=f"S_m({attr},{x})",
    )


def around_score(attr: str = "duration", x: float = 120.0) -> ScoringFunction:
    """``S_d(v, x) = 1 − |v − x| / x`` — tuples near the target value x win."""
    if x <= 0:
        raise PreferenceError("around_score requires a positive target value")
    deviation = Func("abs", Arithmetic("-", Attr(attr), Literal(float(x))))
    return ExprScore(
        Arithmetic("-", Literal(1.0), Arithmetic("/", deviation, Literal(float(x)))),
        label=f"S_d({attr},{x:g})",
    )


def weighted(parts: Sequence[tuple[float, ScoringFunction]]) -> ScoringFunction:
    """Weighted combination of scoring functions, e.g. preference p5:
    ``0.5·S_m(year, 2011) + 0.5·S_d(duration, 120)``.

    Only :class:`ExprScore`/:class:`ConstantScore` parts can be combined
    symbolically; a part returning ⊥ makes the whole combination ⊥
    (NULL-propagation of the underlying arithmetic).
    """
    if not parts:
        raise PreferenceError("weighted() requires at least one component")
    terms: list[Expr] = []
    labels: list[str] = []
    for weight, part in parts:
        if isinstance(part, ConstantScore):
            expr: Expr = Literal(part.value)
        elif isinstance(part, ExprScore):
            expr = part.expr
        else:
            raise PreferenceError(
                "weighted() only combines expression-based scoring functions; "
                "wrap arbitrary callables in a single CallableScore instead"
            )
        terms.append(Arithmetic("*", Literal(float(weight)), expr))
        labels.append(f"{weight:g}·{part.describe()}")
    combined = terms[0]
    for term in terms[1:]:
        combined = Arithmetic("+", combined, term)
    return ExprScore(combined, label=" + ".join(labels))
