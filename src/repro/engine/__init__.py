"""The relational engine substrate (the "native DBMS" of the paper).

Public surface: :class:`Database`, schemas/types, the expression DSL and the
statistics machinery.  The preference-aware layers live in
:mod:`repro.core`, :mod:`repro.optimizer` and :mod:`repro.pexec`.
"""

from .catalog import Catalog
from .database import Database
from .expressions import (
    TRUE,
    And,
    Arithmetic,
    Attr,
    Between,
    Comparison,
    Expr,
    Func,
    InList,
    IsNull,
    Literal,
    Not,
    Or,
    col,
    cmp,
    eq,
    lit,
)
from .iosim import CostModel
from .schema import Column, TableSchema, make_schema
from .table import Table
from .types import DataType

__all__ = [
    "Catalog",
    "Database",
    "CostModel",
    "Column",
    "TableSchema",
    "make_schema",
    "Table",
    "DataType",
    "Expr",
    "And",
    "Or",
    "Not",
    "Attr",
    "Literal",
    "Comparison",
    "Arithmetic",
    "Between",
    "InList",
    "IsNull",
    "Func",
    "TRUE",
    "col",
    "cmp",
    "eq",
    "lit",
]
