"""Cardinality estimation for logical plans.

Shared by the native optimizer (join ordering) and the preference-aware
optimizer (Heuristic 5 orders prefer chains by the selectivity of their
conditional parts; the left-deep step matches the native join order).
"""

from __future__ import annotations

from ..plan.nodes import (
    Difference,
    Intersect,
    Join,
    LeftJoin,
    Materialized,
    PlanNode,
    Prefer,
    Project,
    Relation,
    Select,
    TopK,
    Union,
)
from .catalog import Catalog
from .expressions import Attr, Comparison, Expr, conjuncts, is_true
from .schema import TableSchema
from .stats import DEFAULT_SELECTIVITY, estimate_selectivity


def estimate_cardinality(plan: PlanNode, catalog: Catalog) -> float:
    """Estimated number of output rows of *plan* (never below 0)."""
    if isinstance(plan, Relation):
        stats = catalog.stats(plan.name)
        if stats is not None:
            return float(stats.n_rows)
        return float(len(catalog.table(plan.name)))
    if isinstance(plan, Materialized):
        return float(len(plan.rows))
    if isinstance(plan, Select):
        child = estimate_cardinality(plan.child, catalog)
        return child * estimate_condition_selectivity(plan.condition, plan.child, catalog)
    if isinstance(plan, (Project, Prefer)):
        return estimate_cardinality(plan.children()[0], catalog)
    if isinstance(plan, TopK):
        return min(float(plan.k), estimate_cardinality(plan.child, catalog))
    if isinstance(plan, Join):
        return _estimate_join(plan, catalog)
    if isinstance(plan, LeftJoin):
        # Every left tuple survives; matches can only add rows.
        return max(
            estimate_cardinality(plan.left, catalog), _estimate_join(plan, catalog)
        )
    if isinstance(plan, Union):
        return estimate_cardinality(plan.left, catalog) + estimate_cardinality(
            plan.right, catalog
        )
    if isinstance(plan, Intersect):
        return min(
            estimate_cardinality(plan.left, catalog),
            estimate_cardinality(plan.right, catalog),
        )
    if isinstance(plan, Difference):
        return estimate_cardinality(plan.left, catalog)
    return 1.0


def estimate_condition_selectivity(
    condition: Expr, input_plan: PlanNode, catalog: Catalog
) -> float:
    """Selectivity of *condition* over the output of *input_plan*.

    Statistics are looked up per base relation: an attribute qualified with a
    table name uses that table's column statistics even deep inside a join
    tree (the usual attribute-independence assumption).
    """
    schema = input_plan.schema(catalog)
    stats = None
    if isinstance(input_plan, Relation):
        stats = catalog.stats(input_plan.name)
    if stats is not None:
        return estimate_selectivity(condition, schema, stats)
    # Derived input: estimate each conjunct against the base relation that
    # owns its attribute, when that can be determined.
    out = 1.0
    for part in conjuncts(condition):
        out *= _conjunct_selectivity(part, schema, input_plan, catalog)
    return out


def _conjunct_selectivity(
    part: Expr, schema: TableSchema, input_plan: PlanNode, catalog: Catalog
) -> float:
    owner = _owning_relation(part, input_plan, catalog)
    if owner is None:
        return estimate_selectivity(part, schema, None)
    owner_schema = catalog.table(owner).schema
    try:
        return estimate_selectivity(part, owner_schema, catalog.stats(owner))
    except Exception:
        return DEFAULT_SELECTIVITY


def _owning_relation(part: Expr, input_plan: PlanNode, catalog: Catalog) -> str | None:
    """The single base relation whose schema covers all of *part*'s attributes."""
    attrs = part.attributes()
    if not attrs:
        return None
    owner: str | None = None
    for name in input_plan.relations():
        if not catalog.has_table(name):
            continue
        schema = catalog.table(name).schema
        if all(schema.has(a) for a in attrs):
            if owner is not None:
                return None  # ambiguous
            owner = name
    return owner


def estimate_join_selectivity(
    condition: Expr, left: PlanNode, right: PlanNode, catalog: Catalog
) -> float:
    """Selectivity of a join condition (fraction of the cross product kept)."""
    left_schema = left.schema(catalog)
    right_schema = right.schema(catalog)
    out = 1.0
    for part in conjuncts(condition):
        if is_true(part):
            continue
        if (
            isinstance(part, Comparison)
            and part.op == "="
            and isinstance(part.left, Attr)
            and isinstance(part.right, Attr)
        ):
            ndv_left = _ndv(part.left.name, left, left_schema, catalog)
            ndv_right = _ndv(part.right.name, right, right_schema, catalog)
            ndv_left = ndv_left or _ndv(part.right.name, left, left_schema, catalog)
            ndv_right = ndv_right or _ndv(part.left.name, right, right_schema, catalog)
            denominator = max(ndv_left or 1.0, ndv_right or 1.0, 1.0)
            out /= denominator
        else:
            out *= DEFAULT_SELECTIVITY
    return out


def _ndv(
    attr: str, plan: PlanNode, schema: TableSchema, catalog: Catalog
) -> float | None:
    """Number of distinct values of *attr* in the subtree, from base stats."""
    if not schema.has(attr):
        return None
    bare = attr.rsplit(".", 1)[-1]
    for name in plan.relations():
        if not catalog.has_table(name):
            continue
        stats = catalog.stats(name)
        if stats is None:
            continue
        table_schema = catalog.table(name).schema
        if table_schema.has(attr) or table_schema.has(bare):
            column = stats.column(bare)
            if column is not None and column.n_distinct > 0:
                return float(column.n_distinct)
    return None


def _estimate_join(plan: Join, catalog: Catalog) -> float:
    left = estimate_cardinality(plan.left, catalog)
    right = estimate_cardinality(plan.right, catalog)
    selectivity = estimate_join_selectivity(plan.condition, plan.left, plan.right, catalog)
    return max(0.0, left * right * selectivity)
