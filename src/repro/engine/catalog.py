"""The catalog: tables, indexes and statistics, keyed by name."""

from __future__ import annotations

from typing import Iterable, Sequence

from ..analysis_static.sanitizer import current_sanitizer
from ..errors import CatalogError
from .index import Index, build_index
from .schema import TableSchema
from .stats import TableStats, analyze_table
from .table import Table


class Catalog:
    """Registry of tables, their secondary indexes and their statistics."""

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}
        self._indexes: dict[str, list[Index]] = {}
        self._stats: dict[str, TableStats] = {}

    # -- tables ---------------------------------------------------------------

    def create_table(self, schema: TableSchema) -> Table:
        """Register a new empty table for *schema*; names are unique."""
        key = self._key(schema.name or "")
        if key in self._tables:
            raise CatalogError(f"table {schema.name!r} already exists")
        table = Table(schema)
        self._tables[key] = table
        self._indexes[key] = []
        return table

    def drop_table(self, name: str) -> None:
        """Remove a table together with its indexes and statistics."""
        key = self._key(name)
        if key not in self._tables:
            raise CatalogError(f"table {name!r} does not exist")
        del self._tables[key]
        del self._indexes[key]
        self._stats.pop(key, None)

    def table(self, name: str) -> Table:
        """Look up a table by case-insensitive name (raises CatalogError)."""
        key = self._key(name)
        table = self._tables.get(key)
        if table is None:
            raise CatalogError(f"table {name!r} does not exist")
        return table

    def has_table(self, name: str) -> bool:
        """True when a table of that name exists."""
        return self._key(name) in self._tables

    def table_names(self) -> list[str]:
        """All table names, sorted."""
        return sorted(table.name for table in self._tables.values())

    def tables(self) -> Iterable[Table]:
        """All registered tables (unspecified order)."""
        return self._tables.values()

    # -- snapshots ---------------------------------------------------------------

    def fork(self) -> "Catalog":
        """A catalog sharing table/index/stats *objects* but no containers.

        This is the copy-on-write snapshot step: the fork and the original
        see the same (frozen) tables until a writer replaces one via
        :meth:`replace_table`; registry mutations (create/drop table or
        index, fresh statistics) on either side never surface on the other.
        """
        clone = Catalog()
        clone._tables = dict(self._tables)
        clone._indexes = {key: list(indexes) for key, indexes in self._indexes.items()}
        clone._stats = dict(self._stats)
        return clone

    def replace_table(self, table: Table) -> None:
        """Swap in a forked table and rebuild its secondary indexes fresh.

        The old table's Index objects keep serving any snapshot that shares
        them; the replacement gets brand-new indexes over its own rows so
        in-place index rebuilds after future bulk loads cannot leak across
        the snapshot boundary.
        """
        key = self._key(table.name)
        if key not in self._tables:
            raise CatalogError(f"table {table.name!r} does not exist")
        old_indexes = self._indexes.get(key, [])
        self._tables[key] = table
        self._indexes[key] = [
            build_index(table, index.attrs, index.kind) for index in old_indexes
        ]

    # -- indexes ---------------------------------------------------------------

    def create_index(self, table_name: str, attrs: Sequence[str] | str, kind: str = "hash") -> Index:
        """Build and register a secondary index over *attrs* of a table."""
        table = self.table(table_name)
        index = build_index(table, attrs, kind)
        existing = self._indexes[self._key(table_name)]
        if any(i.attrs == index.attrs and i.kind == index.kind for i in existing):
            raise CatalogError(f"index {index.name!r} already exists")
        existing.append(index)
        return index

    def indexes_on(self, table_name: str) -> list[Index]:
        """All secondary indexes of a table (empty list when none)."""
        return list(self._indexes.get(self._key(table_name), []))

    def find_index(self, table_name: str, attr: str, kind: str | None = None) -> Index | None:
        """An index whose leading column is *attr* (optionally of a given kind)."""
        wanted = attr.rsplit(".", 1)[-1].lower()
        for index in self._indexes.get(self._key(table_name), []):
            if index.attrs[0].rsplit(".", 1)[-1].lower() != wanted:
                continue
            if kind is None or index.kind == kind:
                return index
        return None

    def rebuild_indexes(self, table_name: str) -> None:
        """Refresh index contents after bulk loads."""
        sanitizer = current_sanitizer()
        for index in self._indexes.get(self._key(table_name), []):
            if sanitizer.enabled:
                # An in-place rebuild of an index a snapshot still shares
                # would rewrite the snapshot's access path under it.
                sanitizer.index_mutated(index)
            index._build()

    def index_row(self, table_name: str, row) -> None:
        """Incrementally add one freshly inserted row to the table's indexes.

        Only ever touches live-side indexes: a COW fork rebuilds fresh Index
        objects via replace_table before any post-snapshot insert reaches
        here, so snapshots never share the mutated structures.
        """
        for index in self._indexes.get(self._key(table_name), []):
            index.add(row)

    # -- statistics --------------------------------------------------------------

    def analyze(self, table_name: str | None = None) -> None:
        """Collect statistics for one table, or for all tables when omitted."""
        if table_name is None:
            for table in list(self._tables.values()):
                self._stats[self._key(table.name)] = analyze_table(table)
            return
        table = self.table(table_name)
        self._stats[self._key(table.name)] = analyze_table(table)

    def stats(self, table_name: str) -> TableStats | None:
        """Collected statistics, or ``None`` before :meth:`analyze`."""
        return self._stats.get(self._key(table_name))

    @staticmethod
    def _key(name: str) -> str:
        return name.lower()
