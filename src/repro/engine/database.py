"""The :class:`Database` facade: DDL, DML, native execution and snapshots."""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence

from ..analysis_static.sanitizer import current_sanitizer
from ..plan.nodes import PlanNode
from ..serve.rwlock import RWLock
from ..errors import CatalogError
from .catalog import Catalog
from .iosim import CostModel
from .native_optimizer import optimize_native
from .physical import execute_native
from .schema import TableSchema, make_schema
from .table import Row, Table
from .types import DataType


class Database:
    """An in-memory relational database with a PostgreSQL-shaped surface.

    This is the substrate the preference layer runs on: it owns the catalog,
    runs preference-free plans through the native optimizer and executor,
    and accumulates simulated I/O in :attr:`cost`.

    Concurrency model (see ``docs/SERVING.md``): DDL/DML methods take the
    exclusive side of an internal readers/writer lock, catalog lookups take
    the shared side, and :meth:`snapshot` captures a **copy-on-write
    snapshot** — an immutable `Database` view sharing table storage with the
    live database until a writer touches a table, at which point the live
    side forks a private copy.  Queries in a concurrent server always run
    against a snapshot, so they never need the lock and never observe a
    half-applied mutation.
    """

    def __init__(self) -> None:
        self.catalog = Catalog()
        self.cost = CostModel()
        #: Monotonic mutation counter: bumped by every DDL/DML call, copied
        #: into snapshots so results can state which version answered them.
        self.version = 0
        #: Salvage-mode loads attach a RecoveryReport here (see persist).
        self.recovery = None
        #: Per-table column caches for the columnar executor, keyed by
        #: lowercase table name → ``(version, ColumnStore)``; entries built
        #: against an older version are rebuilt on next access (see
        #: :func:`repro.columnar.column.column_store_for`).  Snapshots get a
        #: fresh dict, so cached columns never alias across versions.
        self.columnar_cache: dict = {}
        self._rwlock = RWLock("db.rwlock")
        #: Table keys captured by at least one live snapshot and not yet
        #: forked; the first post-snapshot write forks them (copy-on-write).
        self._cow: set[str] = set()
        self._frozen = False

    # -- snapshots -------------------------------------------------------------

    @property
    def is_snapshot(self) -> bool:
        """True for the immutable view :meth:`snapshot` returns."""
        return self._frozen

    def snapshot(self) -> "Database":
        """An immutable, consistent view of the database as of this instant.

        The snapshot shares row storage with the live database (cheap:
        O(#tables) dictionary copies), owns a fresh :class:`CostModel` so
        per-query statistics cannot bleed between concurrent queries, and
        refuses every mutation.  Writers proceed concurrently: their first
        write to a captured table forks it, leaving the snapshot's view
        untouched.  Snapshotting a snapshot returns the snapshot itself.
        """
        if self._frozen:
            return self
        with self._rwlock.write_locked():
            shared = set()
            for table in self.catalog.tables():
                table.freeze()
                shared.add(table.name.lower())
            self._cow = shared
            sanitizer = current_sanitizer()
            if sanitizer.enabled:
                # Register the exact objects the snapshot will share: any
                # later in-place write to one of them is a COW violation.
                tables = list(self.catalog.tables())
                indexes = [
                    index
                    for table in tables
                    for index in self.catalog.indexes_on(table.name)
                ]
                sanitizer.snapshot_captured(tables, indexes)
            snap = Database()
            snap.catalog = self.catalog.fork()
            snap.version = self.version
            snap._frozen = True
            return snap

    def _ensure_mutable(self) -> None:
        if self._frozen:
            raise CatalogError(
                "database snapshot is read-only; mutate the live database "
                "it was taken from"
            )

    def _writable_table(self, name: str) -> Table:
        """The copy-on-write gate: fork a snapshot-shared table before writing."""
        table = self.catalog.table(name)
        key = table.name.lower()
        if key in self._cow:
            table = table.fork()
            self.catalog.replace_table(table)
            self._cow.discard(key)
        return table

    # -- DDL -----------------------------------------------------------------

    def create_table(
        self,
        name: str,
        columns: Sequence[tuple[str, DataType]],
        primary_key: Sequence[str] = (),
    ) -> Table:
        """Create a table from ``(name, type)`` column specs (CREATE TABLE)."""
        schema = make_schema(name.upper(), columns, primary_key)
        return self.create_table_from_schema(schema)

    def create_table_from_schema(self, schema: TableSchema) -> Table:
        """Create a table from an existing :class:`TableSchema`."""
        with self._rwlock.write_locked():
            self._ensure_mutable()
            table = self.catalog.create_table(schema)
            self.version += 1
            return table

    def drop_table(self, name: str) -> None:
        """Remove a table, its indexes and statistics (DROP TABLE)."""
        with self._rwlock.write_locked():
            self._ensure_mutable()
            self.catalog.drop_table(name)
            self._cow.discard(name.lower())
            self.version += 1

    def create_index(self, table: str, attrs: Sequence[str] | str, kind: str = "hash"):
        """Build a secondary ``hash`` or ``btree`` index (CREATE INDEX)."""
        with self._rwlock.write_locked():
            self._ensure_mutable()
            index = self.catalog.create_index(table, attrs, kind)
            self.version += 1
            return index

    # -- DML -----------------------------------------------------------------

    def insert(self, table: str, values: Sequence[Any] | Mapping[str, Any]) -> Row:
        """Insert one row (positional tuple or column mapping)."""
        with self._rwlock.write_locked():
            self._ensure_mutable()
            writable = self._writable_table(table)
            row = writable.insert(values)
            self.catalog.index_row(writable.name, row)
            self.version += 1
            return row

    def insert_many(
        self, table: str, rows: Iterable[Sequence[Any] | Mapping[str, Any]]
    ) -> int:
        """Bulk-insert rows and refresh the table's secondary indexes."""
        with self._rwlock.write_locked():
            self._ensure_mutable()
            writable = self._writable_table(table)
            count = writable.insert_many(rows)
            self.catalog.rebuild_indexes(writable.name)
            self.version += 1
            return count

    def analyze(self, table: str | None = None) -> None:
        """Collect optimizer statistics (PostgreSQL's ANALYZE)."""
        with self._rwlock.write_locked():
            # Statistics objects are replaced, never mutated in place, so
            # snapshots keep the TableStats they captured; allowed on
            # snapshots too (their catalog dictionaries are private).
            self.catalog.analyze(table)

    # -- queries --------------------------------------------------------------

    def table(self, name: str) -> Table:
        """Look up a table by (case-insensitive) name."""
        with self._rwlock.read_locked():
            return self.catalog.table(name)

    def execute(
        self, plan: PlanNode, optimize: bool = True
    ) -> tuple[TableSchema, list[Row]]:
        """Run a preference-free plan through the native engine.

        Preference operators raise; they are handled by
        :class:`repro.pexec.engine.ExecutionEngine`.
        """
        if optimize:
            plan = optimize_native(plan, self.catalog)
        return execute_native(plan, self.catalog, self.cost)

    def explain_native(self, plan: PlanNode) -> PlanNode:
        """The plan the native optimizer would execute (PostgreSQL's EXPLAIN)."""
        return optimize_native(plan, self.catalog)

    def reset_cost(self) -> None:
        """Forget accumulated simulated-I/O counters (fresh measurement)."""
        self.cost.reset()
