"""The :class:`Database` facade: DDL, DML and native query execution."""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence

from ..plan.nodes import PlanNode
from .catalog import Catalog
from .iosim import CostModel
from .native_optimizer import optimize_native
from .physical import execute_native
from .schema import TableSchema, make_schema
from .table import Row, Table
from .types import DataType


class Database:
    """An in-memory relational database with a PostgreSQL-shaped surface.

    This is the substrate the preference layer runs on: it owns the catalog,
    runs preference-free plans through the native optimizer and executor,
    and accumulates simulated I/O in :attr:`cost`.
    """

    def __init__(self) -> None:
        self.catalog = Catalog()
        self.cost = CostModel()

    # -- DDL -----------------------------------------------------------------

    def create_table(
        self,
        name: str,
        columns: Sequence[tuple[str, DataType]],
        primary_key: Sequence[str] = (),
    ) -> Table:
        """Create a table from ``(name, type)`` column specs (CREATE TABLE)."""
        schema = make_schema(name.upper(), columns, primary_key)
        return self.catalog.create_table(schema)

    def create_table_from_schema(self, schema: TableSchema) -> Table:
        """Create a table from an existing :class:`TableSchema`."""
        return self.catalog.create_table(schema)

    def drop_table(self, name: str) -> None:
        """Remove a table, its indexes and statistics (DROP TABLE)."""
        self.catalog.drop_table(name)

    def create_index(self, table: str, attrs: Sequence[str] | str, kind: str = "hash"):
        """Build a secondary ``hash`` or ``btree`` index (CREATE INDEX)."""
        return self.catalog.create_index(table, attrs, kind)

    # -- DML -----------------------------------------------------------------

    def insert(self, table: str, values: Sequence[Any] | Mapping[str, Any]) -> Row:
        """Insert one row (positional tuple or column mapping)."""
        return self.catalog.table(table).insert(values)

    def insert_many(
        self, table: str, rows: Iterable[Sequence[Any] | Mapping[str, Any]]
    ) -> int:
        """Bulk-insert rows and refresh the table's secondary indexes."""
        count = self.catalog.table(table).insert_many(rows)
        self.catalog.rebuild_indexes(table)
        return count

    def analyze(self, table: str | None = None) -> None:
        """Collect optimizer statistics (PostgreSQL's ANALYZE)."""
        self.catalog.analyze(table)

    # -- queries --------------------------------------------------------------

    def table(self, name: str) -> Table:
        """Look up a table by (case-insensitive) name."""
        return self.catalog.table(name)

    def execute(
        self, plan: PlanNode, optimize: bool = True
    ) -> tuple[TableSchema, list[Row]]:
        """Run a preference-free plan through the native engine.

        Preference operators raise; they are handled by
        :class:`repro.pexec.engine.ExecutionEngine`.
        """
        if optimize:
            plan = optimize_native(plan, self.catalog)
        return execute_native(plan, self.catalog, self.cost)

    def explain_native(self, plan: PlanNode) -> PlanNode:
        """The plan the native optimizer would execute (PostgreSQL's EXPLAIN)."""
        return optimize_native(plan, self.catalog)

    def reset_cost(self) -> None:
        """Forget accumulated simulated-I/O counters (fresh measurement)."""
        self.cost.reset()
