"""Expression trees and their compiler.

Expressions appear in selection conditions, join predicates and in the
*conditional* part of preferences.  Trees are immutable; :meth:`Expr.compile`
turns a tree into a plain Python closure over row tuples, resolved against a
:class:`~repro.engine.schema.TableSchema` once, so per-row evaluation costs
no name lookups.

NULL semantics are deliberately simple (and documented): any comparison or
arithmetic involving ``None`` yields ``False`` / ``None`` respectively, i.e.
unknown never satisfies a condition.  This matches how the paper treats the
conditional part of a preference as a boolean soft constraint.

p-relation support: compiling with ``with_score=True`` additionally resolves
the reserved attributes ``score`` and ``conf`` to two extra trailing slots,
so the same machinery evaluates post-preference filters such as
``σ_{conf≥τ}``.
"""

from __future__ import annotations

import operator
from typing import Any, Callable, Iterable, Sequence

from ..errors import ExpressionError
from .schema import RESERVED_ATTRS, SCORE_ATTR, TableSchema

Row = tuple
RowFn = Callable[[Row], Any]


# ---------------------------------------------------------------------------
# Base class
# ---------------------------------------------------------------------------


class Expr:
    """Base class for expression-tree nodes."""

    __slots__ = ()

    def compile(self, schema: TableSchema, with_score: bool = False) -> RowFn:
        """Compile against *schema*; see the module docstring for semantics."""
        resolver = _Resolver(schema, with_score)
        return self._compile(resolver)

    def _compile(self, resolver: "_Resolver") -> RowFn:
        raise NotImplementedError

    def attributes(self) -> set[str]:
        """All attribute names referenced by this tree (lowercased, as written)."""
        out: set[str] = set()
        self._collect_attributes(out)
        return out

    def _collect_attributes(self, out: set[str]) -> None:
        for child in self.children():
            child._collect_attributes(out)

    def children(self) -> Sequence["Expr"]:
        return ()

    def references_score(self) -> bool:
        """True if the tree mentions the reserved ``score``/``conf`` attributes."""
        return any(_base_name(a) in RESERVED_ATTRS for a in self.attributes())

    # -- combinators --------------------------------------------------------

    def __and__(self, other: "Expr") -> "Expr":
        return And(self, other)

    def __or__(self, other: "Expr") -> "Expr":
        return Or(self, other)

    def __invert__(self) -> "Expr":
        return Not(self)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Expr):
            return NotImplemented
        return type(self) is type(other) and self._key() == other._key()

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._key()))

    def _key(self) -> tuple:
        raise NotImplementedError


def _base_name(attr: str) -> str:
    return attr.rsplit(".", 1)[-1].lower()


class _Resolver:
    """Maps attribute names to row-tuple positions during compilation."""

    def __init__(self, schema: TableSchema, with_score: bool):
        self.schema = schema
        self.with_score = with_score

    def index_of(self, attr: str) -> int:
        base = _base_name(attr)
        if base in RESERVED_ATTRS:
            if not self.with_score:
                raise ExpressionError(
                    f"attribute {attr!r} only exists on p-relations "
                    "(compile with with_score=True)"
                )
            offset = 0 if base == SCORE_ATTR else 1
            return len(self.schema) + offset
        return self.schema.index_of(attr)


# ---------------------------------------------------------------------------
# Leaves
# ---------------------------------------------------------------------------


class Literal(Expr):
    """A constant value."""

    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value

    def _compile(self, resolver: _Resolver) -> RowFn:
        value = self.value
        return lambda row: value

    def _key(self) -> tuple:
        return (self.value,)

    def __repr__(self) -> str:
        return repr(self.value)


class Attr(Expr):
    """A reference to an attribute, bare (``year``) or qualified (``m.year``)."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def _compile(self, resolver: _Resolver) -> RowFn:
        index = resolver.index_of(self.name)
        return operator.itemgetter(index)

    def _collect_attributes(self, out: set[str]) -> None:
        out.add(self.name.lower())

    def _key(self) -> tuple:
        return (self.name.lower(),)

    def __repr__(self) -> str:
        return self.name


TRUE = Literal(True)
FALSE = Literal(False)


# ---------------------------------------------------------------------------
# Comparisons
# ---------------------------------------------------------------------------

_COMPARATORS: dict[str, Callable[[Any, Any], bool]] = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

#: Negation map used by algebraic rewrites.
NEGATED_COMPARISON = {"=": "!=", "!=": "=", "<": ">=", "<=": ">", ">": "<=", ">=": "<"}


class Comparison(Expr):
    """``left op right`` with op in ``= != < <= > >=``; NULL compares false."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expr, right: Expr):
        if op not in _COMPARATORS:
            raise ExpressionError(f"unknown comparison operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def _compile(self, resolver: _Resolver) -> RowFn:
        left_fn = self.left._compile(resolver)
        right_fn = self.right._compile(resolver)
        compare = _COMPARATORS[self.op]
        if self.op == "=":
            def equals(row: Row) -> bool:
                lhs = left_fn(row)
                return lhs is not None and lhs == right_fn(row)
            return equals

        def compiled(row: Row) -> bool:
            lhs = left_fn(row)
            if lhs is None:
                return False
            rhs = right_fn(row)
            if rhs is None:
                return False
            return compare(lhs, rhs)

        return compiled

    def children(self) -> Sequence[Expr]:
        return (self.left, self.right)

    def negate(self) -> "Comparison":
        return Comparison(NEGATED_COMPARISON[self.op], self.left, self.right)

    def _key(self) -> tuple:
        return (self.op, self.left, self.right)

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


class InList(Expr):
    """``expr IN (v1, v2, ...)`` over constant values."""

    __slots__ = ("expr", "values")

    def __init__(self, expr: Expr, values: Iterable[Any]):
        self.expr = expr
        self.values = frozenset(values)

    def _compile(self, resolver: _Resolver) -> RowFn:
        fn = self.expr._compile(resolver)
        values = self.values
        return lambda row: fn(row) in values

    def children(self) -> Sequence[Expr]:
        return (self.expr,)

    def _key(self) -> tuple:
        return (self.expr, self.values)

    def __repr__(self) -> str:
        return f"({self.expr!r} IN {sorted(map(repr, self.values))})"


class Between(Expr):
    """``low <= expr <= high`` with constant bounds; NULL is outside."""

    __slots__ = ("expr", "low", "high")

    def __init__(self, expr: Expr, low: Any, high: Any):
        self.expr = expr
        self.low = low
        self.high = high

    def _compile(self, resolver: _Resolver) -> RowFn:
        fn = self.expr._compile(resolver)
        low, high = self.low, self.high

        def compiled(row: Row) -> bool:
            value = fn(row)
            return value is not None and low <= value <= high

        return compiled

    def children(self) -> Sequence[Expr]:
        return (self.expr,)

    def _key(self) -> tuple:
        return (self.expr, self.low, self.high)

    def __repr__(self) -> str:
        return f"({self.expr!r} BETWEEN {self.low!r} AND {self.high!r})"


class IsNull(Expr):
    __slots__ = ("expr", "negated")

    def __init__(self, expr: Expr, negated: bool = False):
        self.expr = expr
        self.negated = negated

    def _compile(self, resolver: _Resolver) -> RowFn:
        fn = self.expr._compile(resolver)
        if self.negated:
            return lambda row: fn(row) is not None
        return lambda row: fn(row) is None

    def children(self) -> Sequence[Expr]:
        return (self.expr,)

    def _key(self) -> tuple:
        return (self.expr, self.negated)

    def __repr__(self) -> str:
        return f"({self.expr!r} IS {'NOT ' if self.negated else ''}NULL)"


# ---------------------------------------------------------------------------
# Boolean connectives
# ---------------------------------------------------------------------------


class And(Expr):
    __slots__ = ("operands",)

    def __init__(self, *operands: Expr):
        flat: list[Expr] = []
        for op in operands:
            if isinstance(op, And):
                flat.extend(op.operands)
            else:
                flat.append(op)
        if not flat:
            raise ExpressionError("And() requires at least one operand")
        self.operands = tuple(flat)

    def _compile(self, resolver: _Resolver) -> RowFn:
        fns = [op._compile(resolver) for op in self.operands]
        if len(fns) == 2:
            first, second = fns
            return lambda row: bool(first(row)) and bool(second(row))
        return lambda row: all(fn(row) for fn in fns)

    def children(self) -> Sequence[Expr]:
        return self.operands

    def _key(self) -> tuple:
        return (frozenset(self.operands),)

    def __repr__(self) -> str:
        return "(" + " AND ".join(map(repr, self.operands)) + ")"


class Or(Expr):
    __slots__ = ("operands",)

    def __init__(self, *operands: Expr):
        flat: list[Expr] = []
        for op in operands:
            if isinstance(op, Or):
                flat.extend(op.operands)
            else:
                flat.append(op)
        if not flat:
            raise ExpressionError("Or() requires at least one operand")
        self.operands = tuple(flat)

    def _compile(self, resolver: _Resolver) -> RowFn:
        fns = [op._compile(resolver) for op in self.operands]
        if len(fns) == 2:
            first, second = fns
            return lambda row: bool(first(row)) or bool(second(row))
        return lambda row: any(fn(row) for fn in fns)

    def children(self) -> Sequence[Expr]:
        return self.operands

    def _key(self) -> tuple:
        return (frozenset(self.operands),)

    def __repr__(self) -> str:
        return "(" + " OR ".join(map(repr, self.operands)) + ")"


class Not(Expr):
    __slots__ = ("operand",)

    def __init__(self, operand: Expr):
        self.operand = operand

    def _compile(self, resolver: _Resolver) -> RowFn:
        fn = self.operand._compile(resolver)
        return lambda row: not fn(row)

    def children(self) -> Sequence[Expr]:
        return (self.operand,)

    def _key(self) -> tuple:
        return (self.operand,)

    def __repr__(self) -> str:
        return f"(NOT {self.operand!r})"


# ---------------------------------------------------------------------------
# Arithmetic and scalar functions (used by scoring expressions)
# ---------------------------------------------------------------------------

_ARITHMETIC: dict[str, Callable[[Any, Any], Any]] = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "/": operator.truediv,
}


class Arithmetic(Expr):
    """``left op right`` with op in ``+ - * /``; NULL propagates."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expr, right: Expr):
        if op not in _ARITHMETIC:
            raise ExpressionError(f"unknown arithmetic operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def _compile(self, resolver: _Resolver) -> RowFn:
        left_fn = self.left._compile(resolver)
        right_fn = self.right._compile(resolver)
        apply = _ARITHMETIC[self.op]
        is_division = self.op == "/"

        def compiled(row: Row) -> Any:
            lhs = left_fn(row)
            if lhs is None:
                return None
            rhs = right_fn(row)
            if rhs is None or (is_division and rhs == 0):
                return None
            return apply(lhs, rhs)

        return compiled

    def children(self) -> Sequence[Expr]:
        return (self.left, self.right)

    def _key(self) -> tuple:
        return (self.op, self.left, self.right)

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


_SCALAR_FUNCTIONS: dict[str, Callable[..., Any]] = {
    "abs": abs,
    "min": min,
    "max": max,
}


class Func(Expr):
    """A scalar function call (``abs``, ``min``, ``max``); NULL propagates."""

    __slots__ = ("name", "args")

    def __init__(self, name: str, *args: Expr):
        lowered = name.lower()
        if lowered not in _SCALAR_FUNCTIONS:
            raise ExpressionError(f"unknown scalar function {name!r}")
        self.name = lowered
        self.args = tuple(args)

    def _compile(self, resolver: _Resolver) -> RowFn:
        fns = [arg._compile(resolver) for arg in self.args]
        apply = _SCALAR_FUNCTIONS[self.name]

        def compiled(row: Row) -> Any:
            values = [fn(row) for fn in fns]
            if any(v is None for v in values):
                return None
            return apply(*values)

        return compiled

    def children(self) -> Sequence[Expr]:
        return self.args

    def _key(self) -> tuple:
        return (self.name, self.args)

    def __repr__(self) -> str:
        return f"{self.name}({', '.join(map(repr, self.args))})"


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------


def col(name: str) -> Attr:
    """Shorthand attribute reference: ``col('movies.year')``."""
    return Attr(name)


def lit(value: Any) -> Literal:
    """Shorthand constant: ``lit(2011)``."""
    return Literal(value)


def eq(attr: str, value: Any) -> Comparison:
    """Shorthand equality condition against a constant."""
    return Comparison("=", Attr(attr), Literal(value))


def cmp(attr: str, op: str, value: Any) -> Comparison:
    """Shorthand comparison of an attribute against a constant."""
    return Comparison(op, Attr(attr), Literal(value))


def map_attributes(expr: Expr, fn: Callable[[str], str]) -> Expr:
    """Rebuild *expr* with every attribute name passed through *fn*.

    Used to qualify bare preference attributes against their declared
    relations so conditions stay unambiguous on join results.
    """
    if isinstance(expr, Attr):
        new_name = fn(expr.name)
        return expr if new_name == expr.name else Attr(new_name)
    if isinstance(expr, Literal):
        return expr
    if isinstance(expr, Comparison):
        return Comparison(
            expr.op, map_attributes(expr.left, fn), map_attributes(expr.right, fn)
        )
    if isinstance(expr, InList):
        return InList(map_attributes(expr.expr, fn), expr.values)
    if isinstance(expr, Between):
        return Between(map_attributes(expr.expr, fn), expr.low, expr.high)
    if isinstance(expr, IsNull):
        return IsNull(map_attributes(expr.expr, fn), expr.negated)
    if isinstance(expr, And):
        return And(*(map_attributes(op, fn) for op in expr.operands))
    if isinstance(expr, Or):
        return Or(*(map_attributes(op, fn) for op in expr.operands))
    if isinstance(expr, Not):
        return Not(map_attributes(expr.operand, fn))
    if isinstance(expr, Arithmetic):
        return Arithmetic(
            expr.op, map_attributes(expr.left, fn), map_attributes(expr.right, fn)
        )
    if isinstance(expr, Func):
        return Func(expr.name, *(map_attributes(arg, fn) for arg in expr.args))
    raise ExpressionError(f"map_attributes: unknown expression node {expr!r}")


def conjuncts(expr: Expr) -> list[Expr]:
    """Split *expr* into its top-level AND-ed conjuncts."""
    if isinstance(expr, And):
        out: list[Expr] = []
        for operand in expr.operands:
            out.extend(conjuncts(operand))
        return out
    return [expr]


def conjoin(parts: Sequence[Expr]) -> Expr:
    """Rebuild a conjunction, collapsing trivial cases."""
    filtered = [p for p in parts if p != TRUE]
    if not filtered:
        return TRUE
    if len(filtered) == 1:
        return filtered[0]
    return And(*filtered)


def is_true(expr: Expr) -> bool:
    return isinstance(expr, Literal) and expr.value is True
