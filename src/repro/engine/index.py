"""Secondary indexes: hash (equality) and ordered (range) access paths.

Heuristic 4 in the paper relies on base relations offering index-based access
for the attributes a prefer operator uses, while join products are never
indexed.  These classes provide exactly that capability to the native
executor and to the prefer-operator routines.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator, Sequence

from ..analysis_static.sanitizer import current_sanitizer
from ..errors import CatalogError
from .table import Row, Table


class Index:
    """Base class: an access path over one or more columns of a table."""

    kind = "abstract"

    def __init__(self, table: Table, attrs: Sequence[str]):
        if not attrs:
            raise CatalogError("an index requires at least one attribute")
        self.table = table
        self.attrs = tuple(attrs)
        self._positions = tuple(table.schema.index_of(a) for a in attrs)
        self._build()

    @property
    def name(self) -> str:
        return f"{self.kind}:{self.table.name}({','.join(self.attrs)})"

    def key_of(self, row: Row) -> Any:
        if len(self._positions) == 1:
            return row[self._positions[0]]
        return tuple(row[i] for i in self._positions)

    def _build(self) -> None:
        raise NotImplementedError

    def lookup(self, key: Any) -> list[Row]:
        raise NotImplementedError

    def add(self, row: Row) -> None:
        """Incrementally index one newly inserted row.

        Single-row inserts maintain indexes through this hook (bulk loads
        rebuild instead); an index that misses rows its table holds silently
        un-answers queries whose plans use index access paths.
        """
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Index({self.name})"


class HashIndex(Index):
    """Equality-only index: a dict from key to matching rows."""

    kind = "hash"

    def _build(self) -> None:
        buckets: dict[Any, list[Row]] = {}
        for row in self.table.rows:
            buckets.setdefault(self.key_of(row), []).append(row)
        self._buckets = buckets

    def lookup(self, key: Any) -> list[Row]:
        return self._buckets.get(key, [])

    def add(self, row: Row) -> None:
        sanitizer = current_sanitizer()
        if sanitizer.enabled:
            sanitizer.index_mutated(self)
        self._buckets.setdefault(self.key_of(row), []).append(row)

    def distinct_keys(self) -> int:
        return len(self._buckets)


class OrderedIndex(Index):
    """Sorted index supporting equality and range scans (B-tree stand-in).

    Keys containing NULL are excluded, mirroring how SQL B-tree indexes are
    never used to satisfy NULL-comparing predicates in our NULL semantics.
    """

    kind = "btree"

    def _build(self) -> None:
        entries = [
            (self.key_of(row), row)
            for row in self.table.rows
            if self._key_is_indexable(self.key_of(row))
        ]
        entries.sort(key=lambda pair: pair[0])
        self._keys = [key for key, _ in entries]
        self._rows = [row for _, row in entries]

    @staticmethod
    def _key_is_indexable(key: Any) -> bool:
        if isinstance(key, tuple):
            return all(part is not None for part in key)
        return key is not None

    def lookup(self, key: Any) -> list[Row]:
        if not self._key_is_indexable(key):
            return []  # NULL keys are not stored (see class docstring)
        lo = bisect.bisect_left(self._keys, key)
        hi = bisect.bisect_right(self._keys, key)
        return self._rows[lo:hi]

    def add(self, row: Row) -> None:
        sanitizer = current_sanitizer()
        if sanitizer.enabled:
            sanitizer.index_mutated(self)
        key = self.key_of(row)
        if not self._key_is_indexable(key):
            return  # NULL keys are not stored (see class docstring)
        pos = bisect.bisect_right(self._keys, key)
        self._keys.insert(pos, key)
        self._rows.insert(pos, row)

    def range(
        self,
        low: Any = None,
        high: Any = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> Iterator[Row]:
        """Rows with ``low (<|<=) key (<|<=) high``; open bounds via ``None``."""
        if low is None:
            lo = 0
        elif low_inclusive:
            lo = bisect.bisect_left(self._keys, low)
        else:
            lo = bisect.bisect_right(self._keys, low)
        if high is None:
            hi = len(self._keys)
        elif high_inclusive:
            hi = bisect.bisect_right(self._keys, high)
        else:
            hi = bisect.bisect_left(self._keys, high)
        return iter(self._rows[lo:hi])

    def distinct_keys(self) -> int:
        count = 0
        previous = object()
        for key in self._keys:
            if key != previous:
                count += 1
                previous = key
        return count


def build_index(table: Table, attrs: Sequence[str] | str, kind: str = "hash") -> Index:
    """Factory: build a ``hash`` or ``btree`` index over *attrs* of *table*."""
    if isinstance(attrs, str):
        attrs = (attrs,)
    if kind == "hash":
        return HashIndex(table, attrs)
    if kind == "btree":
        return OrderedIndex(table, attrs)
    raise CatalogError(f"unknown index kind {kind!r}")
