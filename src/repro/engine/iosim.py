"""Simulated storage costs.

The paper measures cold-cache query times on PostgreSQL and argues (§VI-A)
that the dominant cost driver is disk I/O, which in turn tracks the size of
intermediate relations.  Our engine is in-memory, so alongside wall-clock
time we keep an explicit :class:`CostModel` that counts simulated page reads,
page writes and tuples materialized.  Physical operators report to it; the
benchmark harness prints both wall time and these counters so the paper's
cost shapes can be verified independently of Python interpreter noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Number of tuples assumed to fit in one disk page.  The absolute value is
#: irrelevant for shapes; it only scales the reported page counts.
TUPLES_PER_PAGE = 64


def pages_for(tuples: int, tuples_per_page: int = TUPLES_PER_PAGE) -> int:
    """Number of pages needed to hold *tuples* rows (at least one if any)."""
    if tuples <= 0:
        return 0
    return -(-tuples // tuples_per_page)


@dataclass
class CostModel:
    """Mutable accumulator of simulated storage costs for one query run.

    The accountant doubles as the resilience layer's data-volume choke
    point: when the execution engine attaches a query guard and/or fault
    plan (:mod:`repro.resilience`), every simulated page read visits the
    ``iosim.scan`` fault site and every scanned/materialized tuple is
    charged against the guard's budget.  Both hooks default to ``None`` and
    cost one attribute check on the unguarded path.
    """

    pages_read: int = 0
    pages_written: int = 0
    tuples_scanned: int = 0
    tuples_materialized: int = 0
    index_lookups: int = 0
    operator_calls: dict[str, int] = field(default_factory=dict)
    #: Optional :class:`repro.resilience.QueryGuard` charged per tuple.
    guard: object = field(default=None, repr=False, compare=False)
    #: Optional :class:`repro.resilience.FaultPlan` visited per page read.
    faults: object = field(default=None, repr=False, compare=False)

    def scan(self, tuples: int) -> None:
        """Account for a sequential scan of *tuples* rows."""
        self.tuples_scanned += tuples
        self.pages_read += pages_for(tuples)
        if self.faults is not None:
            self.faults.at("iosim.scan")
        if self.guard is not None:
            self.guard.note_tuples(tuples)

    def index_probe(self, matches: int) -> None:
        """Account for one index lookup returning *matches* rows."""
        self.index_lookups += 1
        # One page for the index descent plus the data pages touched.
        self.pages_read += 1 + pages_for(matches)
        if self.faults is not None:
            self.faults.at("iosim.scan")
        if self.guard is not None:
            self.guard.note_tuples(matches)

    def materialize(self, tuples: int) -> None:
        """Account for writing an intermediate relation of *tuples* rows."""
        self.tuples_materialized += tuples
        self.pages_written += pages_for(tuples)
        if self.guard is not None:
            self.guard.note_tuples(tuples)

    def count_operator(self, name: str) -> None:
        self.operator_calls[name] = self.operator_calls.get(name, 0) + 1

    @property
    def total_io(self) -> int:
        return self.pages_read + self.pages_written

    def merge(self, other: "CostModel") -> None:
        """Fold *other*'s counters into this model (per-query → global)."""
        self.pages_read += other.pages_read
        self.pages_written += other.pages_written
        self.tuples_scanned += other.tuples_scanned
        self.tuples_materialized += other.tuples_materialized
        self.index_lookups += other.index_lookups
        for name, calls in other.operator_calls.items():
            self.operator_calls[name] = self.operator_calls.get(name, 0) + calls

    def reset(self) -> None:
        self.pages_read = 0
        self.pages_written = 0
        self.tuples_scanned = 0
        self.tuples_materialized = 0
        self.index_lookups = 0
        self.operator_calls = {}

    def snapshot(self) -> dict[str, int]:
        """A plain-dict copy of the counters (for reports and assertions)."""
        return {
            "pages_read": self.pages_read,
            "pages_written": self.pages_written,
            "tuples_scanned": self.tuples_scanned,
            "tuples_materialized": self.tuples_materialized,
            "index_lookups": self.index_lookups,
            "total_io": self.total_io,
        }
