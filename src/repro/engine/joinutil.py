"""Join-condition analysis shared by the reference algebra and the executor."""

from __future__ import annotations

from .expressions import Attr, Comparison, Expr, conjoin, conjuncts, is_true
from .schema import TableSchema


def split_equi_condition(
    condition: Expr, left: TableSchema, right: TableSchema
) -> tuple[list[tuple[str, str]], Expr | None]:
    """Split a join condition into hashable equi pairs and a residual.

    Returns ``(pairs, residual)`` where each pair is ``(left_attr,
    right_attr)`` — an ``a = b`` conjunct whose sides resolve unambiguously
    to the two inputs — and *residual* is the conjunction of everything else
    (``None`` when fully consumed).
    """
    equi: list[tuple[str, str]] = []
    residual: list[Expr] = []
    for part in conjuncts(condition):
        if is_true(part):
            continue
        pair = _equi_pair(part, left, right)
        if pair is not None:
            equi.append(pair)
        else:
            residual.append(part)
    if not residual:
        return equi, None
    return equi, conjoin(residual)


def _equi_pair(
    part: Expr, left: TableSchema, right: TableSchema
) -> tuple[str, str] | None:
    if not (
        isinstance(part, Comparison)
        and part.op == "="
        and isinstance(part.left, Attr)
        and isinstance(part.right, Attr)
    ):
        return None
    a, b = part.left.name, part.right.name
    if left.has(a) and right.has(b) and not (left.has(b) or right.has(a)):
        return (a, b)
    if left.has(b) and right.has(a) and not (left.has(a) or right.has(b)):
        return (b, a)
    return None
