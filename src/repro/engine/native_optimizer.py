"""The "native" query optimizer: pushdowns and join ordering.

This plays the role of the conventional DBMS optimizer underneath the
preference layer.  It is deliberately classical: selections are pushed down
as far as their attributes allow, and join regions are re-ordered greedily
into left-deep trees by estimated cardinality.  Both routines are
preference-aware *only* to the extent of being sound: a selection never
crosses a prefer operator unless Property 4.1 allows it, and prefer nodes
travel with the subtree they are attached to during join re-ordering.

The preference optimizer (:mod:`repro.optimizer`) reuses these routines for
its Heuristic 1 (push selections) and for matching the native join order.
"""

from __future__ import annotations

from ..plan.nodes import (
    Difference,
    Intersect,
    Join,
    LeftJoin,
    PlanNode,
    Prefer,
    Project,
    Select,
    TopK,
    Union,
)
from .cardinality import estimate_cardinality
from .catalog import Catalog
from .expressions import TRUE, Expr, conjoin, conjuncts, is_true
from .schema import TableSchema


def optimize_native(plan: PlanNode, catalog: Catalog) -> PlanNode:
    """Push selections down and re-order joins (classical heuristics)."""
    plan = push_selections(plan, catalog)
    plan = order_joins(plan, catalog)
    return plan


# ---------------------------------------------------------------------------
# Selection pushdown
# ---------------------------------------------------------------------------


def push_selections(plan: PlanNode, catalog: Catalog) -> PlanNode:
    """Push every selection conjunct as far down the plan as it can go.

    Conjuncts referencing ``score``/``conf`` never cross a Prefer (they
    depend on its output — Property 4.1's precondition) nor a TopK; ordinary
    conjuncts sink to the lowest subtree whose schema covers their
    attributes.
    """
    return _push(plan, [], catalog)


def _push(plan: PlanNode, pending: list[Expr], catalog: Catalog) -> PlanNode:
    if isinstance(plan, Select):
        return _push(plan.child, pending + conjuncts(plan.condition), catalog)

    if isinstance(plan, Project):
        # Conditions arriving from above only mention projected attributes,
        # which exist below the projection under the same names.
        child = _push(plan.child, pending, catalog)
        return Project(child, plan.attrs)

    if isinstance(plan, Prefer):
        through = [c for c in pending if not c.references_score()]
        blocked = [c for c in pending if c.references_score()]
        child = _push(plan.child, through, catalog)
        return _wrap(Prefer(child, plan.preference, plan.aggregate), blocked)

    if isinstance(plan, TopK):
        # σ(top-k(R)) ≠ top-k(σ(R)): nothing passes a filtering operator.
        child = _push(plan.child, [], catalog)
        return _wrap(TopK(child, plan.k, plan.by), pending)

    if isinstance(plan, Join):
        # Score/conf conjuncts filter the pair a tuple carries *at this
        # height*; folding them into the join condition would turn a pair
        # filter into a join predicate.  They stay above the join.
        blocked = [c for c in pending if c.references_score()]
        passed = [c for c in pending if not c.references_score()]
        all_parts = passed + conjuncts(plan.condition)
        left_schema = plan.left.schema(catalog)
        right_schema = plan.right.schema(catalog)
        left_parts: list[Expr] = []
        right_parts: list[Expr] = []
        join_parts: list[Expr] = []
        for part in all_parts:
            if is_true(part):
                continue
            side = _side_of(part, left_schema, right_schema)
            if side == "left":
                left_parts.append(part)
            elif side == "right":
                right_parts.append(part)
            else:
                join_parts.append(part)
        left = _push(plan.left, left_parts, catalog)
        right = _push(plan.right, right_parts, catalog)
        return _wrap(Join(left, right, conjoin(join_parts)), blocked)

    if isinstance(plan, LeftJoin):
        # Only conditions on the preserved (left) side may sink: filtering
        # the right input or the padded output would change outer-join
        # semantics for non-null-rejecting predicates.
        left_schema = plan.left.schema(catalog)
        left_parts = [
            p
            for p in pending
            if not p.references_score()
            and p.attributes()
            and all(left_schema.has(a) for a in p.attributes())
        ]
        blocked = [p for p in pending if p not in left_parts]
        left = _push(plan.left, left_parts, catalog)
        right = _push(plan.right, [], catalog)
        return _wrap(LeftJoin(left, right, plan.condition), blocked)

    if isinstance(plan, (Union, Intersect, Difference)):
        # Set-operation inputs may differ in attribute names; conditions stay above.
        left = _push(plan.children()[0], [], catalog)
        right = _push(plan.children()[1], [], catalog)
        return _wrap(plan.with_children([left, right]), pending)

    # Leaves (Relation / Materialized).
    return _wrap(plan, pending)


def _side_of(part: Expr, left: TableSchema, right: TableSchema) -> str:
    attrs = part.attributes()
    if not attrs or part.references_score():
        return "join"
    if all(left.has(a) for a in attrs):
        return "left"
    if all(right.has(a) for a in attrs):
        return "right"
    return "join"


def _wrap(plan: PlanNode, parts: list[Expr]) -> PlanNode:
    condition = conjoin(parts)
    if is_true(condition):
        return plan
    return Select(plan, condition)


# ---------------------------------------------------------------------------
# Join ordering
# ---------------------------------------------------------------------------


def order_joins(plan: PlanNode, catalog: Catalog) -> PlanNode:
    """Greedily re-order every maximal region of inner joins, left-deep.

    Each region's units (non-Join subtrees, recursively optimized) are
    combined starting from the smallest estimated input, repeatedly joining
    the connected unit that minimizes the estimated intermediate size; cross
    products are taken only when no connected unit remains.  This mirrors
    what a System-R-style optimizer would pick on our workloads and yields a
    deterministic "native join order" the preference optimizer can match.
    """
    if isinstance(plan, Join):
        units, parts = _collect_region(plan)
        units = [order_joins(unit, catalog) for unit in units]
        return _greedy_order(units, parts, catalog)
    children = plan.children()
    if not children:
        return plan
    return plan.with_children([order_joins(child, catalog) for child in children])


def _collect_region(plan: PlanNode) -> tuple[list[PlanNode], list[Expr]]:
    """Flatten a maximal Join subtree into units and join conjuncts."""
    if isinstance(plan, Join):
        left_units, left_parts = _collect_region(plan.left)
        right_units, right_parts = _collect_region(plan.right)
        own = [p for p in conjuncts(plan.condition) if not is_true(p)]
        return left_units + right_units, left_parts + right_parts + own
    return [plan], []


def _greedy_order(
    units: list[PlanNode], parts: list[Expr], catalog: Catalog
) -> PlanNode:
    remaining_units = list(units)
    remaining_parts = list(parts)
    sizes = {id(u): estimate_cardinality(u, catalog) for u in remaining_units}
    schemas = {id(u): u.schema(catalog) for u in remaining_units}

    current = min(remaining_units, key=lambda u: sizes[id(u)])
    remaining_units.remove(current)
    current_schema = schemas[id(current)]

    while remaining_units:
        best = None
        best_plan = None
        best_size = None
        for unit in remaining_units:
            applicable = [
                p
                for p in remaining_parts
                if _covered(p, current_schema, schemas[id(unit)])
            ]
            if not applicable:
                continue
            candidate = Join(current, unit, conjoin(applicable))
            size = estimate_cardinality(candidate, catalog)
            if best_size is None or size < best_size:
                best, best_plan, best_size = unit, candidate, size
        if best is None:
            # No connected unit: cross product with the smallest one.
            best = min(remaining_units, key=lambda u: sizes[id(u)])
            best_plan = Join(current, best, TRUE)
        assert best_plan is not None
        used = (
            conjuncts(best_plan.condition) if not is_true(best_plan.condition) else []
        )
        remaining_parts = [p for p in remaining_parts if p not in used]
        remaining_units.remove(best)
        current_schema = current_schema.join(schemas[id(best)])
        current = best_plan

    leftover = conjoin(remaining_parts)
    if not is_true(leftover):
        current = Select(current, leftover)
    return current


def _covered(part: Expr, left: TableSchema, right: TableSchema) -> bool:
    """True when *part* references both sides and is fully resolvable."""
    attrs = part.attributes()
    if not attrs:
        return False
    combined = left.join(right)
    if not all(combined.has(a) for a in attrs):
        return False
    touches_left = any(left.has(a) for a in attrs)
    touches_right = any(right.has(a) for a in attrs)
    return touches_left and touches_right
