"""Saving and loading databases, durably.

A database directory contains ``schema.json`` (tables: columns, types,
primary keys, secondary indexes, row counts and content checksums) and one
``<TABLE>.jsonl`` file per table with one JSON-array row per line —
lossless for all supported types including NULL, unlike CSV.

Durability guarantees (see ``docs/RESILIENCE.md``):

* :func:`save_database` is **atomic per file**: every table file and the
  manifest are written to a temp file, fsync'd, then renamed into place, so
  a crash mid-save can never leave a half-written file under the final
  name.  The manifest is written last, so a crash between table writes
  leaves the *previous* manifest describing the previous (complete) files.
* The format-2 manifest records each table's row count and the SHA-256 of
  its data file.  :func:`load_database` verifies both and reports
  truncation or corruption as a typed :exc:`~repro.errors.DataCorruption`
  naming the exact file and line.
* **Salvage mode** (``load_database(..., salvage=True)``) loads what it
  can, skipping unparseable or schema-violating rows, and attaches a
  :class:`RecoveryReport` to the returned database (``db.recovery``).

:func:`load_csv_table` additionally imports plain CSV files into an
existing table, with type coercion driven by the declared schema; the
import is all-or-nothing — a coercion error anywhere in the file leaves
the table (and its indexes) untouched.
"""

from __future__ import annotations

import csv
import hashlib
import itertools
import json
import os
from dataclasses import dataclass, field
from typing import Sequence

from ..errors import CatalogError, DataCorruption, DurabilityError, ReproError
from ..resilience.vfs import current_vfs
from .database import Database
from .types import DataType

SCHEMA_FILE = "schema.json"

#: Manifest formats this module can read.  Format 1 predates checksums and
#: row counts; format 2 adds both and is what :func:`save_database` writes.
SUPPORTED_FORMATS = (1, 2)
CURRENT_FORMAT = 2

#: Process-wide temp-name disambiguator: together with the pid it makes
#: concurrent :func:`_atomic_write` calls (threads, sibling processes
#: saving into the same directory) collision-safe.
_TMP_COUNTER = itertools.count()


def _atomic_write(path: str, data: str) -> None:
    """Write *data* to *path* via temp file + fsync + rename, through the VFS.

    After the rename the new content is durably on disk under its final
    name; readers never observe a partially written file.  The temp name
    carries a pid + counter suffix so concurrent writers never collide,
    and a failed write or fsync removes the temp file before the typed
    :exc:`~repro.errors.DurabilityError` propagates — no stale ``.tmp``
    litter for a later save to trip over.
    """
    vfs = current_vfs()
    tmp_path = f"{path}.{os.getpid()}.{next(_TMP_COUNTER)}.tmp"
    try:
        with vfs.open(tmp_path, "w", encoding="utf-8") as handle:
            handle.write(data)
            handle.flush()
            vfs.fsync(handle)
        vfs.replace(tmp_path, path)
    except OSError as err:
        try:
            vfs.remove(tmp_path)
        except OSError:
            pass
        raise DurabilityError("write", path, str(err)) from err
    # Persist the rename itself.  A real I/O failure here means the file
    # may still be durable under its *old* name only, so it must surface
    # (platform limitations are swallowed inside fsync_dir).
    try:
        vfs.fsync_dir(os.path.dirname(path) or ".")
    except OSError as err:
        raise DurabilityError("fsync-dir", path, str(err)) from err


def _checksum(data: str) -> str:
    return "sha256:" + hashlib.sha256(data.encode("utf-8")).hexdigest()


def save_database(db: Database, directory: str) -> None:
    """Write *db* (schemas, data, index definitions) under *directory*.

    Atomic per file: table files land before the manifest that describes
    them, and every file is temp-written, fsync'd and renamed into place.
    """
    current_vfs().makedirs(directory)
    manifest: dict = {"format": CURRENT_FORMAT, "tables": []}
    for table in sorted(db.catalog.tables(), key=lambda t: t.name):
        schema = table.schema
        payload = "".join(json.dumps(list(row)) + "\n" for row in table.rows)
        manifest["tables"].append(
            {
                "name": table.name,
                "columns": [
                    {"name": c.name, "type": c.dtype.value} for c in schema.columns
                ],
                "primary_key": list(schema.primary_key),
                "indexes": [
                    {"attrs": list(index.attrs), "kind": index.kind}
                    for index in db.catalog.indexes_on(table.name)
                ],
                "rows": len(table.rows),
                "checksum": _checksum(payload),
            }
        )
        _atomic_write(os.path.join(directory, f"{table.name}.jsonl"), payload)
    _atomic_write(
        os.path.join(directory, SCHEMA_FILE), json.dumps(manifest, indent=2)
    )


@dataclass
class TableRecovery:
    """Salvage outcome for one table."""

    table: str
    path: str
    rows_loaded: int = 0
    rows_skipped: int = 0
    problems: list[str] = field(default_factory=list)


@dataclass
class RecoveryReport:
    """What salvage-mode loading managed to rescue, table by table."""

    tables: list[TableRecovery] = field(default_factory=list)

    @property
    def rows_loaded(self) -> int:
        return sum(t.rows_loaded for t in self.tables)

    @property
    def rows_skipped(self) -> int:
        return sum(t.rows_skipped for t in self.tables)

    @property
    def clean(self) -> bool:
        """True when nothing had to be skipped or repaired."""
        return all(not t.rows_skipped and not t.problems for t in self.tables)

    def describe(self) -> str:
        lines = []
        for entry in self.tables:
            status = "ok" if not entry.rows_skipped and not entry.problems else "salvaged"
            lines.append(
                f"{entry.table:<16} {entry.rows_loaded:>8} loaded "
                f"{entry.rows_skipped:>6} skipped  [{status}]"
            )
            for problem in entry.problems:
                lines.append(f"    - {problem}")
        lines.append(
            f"total: {self.rows_loaded} rows loaded, {self.rows_skipped} skipped"
        )
        return "\n".join(lines)


def load_database(directory: str, analyze: bool = True, *, salvage: bool = False) -> Database:
    """Rebuild a database saved with :func:`save_database`.

    Data files are verified against the manifest's checksums and row counts
    (format 2); truncated or corrupt content raises
    :exc:`~repro.errors.DataCorruption` naming the exact file and line.
    With ``salvage=True``, bad rows are skipped instead and the returned
    database carries a :class:`RecoveryReport` as ``db.recovery``
    (``db.recovery`` is ``None`` on non-salvage loads).
    """
    vfs = current_vfs()
    manifest_path = os.path.join(directory, SCHEMA_FILE)
    if not vfs.exists(manifest_path):
        raise ReproError(f"no {SCHEMA_FILE} found in {directory!r}")
    with vfs.open(manifest_path, encoding="utf-8") as handle:
        try:
            manifest = json.load(handle)
        except ValueError as err:
            raise DataCorruption(
                f"manifest is not valid JSON: {err}", path=manifest_path
            ) from err
    if manifest.get("format") not in SUPPORTED_FORMATS:
        raise ReproError(f"unsupported database format {manifest.get('format')!r}")

    report = RecoveryReport()
    db = Database()
    db.recovery = report if salvage else None
    for entry in manifest["tables"]:
        columns = [(c["name"], DataType(c["type"])) for c in entry["columns"]]
        table = db.create_table(entry["name"], columns, primary_key=entry["primary_key"])
        path = os.path.join(directory, f"{entry['name']}.jsonl")
        recovery = TableRecovery(table=table.name, path=path)
        report.tables.append(recovery)
        if vfs.exists(path):
            _load_table_file(db, entry, path, salvage, recovery)
        elif entry.get("rows"):
            problem = f"data file missing ({entry['rows']} rows lost)"
            if not salvage:
                raise DataCorruption(problem, path=path)
            recovery.rows_skipped += entry["rows"]
            recovery.problems.append(problem)
        for index in entry.get("indexes", ()):
            db.create_index(entry["name"], index["attrs"], index["kind"])
    if analyze:
        db.analyze()
    return db


def _load_table_file(
    db: Database, entry: dict, path: str, salvage: bool, recovery: TableRecovery
) -> None:
    """Verify and load one table's jsonl file (or salvage what parses)."""
    with current_vfs().open(path, encoding="utf-8") as handle:
        payload = handle.read()

    width = len(entry["columns"])
    rows: list[tuple] = []
    for line_number, line in enumerate(payload.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            values = json.loads(line)
        except ValueError as err:
            problem = f"unparseable row ({err})"
            if not salvage:
                raise DataCorruption(problem, path=path, line=line_number) from err
            recovery.rows_skipped += 1
            recovery.problems.append(f"line {line_number}: {problem}")
            continue
        if not isinstance(values, list) or len(values) != width:
            problem = f"row has {_arity(values)} values, schema expects {width}"
            if not salvage:
                raise DataCorruption(problem, path=path, line=line_number)
            recovery.rows_skipped += 1
            recovery.problems.append(f"line {line_number}: {problem}")
            continue
        rows.append(tuple(values))

    expected_rows = entry.get("rows")
    if (
        expected_rows is not None
        and recovery.rows_skipped == 0
        and len(rows) != expected_rows
    ):
        problem = (
            f"row count mismatch: file has {len(rows)} rows, "
            f"manifest recorded {expected_rows} (truncated file?)"
        )
        if not salvage:
            raise DataCorruption(problem, path=path, line=len(rows) + 1)
        recovery.problems.append(problem)

    # Checksum last: line-level checks above give more precise locations,
    # so the checksum only catches tampering that still parses cleanly.
    expected_checksum = entry.get("checksum")
    if expected_checksum is not None and _checksum(payload) != expected_checksum:
        problem = (
            f"checksum mismatch: file does not match the manifest "
            f"(expected {expected_checksum})"
        )
        if not salvage:
            raise DataCorruption(problem, path=path)
        recovery.problems.append(problem)

    if not salvage:
        db.insert_many(entry["name"], rows)
        recovery.rows_loaded = len(rows)
        return
    # Salvage inserts row by row: a row the schema rejects (type mismatch,
    # NULL/duplicate primary key) is skipped and reported, not fatal.
    table = db.table(entry["name"])
    for values in rows:
        try:
            table.insert(values)
            recovery.rows_loaded += 1
        except ReproError as err:
            recovery.rows_skipped += 1
            recovery.problems.append(f"row {values!r} rejected: {err}")


def _arity(values) -> str:
    return str(len(values)) if isinstance(values, list) else f"non-array {type(values).__name__}"


def load_csv_table(
    db: Database,
    table_name: str,
    path: str,
    has_header: bool = True,
    null_token: str = "",
    delimiter: str = ",",
) -> int:
    """Bulk-load a CSV file into an existing table; returns rows inserted.

    Values are coerced by the table schema: INT/FLOAT parsed, BOOL accepts
    true/false/1/0 (case-insensitive), *null_token* becomes NULL.  A header
    row, when present, must list the table's columns (any order).

    The load is **all-or-nothing**: every row is parsed and coerced before
    any is inserted, and an insertion failure (e.g. a duplicate primary
    key) rolls the table back, so an error can never leave the table
    half-loaded with stale indexes.
    """
    table = db.table(table_name)
    schema = table.schema
    staged: list[list] = []
    with current_vfs().open(path, newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        order: Sequence[int] | None = None
        for line_number, record in enumerate(reader, start=1):
            if not record:
                continue
            if has_header and line_number == 1:
                order = [schema.index_of(name.strip()) for name in record]
                continue
            if order is not None:
                if len(record) != len(order):
                    raise CatalogError(
                        f"{path}:{line_number}: expected {len(order)} fields"
                    )
                values: list = [None] * len(schema.columns)
                for position, text in zip(order, record):
                    values[position] = _coerce(text, schema.columns[position].dtype, null_token)
            else:
                values = [
                    _coerce(text, column.dtype, null_token)
                    for text, column in zip(record, schema.columns)
                ]
            staged.append(values)
    # The whole file parsed: insert, rolling back on any validation error so
    # rows and primary-key map stay exactly as before the call.
    rows_before = list(table.rows)
    pk_map_before = dict(table._pk_map)
    try:
        for values in staged:
            table.insert(values)
    except ReproError:
        table.rows = rows_before
        table._pk_map = pk_map_before
        raise
    db.catalog.rebuild_indexes(table_name)
    return len(staged)


def _coerce(text: str, dtype: DataType, null_token: str):
    if text == null_token:
        return None
    if dtype is DataType.INT:
        return int(text)
    if dtype is DataType.FLOAT:
        return float(text)
    if dtype is DataType.BOOL:
        lowered = text.strip().lower()
        if lowered in ("true", "1", "t", "yes"):
            return True
        if lowered in ("false", "0", "f", "no"):
            return False
        raise CatalogError(f"cannot parse boolean {text!r}")
    return text
