"""Saving and loading databases.

A database directory contains ``schema.json`` (tables: columns, types,
primary keys, secondary indexes) and one ``<TABLE>.jsonl`` file per table
with one JSON-array row per line — lossless for all supported types
including NULL, unlike CSV.  :func:`load_csv_table` additionally imports
plain CSV files into an existing table, with type coercion driven by the
declared schema.
"""

from __future__ import annotations

import csv
import json
import os
from typing import Sequence

from ..errors import CatalogError, ReproError
from .database import Database
from .types import DataType

SCHEMA_FILE = "schema.json"


def save_database(db: Database, directory: str) -> None:
    """Write *db* (schemas, data, index definitions) under *directory*."""
    os.makedirs(directory, exist_ok=True)
    manifest: dict = {"format": 1, "tables": []}
    for table in sorted(db.catalog.tables(), key=lambda t: t.name):
        schema = table.schema
        manifest["tables"].append(
            {
                "name": table.name,
                "columns": [
                    {"name": c.name, "type": c.dtype.value} for c in schema.columns
                ],
                "primary_key": list(schema.primary_key),
                "indexes": [
                    {"attrs": list(index.attrs), "kind": index.kind}
                    for index in db.catalog.indexes_on(table.name)
                ],
            }
        )
        path = os.path.join(directory, f"{table.name}.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            for row in table.rows:
                handle.write(json.dumps(list(row)) + "\n")
    with open(os.path.join(directory, SCHEMA_FILE), "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2)


def load_database(directory: str, analyze: bool = True) -> Database:
    """Rebuild a database saved with :func:`save_database`."""
    manifest_path = os.path.join(directory, SCHEMA_FILE)
    if not os.path.exists(manifest_path):
        raise ReproError(f"no {SCHEMA_FILE} found in {directory!r}")
    with open(manifest_path, encoding="utf-8") as handle:
        manifest = json.load(handle)
    if manifest.get("format") != 1:
        raise ReproError(f"unsupported database format {manifest.get('format')!r}")

    db = Database()
    for entry in manifest["tables"]:
        columns = [(c["name"], DataType(c["type"])) for c in entry["columns"]]
        db.create_table(entry["name"], columns, primary_key=entry["primary_key"])
        path = os.path.join(directory, f"{entry['name']}.jsonl")
        if os.path.exists(path):
            with open(path, encoding="utf-8") as handle:
                rows = [tuple(json.loads(line)) for line in handle if line.strip()]
            db.insert_many(entry["name"], rows)
        for index in entry.get("indexes", ()):
            db.create_index(entry["name"], index["attrs"], index["kind"])
    if analyze:
        db.analyze()
    return db


def load_csv_table(
    db: Database,
    table_name: str,
    path: str,
    has_header: bool = True,
    null_token: str = "",
    delimiter: str = ",",
) -> int:
    """Bulk-load a CSV file into an existing table; returns rows inserted.

    Values are coerced by the table schema: INT/FLOAT parsed, BOOL accepts
    true/false/1/0 (case-insensitive), *null_token* becomes NULL.  A header
    row, when present, must list the table's columns (any order).
    """
    table = db.table(table_name)
    schema = table.schema
    inserted = 0
    with open(path, newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        order: Sequence[int] | None = None
        for line_number, record in enumerate(reader, start=1):
            if not record:
                continue
            if has_header and line_number == 1:
                order = [schema.index_of(name.strip()) for name in record]
                continue
            if order is not None:
                if len(record) != len(order):
                    raise CatalogError(
                        f"{path}:{line_number}: expected {len(order)} fields"
                    )
                values: list = [None] * len(schema.columns)
                for position, text in zip(order, record):
                    values[position] = _coerce(text, schema.columns[position].dtype, null_token)
            else:
                values = [
                    _coerce(text, column.dtype, null_token)
                    for text, column in zip(record, schema.columns)
                ]
            table.insert(values)
            inserted += 1
    db.catalog.rebuild_indexes(table_name)
    return inserted


def _coerce(text: str, dtype: DataType, null_token: str):
    if text == null_token:
        return None
    if dtype is DataType.INT:
        return int(text)
    if dtype is DataType.FLOAT:
        return float(text)
    if dtype is DataType.BOOL:
        lowered = text.strip().lower()
        if lowered in ("true", "1", "t", "yes"):
            return True
        if lowered in ("false", "0", "f", "no"):
            return False
        raise CatalogError(f"cannot parse boolean {text!r}")
    return text
