"""The native execution engine: preference-free plans over the catalog.

This is the stand-in for the conventional DBMS underneath the paper's
prototype.  It executes plans containing only standard operators —
Relation / Materialized leaves, Select, Project, Join and the set
operations — using an iterator (pipelined) model with hash joins, index
access paths and simulated I/O accounting.

Preference operators are rejected: they belong to the layer above
(:mod:`repro.pexec`), exactly like the paper's prefer routines live outside
the PostgreSQL executor.
"""

from __future__ import annotations

from typing import Any, Iterator

from ..errors import ExecutionError
from ..obs import current_tracer, traced_rows
from ..resilience import current_faults, current_guard
from ..plan.nodes import (
    Difference,
    Intersect,
    Join,
    LeftJoin,
    Materialized,
    PlanNode,
    Prefer,
    Project,
    Relation,
    Select,
    TopK,
    Union,
)
from .catalog import Catalog
from .expressions import Attr, Comparison, Expr, Literal, conjoin, conjuncts
from .index import OrderedIndex
from .iosim import CostModel
from .joinutil import split_equi_condition
from .schema import TableSchema
from .table import Row


def execute_native(
    plan: PlanNode, catalog: Catalog, cost: CostModel | None = None, tracer=None
) -> tuple[TableSchema, list[Row]]:
    """Run a preference-free *plan*; returns its schema and materialized rows."""
    cost = cost if cost is not None else CostModel()
    schema, rows = _Executor(catalog, cost, tracer).run(plan)
    return schema, list(rows)


class _Executor:
    def __init__(self, catalog: Catalog, cost: CostModel, tracer=None):
        self.catalog = catalog
        self.cost = cost
        self.tracer = tracer if tracer is not None else current_tracer()
        self.guard = current_guard()
        self.faults = current_faults()

    def run(self, plan: PlanNode) -> tuple[TableSchema, Iterator[Row]]:
        # Operator-boundary resilience checkpoint: honor deadlines and
        # cancellation, and visit the ``native.dispatch`` fault site.
        if self.guard.enabled:
            self.guard.check()
        if self.faults.enabled:
            self.faults.at("native.dispatch")
        self.cost.count_operator(plan.kind)
        tracer = self.tracer
        if not tracer.enabled:
            return self._dispatch(plan)
        # One span per operator; its wall time is inclusive — open through
        # last output row — because the iterator model interleaves parents
        # and children (the EXPLAIN ANALYZE convention).
        span = tracer.span(f"native.{plan.kind}", label=plan.label())
        tracer.push(span)
        try:
            schema, rows = self._dispatch(plan)
        finally:
            tracer.pop(span)
        return schema, traced_rows(rows, span)

    def _dispatch(self, plan: PlanNode) -> tuple[TableSchema, Iterator[Row]]:
        if isinstance(plan, Relation):
            return self._relation(plan)
        if isinstance(plan, Materialized):
            self.cost.scan(len(plan.rows))
            return plan.schema(self.catalog), iter(plan.rows)
        if isinstance(plan, Select):
            return self._select(plan)
        if isinstance(plan, Project):
            return self._project(plan)
        if isinstance(plan, Join):
            return self._join(plan)
        if isinstance(plan, LeftJoin):
            return self._left_join(plan)
        if isinstance(plan, Union):
            return self._union(plan)
        if isinstance(plan, Intersect):
            return self._intersect(plan)
        if isinstance(plan, Difference):
            return self._difference(plan)
        if isinstance(plan, (Prefer, TopK)):
            raise ExecutionError(
                f"the native engine cannot execute {plan.kind!r}; "
                "preference operators are evaluated by repro.pexec"
            )
        raise ExecutionError(f"unknown plan node {plan!r}")

    # -- leaves ------------------------------------------------------------------

    def _relation(self, plan: Relation) -> tuple[TableSchema, Iterator[Row]]:
        table = self.catalog.table(plan.name)
        self.cost.scan(len(table))
        return plan.schema(self.catalog), iter(table.rows)

    # -- unary -------------------------------------------------------------------

    def _select(self, plan: Select) -> tuple[TableSchema, Iterator[Row]]:
        if plan.condition.references_score():
            raise ExecutionError(
                "the native engine has no score/conf attributes; "
                "score filters are evaluated by the preference layer"
            )
        if isinstance(plan.child, Relation):
            result = self._try_index_access(plan.child, plan.condition)
            if result is not None:
                return result
        schema, rows = self.run(plan.child)
        predicate = plan.condition.compile(schema)
        return schema, (row for row in rows if predicate(row))

    def _try_index_access(
        self, relation: Relation, condition: Expr
    ) -> tuple[TableSchema, Iterator[Row]] | None:
        """Use a secondary index when a conjunct allows it (σ over base table)."""
        schema = relation.schema(self.catalog)
        parts = conjuncts(condition)
        for position, part in enumerate(parts):
            access = self._index_candidates(relation, schema, part)
            if access is None:
                continue
            matched = access
            residual = conjoin([p for i, p in enumerate(parts) if i != position])
            self.cost.index_probe(len(matched))
            rows: Iterator[Row] = iter(matched)
            from .expressions import is_true

            if not is_true(residual):
                predicate = residual.compile(schema)
                rows = (row for row in matched if predicate(row))
            return schema, rows
        return None

    def _index_candidates(
        self, relation: Relation, schema: TableSchema, part: Expr
    ) -> list[Row] | None:
        if not isinstance(part, Comparison):
            return None
        attr, value = _attr_const(part, schema)
        if attr is None:
            return None
        bare = attr.rsplit(".", 1)[-1]
        if part.op == "=":
            index = self.catalog.find_index(relation.name, bare)
            if index is not None:
                return index.lookup(value)
            return None
        index = self.catalog.find_index(relation.name, bare, kind="btree")
        if not isinstance(index, OrderedIndex):
            return None
        op = part.op if isinstance(part.left, Attr) else _mirror(part.op)
        if op == "<":
            return list(index.range(high=value, high_inclusive=False))
        if op == "<=":
            return list(index.range(high=value))
        if op == ">":
            return list(index.range(low=value, low_inclusive=False))
        if op == ">=":
            return list(index.range(low=value))
        return None

    def _project(self, plan: Project) -> tuple[TableSchema, Iterator[Row]]:
        schema, rows = self.run(plan.child)
        positions = [schema.index_of(a) for a in plan.attrs]
        out_schema = schema.project(plan.attrs)
        return out_schema, (tuple(row[i] for i in positions) for row in rows)

    # -- joins --------------------------------------------------------------------

    def _join(self, plan: Join) -> tuple[TableSchema, Iterator[Row]]:
        left_schema, left_rows = self.run(plan.left)
        right_schema = plan.right.schema(self.catalog)
        out_schema = left_schema.join(right_schema)
        equi, residual = split_equi_condition(plan.condition, left_schema, right_schema)

        if equi:
            index_plan = self._try_index_nested_loop(
                plan, left_schema, left_rows, right_schema, out_schema, equi, residual
            )
            if index_plan is not None:
                return out_schema, index_plan
            _, right_rows = self.run(plan.right)
            return out_schema, self._hash_join(
                left_schema, left_rows, right_schema, right_rows, out_schema, equi, residual
            )
        _, right_rows = self.run(plan.right)
        return out_schema, self._nested_loop(
            left_rows, right_rows, out_schema, plan.condition
        )

    def _try_index_nested_loop(
        self,
        plan: Join,
        left_schema: TableSchema,
        left_rows: Iterator[Row],
        right_schema: TableSchema,
        out_schema: TableSchema,
        equi: list[tuple[str, str]],
        residual: Expr | None,
    ) -> Iterator[Row] | None:
        """Probe a base-table index per outer row instead of scanning it.

        Chosen when the inner side is a base relation (possibly under a
        pushed-down projection) with an index on the (single) join attribute
        and the outer side is estimated to be much smaller — the classic
        index-nested-loop win after a selective filter.
        """
        if len(equi) != 1:
            return None
        inner = plan.right
        project_positions: list[int] | None = None
        if isinstance(inner, Project) and isinstance(inner.child, Relation):
            base_schema = inner.child.schema(self.catalog)
            project_positions = [base_schema.index_of(a) for a in inner.attrs]
            inner = inner.child
        if not isinstance(inner, Relation):
            return None
        left_attr, right_attr = equi[0]
        bare = right_attr.rsplit(".", 1)[-1]
        index = self.catalog.find_index(inner.name, bare)
        if index is None:
            return None
        right_size = len(self.catalog.table(inner.name))
        from .cardinality import estimate_cardinality

        outer_estimate = estimate_cardinality(plan.left, self.catalog)
        if outer_estimate * 4 >= right_size:
            return None
        probe_position = left_schema.index_of(left_attr)
        predicate = residual.compile(out_schema) if residual is not None else None
        cost = self.cost
        self.cost.count_operator("index-nested-loop")

        def generate() -> Iterator[Row]:
            for row in left_rows:
                key = row[probe_position]
                if key is None:
                    continue
                matches = index.lookup(key)
                cost.index_probe(len(matches))
                for other in matches:
                    if project_positions is not None:
                        other = tuple(other[i] for i in project_positions)
                    combined = row + other
                    if predicate is None or predicate(combined):
                        yield combined

        return generate()

    def _hash_join(
        self,
        left_schema: TableSchema,
        left_rows: Iterator[Row],
        right_schema: TableSchema,
        right_rows: Iterator[Row],
        out_schema: TableSchema,
        equi: list[tuple[str, str]],
        residual: Expr | None,
    ) -> Iterator[Row]:
        build_positions = [right_schema.index_of(b) for _, b in equi]
        probe_positions = [left_schema.index_of(a) for a, _ in equi]
        buckets: dict[tuple, list[Row]] = {}
        build_count = 0
        for row in right_rows:
            key = tuple(row[i] for i in build_positions)
            buckets.setdefault(key, []).append(row)
            build_count += 1
        self.cost.materialize(build_count)
        predicate = residual.compile(out_schema) if residual is not None else None

        def generate() -> Iterator[Row]:
            for row in left_rows:
                key = tuple(row[i] for i in probe_positions)
                if any(part is None for part in key):
                    continue
                for other in buckets.get(key, ()):
                    combined = row + other
                    if predicate is None or predicate(combined):
                        yield combined

        return generate()

    def _left_join(self, plan: LeftJoin) -> tuple[TableSchema, Iterator[Row]]:
        left_schema, left_rows = self.run(plan.left)
        right_schema, right_rows = self.run(plan.right)
        out_schema = left_schema.join(right_schema)
        equi, residual = split_equi_condition(plan.condition, left_schema, right_schema)
        padding = (None,) * len(right_schema.columns)

        if equi:
            build_positions = [right_schema.index_of(b) for _, b in equi]
            probe_positions = [left_schema.index_of(a) for a, _ in equi]
            buckets: dict[tuple, list[Row]] = {}
            build_count = 0
            for row in right_rows:
                buckets.setdefault(tuple(row[i] for i in build_positions), []).append(row)
                build_count += 1
            self.cost.materialize(build_count)
            predicate = residual.compile(out_schema) if residual is not None else None

            def generate() -> Iterator[Row]:
                for row in left_rows:
                    key = tuple(row[i] for i in probe_positions)
                    matched = False
                    if not any(part is None for part in key):
                        for other in buckets.get(key, ()):
                            combined = row + other
                            if predicate is None or predicate(combined):
                                matched = True
                                yield combined
                    if not matched:
                        yield row + padding

            return out_schema, generate()

        from .expressions import is_true

        inner = list(right_rows)
        self.cost.materialize(len(inner))
        predicate = None if is_true(plan.condition) else plan.condition.compile(out_schema)

        def generate_nested() -> Iterator[Row]:
            for row in left_rows:
                matched = False
                for other in inner:
                    combined = row + other
                    if predicate is None or predicate(combined):
                        matched = True
                        yield combined
                if not matched:
                    yield row + padding

        return out_schema, generate_nested()

    def _nested_loop(
        self,
        left_rows: Iterator[Row],
        right_rows: Iterator[Row],
        out_schema: TableSchema,
        condition: Expr,
    ) -> Iterator[Row]:
        from .expressions import is_true

        inner = list(right_rows)
        self.cost.materialize(len(inner))
        predicate = None if is_true(condition) else condition.compile(out_schema)

        def generate() -> Iterator[Row]:
            for row in left_rows:
                for other in inner:
                    combined = row + other
                    if predicate is None or predicate(combined):
                        yield combined

        return generate()

    # -- set operations --------------------------------------------------------------

    def _union(self, plan: Union) -> tuple[TableSchema, Iterator[Row]]:
        schema, left_rows, right_rows = self._set_inputs(plan)
        seen: dict[Row, None] = {}
        for row in left_rows:
            seen.setdefault(row)
        for row in right_rows:
            seen.setdefault(row)
        self.cost.materialize(len(seen))
        return schema, iter(seen.keys())

    def _intersect(self, plan: Intersect) -> tuple[TableSchema, Iterator[Row]]:
        schema, left_rows, right_rows = self._set_inputs(plan)
        right_set = set(right_rows)
        self.cost.materialize(len(right_set))
        seen: dict[Row, None] = {}
        for row in left_rows:
            if row in right_set:
                seen.setdefault(row)
        return schema, iter(seen.keys())

    def _difference(self, plan: Difference) -> tuple[TableSchema, Iterator[Row]]:
        schema, left_rows, right_rows = self._set_inputs(plan)
        right_set = set(right_rows)
        self.cost.materialize(len(right_set))
        seen: dict[Row, None] = {}
        for row in left_rows:
            if row not in right_set:
                seen.setdefault(row)
        return schema, iter(seen.keys())

    def _set_inputs(self, plan) -> tuple[TableSchema, Iterator[Row], Iterator[Row]]:
        left_schema, left_rows = self.run(plan.left)
        right_schema, right_rows = self.run(plan.right)
        if not left_schema.union_compatible(right_schema):
            raise ExecutionError(f"{plan.kind}: inputs are not union-compatible")
        return left_schema, left_rows, right_rows


def _attr_const(part: Comparison, schema: TableSchema) -> tuple[str | None, Any]:
    """Decompose ``attr op const`` (either orientation) against *schema*."""
    if isinstance(part.left, Attr) and isinstance(part.right, Literal):
        if schema.has(part.left.name):
            return part.left.name, part.right.value
    if isinstance(part.right, Attr) and isinstance(part.left, Literal):
        if schema.has(part.right.name):
            return part.right.name, part.left.value
    return None, None


_MIRROR = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "!=": "!="}


def _mirror(op: str) -> str:
    return _MIRROR[op]
