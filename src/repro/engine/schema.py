"""Schemas: named, typed, ordered attribute lists with name resolution.

A :class:`TableSchema` is the engine's unit of structure: it maps attribute
names (optionally qualified, ``movies.year``) to positions in row tuples.
Schemas are immutable; joins, projections and renames produce new schemas.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..errors import SchemaError
from .types import DataType

#: Reserved attribute names used by p-relations.  They never appear inside a
#: base :class:`TableSchema`; the preference layer resolves them specially.
SCORE_ATTR = "score"
CONF_ATTR = "conf"
RESERVED_ATTRS = frozenset({SCORE_ATTR, CONF_ATTR})


@dataclass(frozen=True)
class Column:
    """A single attribute: a name, a type and an optional table qualifier."""

    name: str
    dtype: DataType
    table: str | None = None

    @property
    def qualified_name(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name

    def with_table(self, table: str | None) -> "Column":
        return Column(self.name, self.dtype, table)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Column({self.qualified_name}:{self.dtype.value})"


class TableSchema:
    """An ordered collection of :class:`Column` with name resolution.

    Resolution accepts either a bare name (``year``) or a qualified name
    (``movies.year``).  A bare name that matches several columns raises
    :class:`SchemaError` (ambiguity), mirroring SQL semantics.
    """

    __slots__ = ("name", "columns", "primary_key", "_by_qualified", "_by_bare")

    def __init__(
        self,
        name: str | None,
        columns: Sequence[Column],
        primary_key: Sequence[str] = (),
    ):
        if not columns:
            raise SchemaError("a schema requires at least one column")
        self.name = name
        self.columns: tuple[Column, ...] = tuple(columns)
        self._by_qualified: dict[str, int] = {}
        self._by_bare: dict[str, list[int]] = {}
        for i, col in enumerate(self.columns):
            if col.name.lower() in RESERVED_ATTRS:
                raise SchemaError(f"{col.name!r} is reserved for p-relations")
            qualified = col.qualified_name.lower()
            if qualified in self._by_qualified:
                raise SchemaError(f"duplicate column {col.qualified_name!r}")
            self._by_qualified[qualified] = i
            self._by_bare.setdefault(col.name.lower(), []).append(i)
        self.primary_key: tuple[str, ...] = tuple(primary_key)
        for key_attr in self.primary_key:
            self.index_of(key_attr)  # validate eagerly

    # -- resolution ---------------------------------------------------------

    def index_of(self, attr: str) -> int:
        """Return the tuple position of *attr*, bare or qualified."""
        lowered = attr.lower()
        if "." in lowered:
            index = self._by_qualified.get(lowered)
            if index is None:
                raise SchemaError(f"unknown attribute {attr!r} in {self._describe()}")
            return index
        candidates = self._by_bare.get(lowered, [])
        if not candidates:
            raise SchemaError(f"unknown attribute {attr!r} in {self._describe()}")
        if len(candidates) > 1:
            names = ", ".join(self.columns[i].qualified_name for i in candidates)
            raise SchemaError(f"ambiguous attribute {attr!r}: matches {names}")
        return candidates[0]

    def has(self, attr: str) -> bool:
        try:
            self.index_of(attr)
        except SchemaError:
            return False
        return True

    def column(self, attr: str) -> Column:
        return self.columns[self.index_of(attr)]

    def primary_key_indexes(self) -> tuple[int, ...]:
        return tuple(self.index_of(a) for a in self.primary_key)

    @property
    def attribute_names(self) -> tuple[str, ...]:
        return tuple(col.qualified_name for col in self.columns)

    # -- derivation ---------------------------------------------------------

    def project(self, attrs: Sequence[str], name: str | None = None) -> "TableSchema":
        """Schema of ``π_attrs(self)``; the primary key survives only if fully kept."""
        columns = [self.columns[self.index_of(a)] for a in attrs]
        keep_key = self.primary_key and all(
            any(self.index_of(k) == self.index_of(a) for a in attrs) for k in self.primary_key
        )
        return TableSchema(name or self.name, columns, self.primary_key if keep_key else ())

    def rename(self, new_name: str) -> "TableSchema":
        """Re-qualify every column with *new_name* (table alias)."""
        columns = [col.with_table(new_name) for col in self.columns]
        return TableSchema(new_name, columns, self.primary_key)

    def join(self, other: "TableSchema", name: str | None = None) -> "TableSchema":
        """Schema of the concatenation ``self × other``.

        The combined primary key is the concatenation of both keys (qualified
        to stay unambiguous), matching the paper's composite score-relation
        keys for join results.
        """
        columns = list(self.columns) + list(other.columns)
        key: list[str] = []
        for schema in (self, other):
            for attr in schema.primary_key:
                key.append(schema.column(attr).qualified_name)
        return TableSchema(name, columns, tuple(key))

    def union_compatible(self, other: "TableSchema") -> bool:
        if len(self.columns) != len(other.columns):
            return False
        return all(
            a.dtype == b.dtype for a, b in zip(self.columns, other.columns)
        )

    # -- misc ---------------------------------------------------------------

    def _describe(self) -> str:
        label = self.name or "<anonymous>"
        return f"schema {label}({', '.join(self.attribute_names)})"

    def __len__(self) -> int:
        return len(self.columns)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TableSchema):
            return NotImplemented
        return self.columns == other.columns and self.name == other.name

    def __hash__(self) -> int:
        return hash((self.name, self.columns))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TableSchema({self._describe()})"


def make_schema(
    name: str,
    specs: Iterable[tuple[str, DataType]],
    primary_key: Sequence[str] = (),
) -> TableSchema:
    """Convenience constructor: ``make_schema('R', [('a', INT)], ['a'])``."""
    columns = [Column(attr, dtype, table=name) for attr, dtype in specs]
    return TableSchema(name, columns, primary_key)
