"""Table and column statistics plus selectivity estimation.

Both the native optimizer (join ordering, access-path choice) and the
preference-aware optimizer (Heuristic 5: order prefer chains by ascending
conditional selectivity) need cardinality estimates.  We keep the classic
toolkit: row counts, per-column distinct counts, min/max, an equi-width
histogram for numeric columns and a most-common-values list for skewed ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from .expressions import (
    And,
    Attr,
    Between,
    Comparison,
    Expr,
    InList,
    IsNull,
    Literal,
    Not,
    Or,
)
from .schema import TableSchema
from .table import Table

#: Fallback selectivity for predicates we cannot estimate (System R's 1/3).
DEFAULT_SELECTIVITY = 1.0 / 3.0
HISTOGRAM_BUCKETS = 24
MCV_COUNT = 10


@dataclass
class Histogram:
    """Equi-width histogram over a numeric column."""

    low: float
    high: float
    counts: list[int]

    @property
    def total(self) -> int:
        return sum(self.counts)

    def fraction_below(self, value: float, inclusive: bool) -> float:
        """Estimated fraction of values ``< value`` (or ``<=`` if inclusive)."""
        if self.total == 0 or self.high <= self.low:
            return DEFAULT_SELECTIVITY
        if value < self.low:
            return 0.0
        if value >= self.high:
            return 1.0
        width = (self.high - self.low) / len(self.counts)
        position = (value - self.low) / width
        bucket = min(int(position), len(self.counts) - 1)
        within = position - bucket
        if inclusive:
            within = min(1.0, within + 1e-9)
        below = sum(self.counts[:bucket]) + self.counts[bucket] * within
        return below / self.total


@dataclass
class ColumnStats:
    """Statistics for one column."""

    n_rows: int
    n_nulls: int
    n_distinct: int
    min_value: Any = None
    max_value: Any = None
    histogram: Histogram | None = None
    mcv: dict[Any, float] = field(default_factory=dict)

    @property
    def null_fraction(self) -> float:
        return self.n_nulls / self.n_rows if self.n_rows else 0.0

    def eq_selectivity(self, value: Any) -> float:
        if value is None:
            return 0.0  # NULL never compares equal under our semantics
        if value in self.mcv:
            return self.mcv[value]
        if self.n_distinct <= 0:
            return DEFAULT_SELECTIVITY
        remaining_fraction = max(0.0, 1.0 - self.null_fraction - sum(self.mcv.values()))
        remaining_distinct = max(1, self.n_distinct - len(self.mcv))
        return remaining_fraction / remaining_distinct

    def range_selectivity(self, op: str, value: Any) -> float:
        if value is None:
            return 0.0
        if self.histogram is not None and isinstance(value, (int, float)):
            if op == "<":
                return self.histogram.fraction_below(value, inclusive=False)
            if op == "<=":
                return self.histogram.fraction_below(value, inclusive=True)
            if op == ">":
                return 1.0 - self.histogram.fraction_below(value, inclusive=True)
            if op == ">=":
                return 1.0 - self.histogram.fraction_below(value, inclusive=False)
        return DEFAULT_SELECTIVITY


@dataclass
class TableStats:
    """Statistics for one table."""

    n_rows: int
    columns: dict[str, ColumnStats] = field(default_factory=dict)

    def column(self, name: str) -> ColumnStats | None:
        return self.columns.get(name.lower())


def analyze_table(table: Table) -> TableStats:
    """Compute :class:`TableStats` by a full scan of *table*."""
    stats = TableStats(n_rows=len(table))
    for position, column in enumerate(table.schema.columns):
        values = [row[position] for row in table.rows]
        stats.columns[column.name.lower()] = _analyze_column(values, column.dtype.is_numeric)
    return stats


def _analyze_column(values: Sequence[Any], numeric: bool) -> ColumnStats:
    n_rows = len(values)
    non_null = [v for v in values if v is not None]
    n_nulls = n_rows - len(non_null)
    counts: dict[Any, int] = {}
    for value in non_null:
        counts[value] = counts.get(value, 0) + 1
    n_distinct = len(counts)
    stats = ColumnStats(n_rows=n_rows, n_nulls=n_nulls, n_distinct=n_distinct)
    if not non_null:
        return stats
    stats.min_value = min(non_null)
    stats.max_value = max(non_null)
    common = sorted(counts.items(), key=lambda kv: kv[1], reverse=True)[:MCV_COUNT]
    # Only keep MCVs that are genuinely frequent; uniform columns do better
    # with the 1/n_distinct rule alone.
    stats.mcv = {
        value: count / n_rows for value, count in common if count / n_rows >= 2.0 / max(n_rows, 1)
    }
    if numeric and n_distinct > 1:
        low = float(stats.min_value)
        high = float(stats.max_value)
        bucket_counts = [0] * HISTOGRAM_BUCKETS
        width = (high - low) / HISTOGRAM_BUCKETS
        if width > 0:
            for value in non_null:
                bucket = min(int((float(value) - low) / width), HISTOGRAM_BUCKETS - 1)
                bucket_counts[bucket] += 1
            stats.histogram = Histogram(low=low, high=high, counts=bucket_counts)
    return stats


# ---------------------------------------------------------------------------
# Selectivity estimation over expression trees
# ---------------------------------------------------------------------------


def estimate_selectivity(expr: Expr, schema: TableSchema, stats: TableStats | None) -> float:
    """Estimated fraction of rows of *schema* satisfying *expr* (in [0, 1])."""
    return _Estimator(schema, stats).estimate(expr)


class _Estimator:
    def __init__(self, schema: TableSchema, stats: TableStats | None):
        self.schema = schema
        self.stats = stats

    def estimate(self, expr: Expr) -> float:
        if isinstance(expr, Literal):
            return 1.0 if expr.value else 0.0
        if isinstance(expr, And):
            out = 1.0
            for operand in expr.operands:
                out *= self.estimate(operand)
            return out
        if isinstance(expr, Or):
            out = 0.0
            for operand in expr.operands:
                s = self.estimate(operand)
                out = out + s - out * s  # independence assumption
            return out
        if isinstance(expr, Not):
            return max(0.0, 1.0 - self.estimate(expr.operand))
        if isinstance(expr, Comparison):
            return self._comparison(expr)
        if isinstance(expr, InList):
            return self._in_list(expr)
        if isinstance(expr, Between):
            return self._between(expr)
        if isinstance(expr, IsNull):
            return self._is_null(expr)
        return DEFAULT_SELECTIVITY

    def _column_stats(self, expr: Expr) -> ColumnStats | None:
        if not isinstance(expr, Attr) or self.stats is None:
            return None
        if not self.schema.has(expr.name):
            return None
        column = self.schema.column(expr.name)
        return self.stats.column(column.name)

    def _comparison(self, expr: Comparison) -> float:
        attr, literal, op = _normalize_comparison(expr)
        if attr is None:
            return DEFAULT_SELECTIVITY
        stats = self._column_stats(attr)
        if stats is None:
            return DEFAULT_SELECTIVITY
        if op == "=":
            return stats.eq_selectivity(literal)
        if op == "!=":
            return max(0.0, 1.0 - stats.eq_selectivity(literal) - stats.null_fraction)
        return stats.range_selectivity(op, literal)

    def _in_list(self, expr: InList) -> float:
        stats = self._column_stats(expr.expr)
        if stats is None:
            return min(1.0, DEFAULT_SELECTIVITY * len(expr.values))
        return min(1.0, sum(stats.eq_selectivity(v) for v in expr.values))

    def _between(self, expr: Between) -> float:
        stats = self._column_stats(expr.expr)
        if stats is None:
            return DEFAULT_SELECTIVITY
        upper = stats.range_selectivity("<=", expr.high)
        lower = stats.range_selectivity("<", expr.low)
        return max(0.0, upper - lower)

    def _is_null(self, expr: IsNull) -> float:
        stats = self._column_stats(expr.expr)
        if stats is None:
            return DEFAULT_SELECTIVITY
        fraction = stats.null_fraction
        return (1.0 - fraction) if expr.negated else fraction


_MIRRORED = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "!=": "!="}


def _normalize_comparison(expr: Comparison) -> tuple[Attr | None, Any, str]:
    """Rewrite to (attribute, constant, op) form when possible."""
    left, right = expr.left, expr.right
    if isinstance(left, Attr) and isinstance(right, Literal):
        return left, right.value, expr.op
    if isinstance(left, Literal) and isinstance(right, Attr):
        return right, left.value, _MIRRORED[expr.op]
    return None, None, expr.op
