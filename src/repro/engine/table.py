"""Heap tables: validated, append-only row storage with primary-key lookup."""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping, Sequence

from ..analysis_static.sanitizer import current_sanitizer
from ..errors import CatalogError, SchemaError, TypeError_
from .schema import TableSchema

Row = tuple


class Table:
    """An in-memory heap of row tuples conforming to a :class:`TableSchema`.

    Rows are stored as plain tuples in insertion order.  When the schema
    declares a primary key, uniqueness is enforced and a hash map from key
    values to row positions supports point lookups.
    """

    def __init__(self, schema: TableSchema):
        if schema.name is None:
            raise SchemaError("a stored table requires a schema name")
        self.schema = schema
        self.rows: list[Row] = []
        self._pk_indexes = schema.primary_key_indexes()
        self._pk_map: dict[tuple, int] = {}
        self._frozen = False

    @property
    def name(self) -> str:
        assert self.schema.name is not None
        return self.schema.name

    def __len__(self) -> int:
        return len(self.rows)

    # -- snapshots -------------------------------------------------------------

    @property
    def frozen(self) -> bool:
        """True once a snapshot captured this table (writes must fork first)."""
        return self._frozen

    def freeze(self) -> None:
        """Mark the table immutable: it is now shared with a snapshot.

        Further :meth:`insert` calls raise; :class:`~repro.engine.database.
        Database` write paths fork a private copy first (copy-on-write), so
        snapshot readers keep seeing exactly the rows they captured.
        """
        self._frozen = True

    def fork(self) -> "Table":
        """A mutable copy sharing nothing writable with this table.

        Row tuples themselves are immutable and therefore shared; the row
        list and primary-key map are copied, so appends to the fork never
        surface in a frozen original.
        """
        clone = Table(self.schema)
        clone.rows = list(self.rows)
        clone._pk_map = dict(self._pk_map)
        return clone

    # -- mutation ------------------------------------------------------------

    def insert(self, values: Sequence[Any] | Mapping[str, Any]) -> Row:
        """Validate and append one row; returns the stored tuple."""
        if self._frozen:
            raise CatalogError(
                f"table {self.name} is frozen (captured by a snapshot); "
                "write through Database for copy-on-write semantics"
            )
        sanitizer = current_sanitizer()
        if sanitizer.enabled:
            # Past the freeze gate: if a snapshot captured this exact object
            # the write corrupts it even though _frozen was (buggily) clear.
            sanitizer.table_written(self)
        row = self._coerce(values)
        if self._pk_indexes:
            key = tuple(row[i] for i in self._pk_indexes)
            if any(part is None for part in key):
                raise TypeError_(f"primary key of {self.name} cannot contain NULL: {key!r}")
            if key in self._pk_map:
                raise CatalogError(f"duplicate primary key {key!r} in table {self.name}")
            self._pk_map[key] = len(self.rows)
        self.rows.append(row)
        return row

    def insert_many(self, rows: Iterable[Sequence[Any] | Mapping[str, Any]]) -> int:
        count = 0
        for values in rows:
            self.insert(values)
            count += 1
        return count

    def _coerce(self, values: Sequence[Any] | Mapping[str, Any]) -> Row:
        columns = self.schema.columns
        if isinstance(values, Mapping):
            lowered = {k.lower(): v for k, v in values.items()}
            unknown = set(lowered) - {c.name.lower() for c in columns}
            if unknown:
                raise SchemaError(f"unknown columns {sorted(unknown)} for table {self.name}")
            ordered = [lowered.get(c.name.lower()) for c in columns]
        else:
            if len(values) != len(columns):
                raise SchemaError(
                    f"table {self.name} expects {len(columns)} values, got {len(values)}"
                )
            ordered = list(values)
        return tuple(c.dtype.validate(v) for c, v in zip(columns, ordered))

    # -- access ---------------------------------------------------------------

    def scan(self) -> Iterator[Row]:
        return iter(self.rows)

    def get(self, key: tuple) -> Row | None:
        """Point lookup by primary-key values; ``None`` when absent."""
        if not self._pk_indexes:
            raise CatalogError(f"table {self.name} has no primary key")
        position = self._pk_map.get(key)
        return None if position is None else self.rows[position]

    def primary_key_of(self, row: Row) -> tuple:
        return tuple(row[i] for i in self._pk_indexes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Table({self.name}, {len(self.rows)} rows)"
