"""Column data types for the relational engine.

The engine supports a small, closed set of scalar types.  Values are stored
as plain Python objects inside row tuples; :class:`DataType` carries the
validation and coercion logic used at insert time and by the expression
compiler for type checking.
"""

from __future__ import annotations

import enum
from typing import Any

from ..errors import TypeError_


class DataType(enum.Enum):
    """Scalar column types supported by the engine."""

    INT = "int"
    FLOAT = "float"
    TEXT = "text"
    BOOL = "bool"

    @property
    def python_type(self) -> type:
        return _PYTHON_TYPES[self]

    def validate(self, value: Any) -> Any:
        """Coerce *value* to this type, raising :class:`TypeError_` on mismatch.

        ``None`` is accepted for every type (SQL NULL).  Integers are accepted
        where floats are expected and are widened.
        """
        if value is None:
            return None
        if self is DataType.INT:
            if isinstance(value, bool) or not isinstance(value, int):
                raise TypeError_(f"expected INT, got {value!r}")
            return value
        if self is DataType.FLOAT:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise TypeError_(f"expected FLOAT, got {value!r}")
            return float(value)
        if self is DataType.TEXT:
            if not isinstance(value, str):
                raise TypeError_(f"expected TEXT, got {value!r}")
            return value
        if self is DataType.BOOL:
            if not isinstance(value, bool):
                raise TypeError_(f"expected BOOL, got {value!r}")
            return value
        raise TypeError_(f"unknown data type {self!r}")  # pragma: no cover

    @property
    def is_numeric(self) -> bool:
        return self in (DataType.INT, DataType.FLOAT)


_PYTHON_TYPES = {
    DataType.INT: int,
    DataType.FLOAT: float,
    DataType.TEXT: str,
    DataType.BOOL: bool,
}


def infer_type(value: Any) -> DataType:
    """Infer the :class:`DataType` of a Python value (bool before int)."""
    if isinstance(value, bool):
        return DataType.BOOL
    if isinstance(value, int):
        return DataType.INT
    if isinstance(value, float):
        return DataType.FLOAT
    if isinstance(value, str):
        return DataType.TEXT
    raise TypeError_(f"cannot infer column type for {value!r}")
