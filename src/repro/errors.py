"""Exception hierarchy for the repro preference-aware database library.

Every error raised by the library derives from :class:`ReproError`, so that
callers can catch a single exception type at the API boundary while still
being able to discriminate finer failure classes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SchemaError(ReproError):
    """A schema is malformed or an attribute cannot be resolved."""


class CatalogError(ReproError):
    """A table, index or statistic is missing from, or duplicated in, the catalog."""


class TypeError_(ReproError):
    """A value does not match the declared column type.

    Named with a trailing underscore to avoid shadowing the builtin.
    """


class ExpressionError(ReproError):
    """An expression tree is malformed or references unknown attributes."""


class PlanError(ReproError):
    """A logical plan is malformed (e.g. arity mismatch in a set operation)."""


class OptimizerError(ReproError):
    """The optimizer was given a plan it cannot rewrite soundly."""


class RewriteViolation(OptimizerError):
    """A rule fire failed the rewrite auditor's invariant checks.

    Raised only in the optimizer's strict mode; ``rule`` names the offending
    rule and ``diagnostics`` carries the auditor's findings (see
    :mod:`repro.analysis_static`).
    """

    def __init__(self, rule: str, diagnostics):
        self.rule = rule
        self.diagnostics = list(diagnostics)
        details = "; ".join(str(d) for d in self.diagnostics)
        super().__init__(f"rewrite rule {rule!r} violated plan invariants: {details}")


class ExecutionError(ReproError):
    """A physical operator failed during plan execution."""


class PreferenceError(ReproError):
    """A preference definition is invalid (bad confidence, scoring range...)."""


class ParseError(ReproError):
    """The SQL dialect parser rejected the input text."""

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        location = ""
        if line is not None:
            location = f" at line {line}" + (f", column {column}" if column is not None else "")
        super().__init__(message + location)
        self.line = line
        self.column = column
