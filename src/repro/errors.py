"""Exception hierarchy for the repro preference-aware database library.

Every error raised by the library derives from :class:`ReproError`, so that
callers can catch a single exception type at the API boundary while still
being able to discriminate finer failure classes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SchemaError(ReproError):
    """A schema is malformed or an attribute cannot be resolved."""


class CatalogError(ReproError):
    """A table, index or statistic is missing from, or duplicated in, the catalog."""


class TypeError_(ReproError):
    """A value does not match the declared column type.

    Named with a trailing underscore to avoid shadowing the builtin.
    """


class ExpressionError(ReproError):
    """An expression tree is malformed or references unknown attributes."""


class PlanError(ReproError):
    """A logical plan is malformed (e.g. arity mismatch in a set operation)."""


class OptimizerError(ReproError):
    """The optimizer was given a plan it cannot rewrite soundly."""


class RewriteViolation(OptimizerError):
    """A rule fire failed the rewrite auditor's invariant checks.

    Raised only in the optimizer's strict mode; ``rule`` names the offending
    rule and ``diagnostics`` carries the auditor's findings (see
    :mod:`repro.analysis_static`).
    """

    def __init__(self, rule: str, diagnostics):
        self.rule = rule
        self.diagnostics = list(diagnostics)
        details = "; ".join(str(d) for d in self.diagnostics)
        super().__init__(f"rewrite rule {rule!r} violated plan invariants: {details}")


class ExecutionError(ReproError):
    """A physical operator failed during plan execution."""


class ColumnarUnsupported(ExecutionError):
    """The columnar executor cannot evaluate this plan shape.

    A capability miss, not a failure: the engine catches it and silently
    re-dispatches to the requested row strategy (the result is *not* marked
    degraded).
    """


class PreferenceError(ReproError):
    """A preference definition is invalid (bad confidence, scoring range...)."""


class ResilienceError(ReproError):
    """Base class for resource-governance and fault-tolerance failures.

    Everything the resilience layer (:mod:`repro.resilience`) raises derives
    from this class, so callers can distinguish "the engine protected itself"
    (guard trips, injected faults, open circuits, detected corruption) from
    plain programming errors.
    """


class QueryTimeout(ResilienceError):
    """A query exceeded its :class:`~repro.resilience.QueryGuard` deadline."""

    def __init__(self, timeout: float, elapsed: float | None = None):
        self.timeout = timeout
        self.elapsed = elapsed
        detail = f" (ran {elapsed:.3f}s)" if elapsed is not None else ""
        super().__init__(f"query exceeded its {timeout:.3f}s deadline{detail}")


class QueryCancelled(ResilienceError):
    """A cooperative :class:`~repro.resilience.CancellationToken` was cancelled."""

    def __init__(self, message: str = "query cancelled by caller"):
        super().__init__(message)


class ResourceExhausted(ResilienceError):
    """A query guard budget (output rows, materialized tuples) was exceeded.

    ``kind`` names the budget (``"rows"`` or ``"tuples"``), ``limit`` its
    configured ceiling and ``used`` the amount that tripped it.
    """

    def __init__(self, kind: str, limit: int, used: int):
        self.kind = kind
        self.limit = limit
        self.used = used
        super().__init__(
            f"query exceeded its {kind} budget: {used} > {limit} allowed"
        )


class TransientFault(ResilienceError):
    """A transient failure that may succeed on retry (I/O hiccup, injected fault).

    ``site`` names where the fault surfaced (see
    :class:`repro.resilience.FaultPlan` for the site vocabulary).
    """

    def __init__(self, site: str, message: str | None = None):
        self.site = site
        super().__init__(message or f"transient fault at {site!r}")


class CircuitOpen(ResilienceError):
    """A strategy's circuit breaker is open; the strategy was not attempted."""

    def __init__(self, strategy: str):
        self.strategy = strategy
        super().__init__(
            f"circuit breaker for strategy {strategy!r} is open "
            "(too many recent failures)"
        )


class Overloaded(ResilienceError):
    """The serving layer shed this request instead of admitting it.

    ``reason`` says which admission check tripped: ``"queue-full"`` (the
    bounded request queue is at capacity), ``"session-limit"`` (the session
    already has its maximum number of in-flight queries),
    ``"tenant-quota"`` (the tenant's in-flight allowance is spent) or
    ``"shutting-down"`` (the server is draining and admits nothing new).
    ``limit`` carries the configured ceiling where one applies, and
    ``retry_after`` — when the shedder can estimate one — is the pause, in
    seconds, after which a retry has a realistic chance of being admitted.
    Clients should honor the hint instead of blind backoff: it is derived
    from observed service times and the current backlog, so a fleet that
    obeys it re-arrives spread out rather than as a synchronized storm.
    """

    def __init__(
        self,
        reason: str,
        limit: int | None = None,
        session: str | None = None,
        retry_after: float | None = None,
    ):
        self.reason = reason
        self.limit = limit
        self.session = session
        self.retry_after = retry_after
        detail = f" (limit {limit})" if limit is not None else ""
        who = f" for session {session!r}" if session is not None else ""
        hint = f"; retry after {retry_after:.3f}s" if retry_after is not None else ""
        super().__init__(f"request shed: {reason}{who}{detail}{hint}")


class NetworkFault(TransientFault):
    """A network-boundary failure: dropped connection, torn frame, stalled read.

    Raised by the serving front end (:mod:`repro.serve.net`) and the client
    SDK when the transport — not the query — fails: the connection dropped
    mid-frame, a read stalled past its deadline, or a frame arrived torn.
    ``site`` carries the ``net.*`` fault site where the failure surfaced,
    so chaos reports can attribute it.  Subclasses :exc:`TransientFault`
    because the failure is retryable by construction: the request may be
    resent on a fresh connection (subject to the client's retry budget).
    """


class DurabilityError(ResilienceError):
    """A durability-critical I/O primitive (write, fsync, rename) failed.

    After one of these the affected writer must **fail-stop**: a failed
    fsync may have silently dropped the dirty pages it was asked to persist
    (the "fsyncgate" semantics), so retrying on the same handle could
    acknowledge data that never reaches disk.  ``op`` names the primitive
    that failed and ``path`` the file it was applied to; the original
    ``OSError`` rides along as ``__cause__``.
    """

    def __init__(self, op: str, path: str | None = None, detail: str | None = None):
        self.op = op
        self.path = path
        location = f" on {path!r}" if path is not None else ""
        extra = f": {detail}" if detail else ""
        super().__init__(f"durability {op} failed{location}{extra}")


class WALPoisoned(DurabilityError):
    """The write-ahead log fail-stopped after a durability failure.

    Once an append's write or fsync fails the log's on-disk tail is
    unknowable, so the handle is poisoned: every later append (and reset)
    raises this error instead of acknowledging writes that may never be
    durable.  Recovery is a fresh :meth:`~repro.serve.wal.PreferenceWAL.open`,
    which re-scans the file and truncates whatever the failed append left.
    """

    def __init__(self, path: str | None, reason: str):
        self.reason = reason
        super().__init__("append", path, f"log is poisoned ({reason})")


class PowerCut(ResilienceError):
    """A simulated power failure injected by the faulty VFS.

    Raised at the exact injection instant by
    :class:`repro.resilience.vfs.FaultyVFS`; the crash-torture harness
    catches it, drops all unsynced buffered state
    (:meth:`~repro.resilience.vfs.FaultyVFS.power_cut`), and verifies
    recovery.  Never raised in production configurations.
    """

    def __init__(self, op: str, path: str | None = None):
        self.op = op
        self.path = path
        where = f" during {op}" + (f" of {path!r}" if path else "")
        super().__init__(f"simulated power failure{where}")


class DataCorruption(ResilienceError):
    """Persisted data failed an integrity check, or a result carried invalid pairs.

    ``path`` and ``line`` pinpoint the corrupt file location when the error
    comes from :func:`repro.engine.persist.load_database`; both are ``None``
    for in-memory integrity failures (e.g. an out-of-range score pair caught
    at the execution engine's result gate).
    """

    def __init__(self, message: str, path: str | None = None, line: int | None = None):
        self.path = path
        self.line = line
        location = ""
        if path is not None:
            location = f" [{path}" + (f":{line}" if line is not None else "") + "]"
        super().__init__(message + location)


class ParseError(ReproError):
    """The SQL dialect parser rejected the input text."""

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        location = ""
        if line is not None:
            location = f" at line {line}" + (f", column {column}" if column is not None else "")
        super().__init__(message + location)
        self.line = line
        self.column = column
