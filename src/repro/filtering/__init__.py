"""Filtering of preferred tuples — the phase *after* preference evaluation.

The paper's key separation: preference evaluation (the prefer operator)
never drops tuples; these functions decide which preferred tuples appear in
the answer — top-k by score or confidence, thresholds, full rankings,
not-dominated sets, or minimum-preferences-satisfied.
"""

from .ranking import ranked
from .skyline import skyline, skyline_pairs
from .threshold import (
    conf_at_least,
    filter_pairs,
    matched_any,
    satisfies_at_least,
    score_at_least,
)
from .topk import topk
from .winnow import PreferenceRelation, winnow

__all__ = [
    "topk",
    "winnow",
    "PreferenceRelation",
    "ranked",
    "skyline",
    "skyline_pairs",
    "filter_pairs",
    "score_at_least",
    "conf_at_least",
    "matched_any",
    "satisfies_at_least",
]
