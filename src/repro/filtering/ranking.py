"""Full-ranking presentation: all results ordered by score or confidence."""

from __future__ import annotations

from ..core.prelation import PRelation
from ..errors import ExecutionError
from .topk import canonical_column_order, rank_key


def ranked(relation: PRelation, by: str = "score") -> PRelation:
    """All tuples, best first (deterministic ties, ⊥ last)."""
    if by not in ("score", "conf"):
        raise ExecutionError(f"ranking orders by 'score' or 'conf', got {by!r}")
    order = canonical_column_order(relation.schema)
    entries = sorted(
        zip(relation.rows, relation.pairs),
        key=lambda item: rank_key(item[0], item[1], by, order),
    )
    return PRelation(
        relation.schema, [row for row, _ in entries], [pair for _, pair in entries]
    )
