"""Not-dominated (skyline) filtering — the winnow-style flavour ([7] in the paper).

The paper lists "not-dominated" tuples as one possible filtering phase after
preference evaluation.  Two variants:

* :func:`skyline_pairs` — dominance over the ``(score, conf)`` pair itself:
  keep tuples for which no other tuple is at least as good on both score and
  confidence and strictly better on one.  ⊥ scores are dominated by every
  known score.
* :func:`skyline` — classic attribute skyline over explicit numeric
  dimensions (all maximized; pass negated values to minimize), implemented
  with the block-nested-loop algorithm.
"""

from __future__ import annotations

from typing import Sequence

from ..core.prelation import PRelation
from ..core.scorepair import ScorePair
from ..engine.table import Row
from ..errors import ExecutionError


def _pair_dominates(a: ScorePair, b: ScorePair) -> bool:
    """True when pair *a* dominates pair *b* (score and conf, ⊥ lowest)."""
    a_score = a.score if a.score is not None else float("-inf")
    b_score = b.score if b.score is not None else float("-inf")
    if a_score < b_score or a.conf < b.conf:
        return False
    return a_score > b_score or a.conf > b.conf


def skyline_pairs(relation: PRelation) -> PRelation:
    """Tuples whose ⟨score, conf⟩ pair is not dominated by any other tuple."""
    entries = list(zip(relation.rows, relation.pairs))
    kept: list[tuple[Row, ScorePair]] = []
    for row, pair in entries:
        dominated = False
        for _, other in entries:
            if _pair_dominates(other, pair):
                dominated = True
                break
        if not dominated:
            kept.append((row, pair))
    return PRelation(relation.schema, [r for r, _ in kept], [p for _, p in kept])


def skyline(relation: PRelation, attrs: Sequence[str]) -> PRelation:
    """Block-nested-loop skyline over numeric *attrs*, all maximized.

    Tuples with NULL in any dimension are dominated by definition (unknown
    values cannot defend a skyline spot).
    """
    if not attrs:
        raise ExecutionError("skyline requires at least one dimension")
    positions = [relation.schema.index_of(a) for a in attrs]

    def point(row: Row) -> tuple | None:
        values = tuple(row[i] for i in positions)
        if any(v is None for v in values):
            return None
        return values

    def dominates(a: tuple, b: tuple) -> bool:
        if any(x < y for x, y in zip(a, b)):
            return False
        return any(x > y for x, y in zip(a, b))

    window: list[tuple[tuple, Row, ScorePair]] = []
    for row, pair in relation:
        p = point(row)
        if p is None:
            continue
        dominated = False
        survivors: list[tuple[tuple, Row, ScorePair]] = []
        for wp, wrow, wpair in window:
            if dominates(wp, p):
                dominated = True
                survivors = window
                break
            if not dominates(p, wp):
                survivors.append((wp, wrow, wpair))
        if not dominated:
            survivors.append((p, row, pair))
            window = survivors
    return PRelation(
        relation.schema,
        [row for _, row, _ in window],
        [pair for _, _, pair in window],
    )
