"""Threshold filtering on scores and confidences (paper Example 10).

``σ_{conf ≥ τ}`` keeps only tuples whose accumulated evidence passes a
credibility bar — the paper's "safe suggestions".  ⊥ scores never satisfy a
score threshold (unknown is not good enough), matching the NULL semantics of
the expression layer.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..core.preference import Preference
from ..core.prelation import PRelation
from ..core.scorepair import ScorePair


def filter_pairs(relation: PRelation, keep: Callable[[ScorePair], bool]) -> PRelation:
    """Generic pair-level filter."""
    kept = [(row, pair) for row, pair in relation if keep(pair)]
    return PRelation(relation.schema, [r for r, _ in kept], [p for _, p in kept])


def score_at_least(relation: PRelation, threshold: float) -> PRelation:
    """Tuples with a known score ``≥ threshold``."""
    return filter_pairs(
        relation, lambda p: p.score is not None and p.score >= threshold
    )


def conf_at_least(relation: PRelation, threshold: float) -> PRelation:
    """Tuples with accumulated confidence ``≥ threshold`` (Example 10's Q2)."""
    return filter_pairs(relation, lambda p: p.conf >= threshold)


def matched_any(relation: PRelation) -> PRelation:
    """Tuples affected by at least one preference (``σ_{conf > 0}`` in Q3)."""
    return filter_pairs(relation, lambda p: p.conf > 0.0)


def satisfies_at_least(
    relation: PRelation,
    preferences: Sequence[Preference],
    minimum: int,
) -> PRelation:
    """Tuples matching the conditional part of at least *minimum* preferences.

    This realizes the "minimum number of preferences" filtering flavour the
    paper cites ([19]); preferences whose attributes are absent from the
    relation's schema simply never match.
    """
    checks = []
    for preference in preferences:
        schema = relation.schema
        if all(schema.has(a) for a in preference.attributes()):
            checks.append(preference.condition.compile(schema))
    kept_rows = []
    kept_pairs = []
    for row, pair in relation:
        matched = sum(1 for check in checks if check(row))
        if matched >= minimum:
            kept_rows.append(row)
            kept_pairs.append(pair)
    return PRelation(relation.schema, kept_rows, kept_pairs)
