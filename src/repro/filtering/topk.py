"""Top-k filtering: ``top(k, score|conf)`` (paper Example 9).

Selecting the k most highly ranked tuples is a *filtering* phase applied
after preference evaluation.  The order is total and deterministic — ties on
the ranking value are broken by the tuple's attribute values — so every
execution strategy cuts the same k tuples and can be compared against the
reference evaluator exactly.  ⊥ scores rank below every known score.

Tie-breaking must not depend on the physical column order (the optimizer is
free to permute it), so the attribute comparison walks the columns in
qualified-name order, which is identical across all equivalent plans.
"""

from __future__ import annotations

import heapq
from typing import Sequence

from ..core.prelation import PRelation
from ..core.scorepair import ScorePair
from ..engine.schema import TableSchema
from ..engine.table import Row
from ..errors import ExecutionError


def canonical_column_order(schema: TableSchema) -> tuple[int, ...]:
    """Column positions ordered by qualified attribute name."""
    return tuple(
        sorted(range(len(schema.columns)), key=lambda i: schema.columns[i].qualified_name.lower())
    )


def row_sort_key(row: Row, order: Sequence[int]) -> tuple:
    """A total-order key over rows that may contain NULLs (None sorts last)."""
    return tuple(
        (row[i] is None, 0 if row[i] is None else row[i]) for i in order
    )


#: Ranking quantum: scores produced by algebraically equivalent fold orders
#: (Property 4.3 lets strategies combine pairs in any order) differ by ULPs;
#: quantizing the ranking value keeps those near-ties from flipping the cut.
_RANK_DECIMALS = 9


def rank_key(row: Row, pair: ScorePair, by: str, order: Sequence[int]) -> tuple:
    """Sort key: higher score/conf first, ⊥ last, ties broken by the row."""
    value = pair.score if by == "score" else pair.conf
    return (
        value is None,
        -round(value if value is not None else 0.0, _RANK_DECIMALS),
        row_sort_key(row, order),
    )


def topk(relation: PRelation, k: int, by: str = "score") -> PRelation:
    """The k best tuples of *relation* ordered by ``score`` or ``conf``."""
    if by not in ("score", "conf"):
        raise ExecutionError(f"top-k orders by 'score' or 'conf', got {by!r}")
    if k <= 0:
        raise ExecutionError(f"top-k requires k >= 1, got {k}")
    order = canonical_column_order(relation.schema)
    entries = heapq.nsmallest(
        k,
        zip(relation.rows, relation.pairs),
        key=lambda item: rank_key(item[0], item[1], by, order),
    )
    return PRelation(
        relation.schema, [row for row, _ in entries], [pair for _, pair in entries]
    )
