"""Winnow: best-matches-only filtering under a qualitative preference order.

The paper's related work contrasts its quantitative model with the
*qualitative* approach ([7], [11], [16]) where preferences are binary
relations ("value a is preferred over b and c") and the winnow / BMO
operator returns the tuples not dominated under that order.  This module
provides the qualitative toolkit so both styles coexist in one library:

* :class:`PreferenceRelation` — a strict partial order over the values of
  one attribute, built from ``better ≻ worse`` statements (transitively
  closed, cycles rejected).
* :func:`winnow` — tuples not dominated by any other tuple under one or
  more preference relations (Pareto/prioritized composition).
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from ..core.prelation import PRelation
from ..engine.table import Row
from ..errors import PreferenceError


class PreferenceRelation:
    """A strict partial order over the domain of one attribute.

    Built from explicit statements; the transitive closure is computed
    eagerly and cycles are rejected (a preference order must be a strict
    order).  Values never mentioned are incomparable to everything.
    """

    def __init__(self, attr: str, prefers: Iterable[tuple[Any, Any]] = ()):
        self.attr = attr
        self._better_than: dict[Any, set[Any]] = {}
        for better, worse in prefers:
            self.add(better, worse)

    def add(self, better: Any, worse: Any) -> None:
        """Declare ``better ≻ worse`` and close transitively."""
        if better == worse:
            raise PreferenceError(f"{better!r} cannot be preferred over itself")
        if self.prefers(worse, better):
            raise PreferenceError(
                f"adding {better!r} ≻ {worse!r} would create a preference cycle"
            )
        dominated = self._better_than.setdefault(better, set())
        dominated.add(worse)
        dominated |= self._better_than.get(worse, set())
        for values in self._better_than.values():
            if better in values:
                values.add(worse)
                values |= self._better_than.get(worse, set())

    def prefers(self, a: Any, b: Any) -> bool:
        """True when ``a ≻ b`` holds (strictly)."""
        return b in self._better_than.get(a, ())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        pairs = sum(len(v) for v in self._better_than.values())
        return f"PreferenceRelation({self.attr}, {pairs} pairs)"


def winnow(
    relation: PRelation,
    orders: "PreferenceRelation | Sequence[PreferenceRelation]",
    prioritized: bool = False,
) -> PRelation:
    """Tuples of *relation* not dominated under the given orders.

    With several orders, domination is *Pareto* by default (t dominates t'
    when t is at least as good on every order — equal or preferred — and
    strictly preferred on one); ``prioritized=True`` uses the lexicographic
    composition instead (earlier orders matter more).  NULL values are
    incomparable to everything, matching the engine's NULL semantics.
    """
    if isinstance(orders, PreferenceRelation):
        orders = [orders]
    if not orders:
        raise PreferenceError("winnow requires at least one preference relation")
    positions = [relation.schema.index_of(order.attr) for order in orders]

    def dominates(a: Row, b: Row) -> bool:
        if prioritized:
            for order, position in zip(orders, positions):
                va, vb = a[position], b[position]
                if va is None or vb is None:
                    return False
                if order.prefers(va, vb):
                    return True
                if order.prefers(vb, va) or va != vb:
                    return False
            return False
        strictly_better = False
        for order, position in zip(orders, positions):
            va, vb = a[position], b[position]
            if va is None or vb is None:
                return False
            if order.prefers(va, vb):
                strictly_better = True
            elif va != vb:
                return False  # incomparable or worse on this dimension
        return strictly_better

    entries = list(zip(relation.rows, relation.pairs))
    kept = [
        (row, pair)
        for row, pair in entries
        if not any(dominates(other, row) for other, _ in entries)
    ]
    return PRelation(
        relation.schema, [r for r, _ in kept], [p for _, p in kept]
    )
