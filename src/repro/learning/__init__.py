"""Preference learning: deriving preferences from user feedback.

The paper assumes preferences "have already been extracted for each user"
through learning paths such as ratings, clicks or query logs, with the
**confidence** dimension capturing "the uncertainty imposed by the
preference learning method" (Section III).  This subpackage makes that story
concrete:

* :mod:`~repro.learning.ratings` — atomic preferences from explicit ratings
  (Example 1: a rating of 8/10 becomes ``(σ_{m_id=...}, 0.8, 1)``).
* :mod:`~repro.learning.mining` — generic preferences mined from rated
  items: per-value statistics over a categorical attribute, with confidence
  shrunk toward zero for low support.
* :mod:`~repro.learning.fitting` — least-squares fitting of linear scoring
  functions over numeric attributes, yielding ``ExprScore`` scoring parts
  whose confidence reflects goodness of fit.
"""

from .fitting import FittedScore, fit_linear_scoring
from .mining import mine_categorical_preferences, mine_numeric_preference
from .ratings import atomic_preferences_from_ratings

__all__ = [
    "atomic_preferences_from_ratings",
    "mine_categorical_preferences",
    "mine_numeric_preference",
    "fit_linear_scoring",
    "FittedScore",
]
