"""Fitting scoring functions from observations.

The paper points to "a considerable body of work on providing efficient
methods to learn a scoring function S" (clickthrough data, query logs, user
feedback) and assumes the functions exist.  This module provides the
simplest credible instance: ordinary least squares over one numeric
attribute, producing an :class:`~repro.core.scoring.ExprScore` (so the fitted
function stays transparent to the optimizer) plus an R²-based confidence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core.scoring import ExprScore, ScoringFunction
from ..engine.expressions import Arithmetic, Attr, Literal
from ..errors import PreferenceError


@dataclass(frozen=True)
class FittedScore:
    """Result of fitting: the scoring function plus fit diagnostics."""

    scoring: ScoringFunction
    slope: float
    intercept: float
    r_squared: float

    @property
    def suggested_confidence(self) -> float:
        """A confidence for preferences using this scoring part.

        R² clipped into [0, 0.95]: a perfect fit is still a *learnt*
        preference, never as certain as an explicitly stated one.
        """
        return max(0.0, min(0.95, self.r_squared))


def fit_linear_scoring(
    attr: str, observations: Sequence[tuple[float, float]], label: str | None = None
) -> FittedScore:
    """Least-squares fit of ``score ≈ a·attr + b`` from (value, score) pairs.

    Target scores must lie in [0, 1] (the scoring codomain); the resulting
    expression is clamped into [0, 1] at evaluation time like every
    ExprScore, so mild extrapolation stays well-formed.
    """
    if len(observations) < 2:
        raise PreferenceError("fitting needs at least two observations")
    xs = [float(x) for x, _ in observations]
    ys = [float(y) for _, y in observations]
    for y in ys:
        if not 0.0 <= y <= 1.0:
            raise PreferenceError(f"target scores must lie in [0, 1], got {y}")

    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    if sxx == 0:
        # Degenerate: constant attribute — fall back to the mean score.
        scoring = ExprScore(Literal(mean_y), label=label or f"fit({attr})")
        return FittedScore(scoring, 0.0, mean_y, 0.0)
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    slope = sxy / sxx
    intercept = mean_y - slope * mean_x

    ss_total = sum((y - mean_y) ** 2 for y in ys)
    ss_residual = sum(
        (y - (slope * x + intercept)) ** 2 for x, y in zip(xs, ys)
    )
    r_squared = 1.0 if ss_total == 0 else max(0.0, 1.0 - ss_residual / ss_total)

    expr = Arithmetic(
        "+", Arithmetic("*", Literal(slope), Attr(attr)), Literal(intercept)
    )
    scoring = ExprScore(expr, label=label or f"fit({slope:.3g}·{attr}+{intercept:.3g})")
    return FittedScore(scoring, slope, intercept, r_squared)
