"""Mining generic preferences from rated tuples.

Given a user's ratings over one relation (say MOVIES) and a categorical
attribute reachable from it (say GENRES.genre), derive set-oriented
preferences of the paper's generic flavour: "Alice loves comedies" emerges
from her consistently high ratings of comedy movies.

The score of a mined preference is the mean normalized rating of the items
carrying the value; its confidence is the support fraction shrunk by a
pseudo-count prior (``support / (support + smoothing)``), so thinly
evidenced values come out with low confidence — the paper's stated role for
the confidence dimension.
"""

from __future__ import annotations

import re
from collections import defaultdict
from typing import Any, Iterable

from ..core.preference import Preference
from ..engine.database import Database
from ..engine.expressions import Attr, Comparison
from ..errors import PreferenceError


def _slug(value) -> str:
    """SQL-identifier-safe fragment for preference names (PREFERRING refs)."""
    text = re.sub(r"[^0-9A-Za-z]+", "_", str(value)).strip("_")
    return text or "value"


def mine_categorical_preferences(
    db: Database,
    ratings: Iterable[tuple[Any, float]],
    item_relation: str,
    item_key: str,
    value_relation: str,
    value_attr: str,
    join_attr: str | None = None,
    rating_scale: float = 10.0,
    min_support: int = 2,
    smoothing: float = 3.0,
    confidence_cap: float = 0.95,
    name_prefix: str = "mined",
) -> list[Preference]:
    """Generic preferences over ``value_relation.value_attr`` from ratings.

    *ratings* are ``(item_key_value, rating)`` pairs over *item_relation*;
    values of *value_attr* are collected through the (defaulting to
    *item_key*) join attribute.  Returns one preference per attribute value
    with at least *min_support* rated items, ordered by confidence.

    A mined preference is never fully certain: confidence is capped at
    *confidence_cap* (< 1), keeping learnt preferences distinguishable from
    explicitly stated ones, as the paper's director-Eastwood example
    illustrates.
    """
    if rating_scale <= 0:
        raise PreferenceError("rating_scale must be positive")
    join_attr = join_attr or item_key
    value_table = db.table(value_relation)
    join_position = value_table.schema.index_of(join_attr)
    value_position = value_table.schema.index_of(value_attr)

    values_by_item: dict[Any, list[Any]] = defaultdict(list)
    for row in value_table.rows:
        if row[value_position] is not None:
            values_by_item[row[join_position]].append(row[value_position])

    scores_by_value: dict[Any, list[float]] = defaultdict(list)
    for item, rating in ratings:
        if not 0 <= rating <= rating_scale:
            raise PreferenceError(f"rating {rating} outside [0, {rating_scale}]")
        for value in values_by_item.get(item, ()):
            scores_by_value[value].append(rating / rating_scale)

    preferences: list[Preference] = []
    for value, scores in scores_by_value.items():
        support = len(scores)
        if support < min_support:
            continue
        mean_score = sum(scores) / support
        confidence = min(confidence_cap, support / (support + smoothing))
        preferences.append(
            Preference(
                f"{name_prefix}_{_slug(value_attr)}_{_slug(value)}",
                value_relation,
                Comparison("=", Attr(value_attr), _literal(value)),
                mean_score,
                confidence,
            )
        )
    preferences.sort(key=lambda p: p.confidence, reverse=True)
    return preferences


def mine_numeric_preference(
    db: Database,
    ratings: Iterable[tuple[Any, float]],
    item_relation: str,
    item_key: str,
    attr: str,
    rating_scale: float = 10.0,
    quantile: float = 0.5,
    min_support: int = 3,
    smoothing: float = 3.0,
    confidence_cap: float = 0.9,
    name_prefix: str = "mined",
) -> Preference | None:
    """A range preference over a numeric attribute of the rated relation.

    Looks at the items the user *liked* (rating ≥ half the scale), takes the
    *quantile* of their attribute values as a threshold, and scores the side
    of the threshold where the liked mass is.  Returns ``None`` when the
    liked set is too small.  (E.g. "it appears she prefers recent movies" if
    the liked movies cluster at high years — preference p4/p5 flavour.)
    """
    table = db.table(item_relation)
    key_position = table.schema.index_of(item_key)
    attr_position = table.schema.index_of(attr)
    by_key = {row[key_position]: row[attr_position] for row in table.rows}

    liked_values = []
    all_pairs = list(ratings)
    for item, rating in all_pairs:
        value = by_key.get(item)
        if value is not None and rating >= rating_scale / 2:
            liked_values.append(value)
    if len(liked_values) < min_support:
        return None
    liked_values.sort()
    cut = min(len(liked_values) - 1, max(0, int(len(liked_values) * quantile)))
    threshold = liked_values[cut]

    # Direction: where does the liked mass sit relative to the disliked one?
    disliked = [
        by_key[item]
        for item, rating in all_pairs
        if by_key.get(item) is not None and rating < rating_scale / 2
    ]
    liked_mean = sum(liked_values) / len(liked_values)
    disliked_mean = sum(disliked) / len(disliked) if disliked else liked_mean - 1
    op = ">=" if liked_mean >= disliked_mean else "<="

    liked_ratings = [r for i, r in all_pairs if by_key.get(i) is not None and r >= rating_scale / 2]
    mean_score = sum(liked_ratings) / (len(liked_ratings) * rating_scale)
    support = len(liked_values)
    confidence = min(confidence_cap, support / (support + smoothing))
    direction = "ge" if op == ">=" else "le"
    return Preference(
        f"{name_prefix}_{_slug(attr)}_{direction}_{_slug(threshold)}",
        item_relation,
        Comparison(op, Attr(attr), _literal(threshold)),
        mean_score,
        confidence,
    )


def _literal(value):
    from ..engine.expressions import Literal

    return Literal(value)
