"""Atomic preferences from explicit user ratings (paper Example 1).

A rating is the one preference source the paper treats as fully certain:
"since the preferences are directly provided by users we are certain about
their scores" — confidence 1.  A rating of r on an R-point scale for tuple
with key k becomes the atomic preference ``(σ_{pk=k}, r/R, 1)``.
"""

from __future__ import annotations

from typing import Any, Iterable

from ..core.preference import Preference
from ..errors import PreferenceError


def atomic_preferences_from_ratings(
    relation: str,
    key_attr: str,
    ratings: Iterable[tuple[Any, float]],
    rating_scale: float = 10.0,
    confidence: float = 1.0,
    name_prefix: str = "rating",
) -> list[Preference]:
    """One atomic preference per ``(key_value, rating)`` pair.

    Example 1: Alice rated Million Dollar Baby (m3) 8/10 and Gran Torino
    (m1) 3/10::

        atomic_preferences_from_ratings("MOVIES", "m_id", [(3, 8), (1, 3)])
        # → [(σ_{m_id=3}, 0.8, 1), (σ_{m_id=1}, 0.3, 1)]

    Duplicate keys keep the *last* rating (users revise their opinions).
    """
    if rating_scale <= 0:
        raise PreferenceError("rating_scale must be positive")
    latest: dict[Any, float] = {}
    for key_value, rating in ratings:
        if not 0 <= rating <= rating_scale:
            raise PreferenceError(
                f"rating {rating} outside [0, {rating_scale}] for key {key_value!r}"
            )
        latest[key_value] = float(rating)
    return [
        Preference.atomic(
            relation,
            key_attr,
            key_value,
            score=rating / rating_scale,
            name=f"{name_prefix}_{relation}_{key_attr}_{key_value}".replace(" ", "_"),
            confidence=confidence,
        )
        for key_value, rating in latest.items()
    ]
