"""Runnable alias: ``python -m repro.lint [paths...]``.

The implementation lives in :mod:`repro.analysis_static.lint`; this module
only provides the ``-m`` entry point.
"""

from .analysis_static.lint import LintFinding, lint_paths, lint_source, main, run_lint

__all__ = ["LintFinding", "lint_paths", "lint_source", "main", "run_lint"]

if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in CI
    import sys

    sys.exit(main())
