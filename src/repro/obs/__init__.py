"""Execution observability: tracing, metrics sinks and trace rendering.

The substrate every performance claim in this repo is measured against:
strategies, the native engine and the optimizer all report spans and
counters into the ambient tracer (a no-op by default), and the sinks and
renderers here turn collected traces into JSONL artifacts and
EXPLAIN ANALYZE-style breakdowns.  See ``docs/OBSERVABILITY.md``.
"""

from .render import profile, render_profile, render_trace
from .sinks import InMemorySink, JsonlSink, read_jsonl
from .tracer import (
    NULL_SPAN,
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    capture_tracer,
    current_tracer,
    restore_tracer,
    traced_rows,
    use_tracer,
)

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "NULL_SPAN",
    "current_tracer",
    "capture_tracer",
    "restore_tracer",
    "use_tracer",
    "traced_rows",
    "InMemorySink",
    "JsonlSink",
    "read_jsonl",
    "render_trace",
    "render_profile",
    "profile",
]
