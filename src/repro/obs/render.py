"""Human-readable trace rendering: EXPLAIN ANALYZE-style output.

Two views over one span tree:

* :func:`render_trace` — the hierarchical per-operator breakdown, one line
  per span with its plan label, row counts, score-relation sizes, aggregate
  applications and inclusive wall time (the tree mirrors the executed plan,
  since strategies open one span per operator).
* :func:`render_profile` — a flat table aggregated by operator kind:
  calls, total wall/CPU time, total rows — the ``--profile`` view.
"""

from __future__ import annotations

from .tracer import Span

#: Counters promoted into the per-span annotation, in display order.
_SHOWN_COUNTERS = (
    "rows_in",
    "rows_out",
    "scores",
    "qualifying",
    "prefer.applied",
    "aggregate.combine",
)


def _describe(span: Span) -> str:
    head = span.name if not span.label else f"{span.name} {span.label}"
    parts = []
    for counter in _SHOWN_COUNTERS:
        if counter in span.counters:
            parts.append(f"{counter}={span.counters[counter]}")
    for counter in sorted(span.counters):
        if counter not in _SHOWN_COUNTERS:
            parts.append(f"{counter}={span.counters[counter]}")
    for key in sorted(span.attrs):
        parts.append(f"{key}={span.attrs[key]}")
    annotation = f" ({', '.join(parts)})" if parts else ""
    return f"{head}{annotation}  [{span.wall_time * 1e3:.3f} ms]"


def render_trace(root: Span) -> str:
    """Render the span tree in the plan printer's indentation style."""
    lines: list[str] = []
    _render(root, prefix="", is_last=True, is_root=True, lines=lines)
    return "\n".join(lines)


def _render(
    span: Span, prefix: str, is_last: bool, is_root: bool, lines: list[str]
) -> None:
    if is_root:
        lines.append(_describe(span))
        child_prefix = ""
    else:
        connector = "└─ " if is_last else "├─ "
        lines.append(prefix + connector + _describe(span))
        child_prefix = prefix + ("   " if is_last else "│  ")
    for index, child in enumerate(span.children):
        _render(child, child_prefix, index == len(span.children) - 1, False, lines)


def profile(root: Span) -> dict[str, dict[str, float]]:
    """Aggregate the tree by span name: calls, wall/CPU ms, rows out.

    Wall times are *inclusive* (a parent covers its children), so the
    per-name totals overlap across tree levels; within one name they are
    comparable and that is how the table should be read.
    """
    out: dict[str, dict[str, float]] = {}
    for span in root.walk():
        cell = out.setdefault(
            span.name, {"calls": 0, "wall_ms": 0.0, "cpu_ms": 0.0, "rows_out": 0}
        )
        cell["calls"] += 1
        cell["wall_ms"] += span.wall_time * 1e3
        cell["cpu_ms"] += span.cpu_time * 1e3
        cell["rows_out"] += span.counters.get("rows_out", 0)
    return out


def render_profile(root: Span) -> str:
    """The :func:`profile` aggregation as an aligned text table."""
    cells = profile(root)
    headers = ["operator", "calls", "wall_ms", "cpu_ms", "rows_out"]
    body: list[list[str]] = []
    for name in sorted(cells, key=lambda n: -cells[n]["wall_ms"]):
        cell = cells[name]
        body.append(
            [
                name,
                str(int(cell["calls"])),
                f"{cell['wall_ms']:.3f}",
                f"{cell['cpu_ms']:.3f}",
                str(int(cell["rows_out"])),
            ]
        )
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in body)) if body else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in body:
        lines.append("  ".join(v.ljust(widths[i]) for i, v in enumerate(row)))
    return "\n".join(lines)
