"""Trace sinks: where finished span trees go.

Three consumers are provided:

* :class:`InMemorySink` — keeps ``(meta, Span)`` records in a list; the
  programmatic sink for tests and ad-hoc analysis.
* :class:`JsonlSink` — appends one JSON object per trace to a file
  (``{"meta": {...}, "trace": {...}}``); the artifact format uploaded by CI
  and written by ``repro query --trace-out`` / the benchmark harness.
* :func:`read_jsonl` — loads a JSONL trace file back into ``(meta, Span)``
  pairs, so recorded traces round-trip.
"""

from __future__ import annotations

import json
import os
from typing import Any

from .tracer import Span


class InMemorySink:
    """Collects ``(meta, root_span)`` records in memory."""

    def __init__(self) -> None:
        self.records: list[tuple[dict, Span]] = []

    def write(self, root: Span, meta: "dict[str, Any] | None" = None) -> None:
        self.records.append((dict(meta or {}), root))

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)


class JsonlSink:
    """Appends traces to *path*, one JSON document per line.

    Each line is ``{"meta": {...}, "trace": <span tree>}`` with the span
    tree in :meth:`repro.obs.tracer.Span.to_dict` form.  Opening is lazy and
    appending, so several runs can share one artifact file.
    """

    def __init__(self, path: str) -> None:
        self.path = path

    def write(self, root: Span, meta: "dict[str, Any] | None" = None) -> None:
        record = {"meta": dict(meta or {}), "trace": root.to_dict()}
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, ensure_ascii=False, default=str) + "\n")


def read_jsonl(path: str) -> list[tuple[dict, Span]]:
    """Load a :class:`JsonlSink` file back into ``(meta, Span)`` pairs."""
    records: list[tuple[dict, Span]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            data = json.loads(line)
            records.append((data.get("meta", {}), Span.from_dict(data["trace"])))
    return records
