"""Hierarchical execution tracing with a zero-cost no-op default.

The execution stack (strategies, native engine, optimizer) reports into a
*tracer*.  Two implementations exist:

* :class:`Tracer` — collects a tree of :class:`Span` objects (operator
  open/close, rows in/out, score-relation sizes, aggregate-apply counts,
  wall and CPU time).  This is the in-memory collector sink.
* :data:`NULL_TRACER` — the always-installed default.  Every method is a
  no-op returning a module-level singleton, so the instrumented hot paths
  cost one attribute check (``tracer.enabled``) and allocate nothing.

The active tracer travels through a :class:`contextvars.ContextVar`, so
deeply nested components (e.g. the native engine invoked by a strategy)
pick it up without signature changes::

    tracer = Tracer()
    with use_tracer(tracer):
        engine.run(plan, "gbu")
    print(tracer.root.children)

Spans form a tree through an explicit stack: context-manager entry pushes,
exit pops.  Pipelined operators (the native engine's iterators) use the
*detached* protocol instead — :meth:`Tracer.push` / :meth:`Tracer.pop`
delimit the structural extent while :meth:`Span.finish` is deferred until
the operator's output iterator is exhausted, so a span's wall time is the
paper-style *inclusive* operator time (PostgreSQL's EXPLAIN ANALYZE
convention).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Iterator


class Span:
    """One traced region: a named node in the trace tree.

    ``counters`` holds integer measurements (``rows_out``, ``scores``,
    ``aggregate.combine`` ...); ``attrs`` holds arbitrary annotations
    (``strategy``, ``changed``, estimated costs ...).
    """

    __slots__ = (
        "name",
        "label",
        "children",
        "counters",
        "attrs",
        "_started_wall",
        "_started_cpu",
        "wall_time",
        "cpu_time",
        "_tracer",
        "_open",
    )

    def __init__(self, name: str, label: str = "", tracer: "Tracer | None" = None):
        self.name = name
        self.label = label
        self.children: list[Span] = []
        self.counters: dict[str, int] = {}
        self.attrs: dict[str, Any] = {}
        self._started_wall = time.perf_counter()
        self._started_cpu = time.process_time()
        self.wall_time = 0.0
        self.cpu_time = 0.0
        self._tracer = tracer
        self._open = True

    # -- measurements -----------------------------------------------------------

    def add(self, counter: str, amount: int = 1) -> None:
        """Increment an integer counter on this span."""
        self.counters[counter] = self.counters.get(counter, 0) + amount

    def set(self, key: str, value: Any) -> None:
        """Attach an annotation (non-counter metadata) to this span."""
        self.attrs[key] = value

    def finish(self) -> None:
        """Stamp wall/CPU duration.  Idempotent: later calls are ignored."""
        if not self._open:
            return
        self._open = False
        self.wall_time = time.perf_counter() - self._started_wall
        self.cpu_time = time.process_time() - self._started_cpu

    # -- context manager ---------------------------------------------------------

    def __enter__(self) -> "Span":
        if self._tracer is not None:
            self._tracer.push(self)
        return self

    def __exit__(self, *exc) -> bool:
        if self._tracer is not None:
            self._tracer.pop(self)
        self.finish()
        return False

    # -- introspection -----------------------------------------------------------

    def walk(self) -> Iterator["Span"]:
        """Yield this span and every descendant, pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> "Span | None":
        """First span in the subtree (pre-order) with ``name``."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def find_all(self, name: str) -> list["Span"]:
        return [span for span in self.walk() if span.name == name]

    def total(self, counter: str) -> int:
        """Sum of *counter* over this span and all descendants."""
        return sum(span.counters.get(counter, 0) for span in self.walk())

    # -- serialization -----------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-compatible representation (see :mod:`repro.obs.sinks`)."""
        out: dict[str, Any] = {
            "name": self.name,
            "wall_ms": round(self.wall_time * 1e3, 6),
            "cpu_ms": round(self.cpu_time * 1e3, 6),
        }
        if self.label:
            out["label"] = self.label
        if self.counters:
            out["counters"] = dict(self.counters)
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        span = cls(data["name"], data.get("label", ""))
        span.wall_time = data.get("wall_ms", 0.0) / 1e3
        span.cpu_time = data.get("cpu_ms", 0.0) / 1e3
        span.counters = dict(data.get("counters", {}))
        span.attrs = dict(data.get("attrs", {}))
        span.children = [cls.from_dict(child) for child in data.get("children", [])]
        span._open = False
        return span

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, {self.wall_time * 1e3:.2f}ms, {self.counters})"


class Tracer:
    """Collecting tracer: spans attach under the current stack top.

    ``root`` is a synthetic container span; real work hangs below it.
    ``counters`` are tracer-global totals, fed by :meth:`count` (which also
    credits the innermost open span so per-operator breakdowns carry them).
    """

    enabled = True

    def __init__(self) -> None:
        self.root = Span("trace", tracer=self)
        self._stack: list[Span] = [self.root]
        self.counters: dict[str, int] = {}

    def span(self, name: str, label: str = "") -> Span:
        """Create a span under the current parent (not yet on the stack).

        Use as a context manager (``with tracer.span(...)``) for synchronous
        regions, or with :meth:`push`/:meth:`pop` + :meth:`Span.finish` for
        pipelined operators whose lifetime outlives their structural extent.
        """
        span = Span(name, label, tracer=self)
        self._stack[-1].children.append(span)
        return span

    def push(self, span: Span) -> None:
        self._stack.append(span)

    def pop(self, span: Span) -> None:
        stack = self._stack
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # tolerate out-of-order exits (generator teardown)
            while stack.pop() is not span:
                pass

    def current(self) -> Span:
        return self._stack[-1]

    def count(self, name: str, amount: int = 1) -> None:
        """Bump a global counter, also credited to the innermost open span."""
        self.counters[name] = self.counters.get(name, 0) + amount
        top = self._stack[-1]
        if top is not self.root:
            top.add(name, amount)

    def finish(self) -> Span:
        """Close the root container and return it."""
        self.root.finish()
        return self.root


class _NullSpan:
    """Singleton stand-in span: every operation is a no-op."""

    __slots__ = ()

    wall_time = 0.0
    cpu_time = 0.0
    name = "null"
    label = ""
    children: list = []
    counters: dict = {}
    attrs: dict = {}

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def add(self, counter: str, amount: int = 1) -> None:
        pass

    def set(self, key: str, value: Any) -> None:
        pass

    def finish(self) -> None:
        pass


NULL_SPAN = _NullSpan()


class NullTracer:
    """The zero-cost default: hot paths check ``enabled`` and move on.

    Every factory returns the module-level :data:`NULL_SPAN`, so the no-op
    path performs **zero allocations** (asserted by the test suite).
    """

    __slots__ = ()

    enabled = False

    def span(self, name: str, label: str = "") -> _NullSpan:
        return NULL_SPAN

    def push(self, span) -> None:
        pass

    def pop(self, span) -> None:
        pass

    def current(self) -> _NullSpan:
        return NULL_SPAN

    def count(self, name: str, amount: int = 1) -> None:
        pass

    def finish(self) -> _NullSpan:
        return NULL_SPAN


NULL_TRACER = NullTracer()

#: The ambient tracer; NULL_TRACER unless :func:`use_tracer` installed one.
_CURRENT: ContextVar["Tracer | NullTracer"] = ContextVar(
    "repro_tracer", default=NULL_TRACER
)


def current_tracer() -> "Tracer | NullTracer":
    """The tracer installed for the current context (no-op by default)."""
    return _CURRENT.get()


def capture() -> "Tracer | NullTracer":
    """Capture the ambient tracer for explicit hand-off to a worker thread.

    ``ContextVar`` values do not cross thread boundaries: a worker thread
    that merely calls :func:`current_tracer` gets :data:`NULL_TRACER` and
    traces nothing.  Capture on the submitting thread and :func:`restore`
    inside the worker (the serving layer does this automatically through
    ``contextvars.copy_context``).  Note a :class:`Tracer` is not itself
    thread-safe — hand one captured tracer to one worker at a time.
    """
    return _CURRENT.get()


def restore(tracer: "Tracer | NullTracer | None"):
    """Install a captured tracer in this thread; returns a context manager."""
    return use_tracer(tracer if tracer is not None else NULL_TRACER)


#: Package-level aliases (``repro.obs.capture_tracer``) so call sites can
#: import guard and tracer capture helpers side by side without clashing.
capture_tracer = capture
restore_tracer = restore


@contextmanager
def use_tracer(tracer: "Tracer | NullTracer"):
    """Install *tracer* as the ambient tracer for the enclosed block."""
    token = _CURRENT.set(tracer)
    try:
        yield tracer
    finally:
        # Exception-safe restore: reset() raises ValueError for a token
        # minted in a different Context (cross-thread generator teardown);
        # reinstall the no-op default rather than leaking a stale tracer.
        try:
            _CURRENT.reset(token)
        except ValueError:  # pragma: no cover - cross-context teardown
            _CURRENT.set(NULL_TRACER)


def traced_rows(rows, span: Span):
    """Wrap a row iterator: counts ``rows_out`` and finishes *span* on exhaustion.

    Used by the pipelined native engine; the span's wall time then covers
    operator open through last row (inclusive time).
    """
    n = 0
    try:
        for row in rows:
            n += 1
            yield row
    finally:
        span.add("rows_out", n)
        span.finish()
