"""Preference-aware query optimization: heuristic rules 1-5 + left-deep plans."""

from .leftdeep import left_deepen, match_native_join_order
from .optimizer import OptimizerConfig, PreferenceOptimizer, optimize
from .rules import push_prefers, push_projections, push_selections, reorder_prefers
from .selectivity import preference_selectivity

__all__ = [
    "PreferenceOptimizer",
    "OptimizerConfig",
    "optimize",
    "push_selections",
    "push_projections",
    "push_prefers",
    "reorder_prefers",
    "match_native_join_order",
    "left_deepen",
    "preference_selectivity",
]
