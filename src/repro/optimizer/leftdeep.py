"""Left-deep restructuring and native join-order matching (§VI-A, end).

After the heuristic rules, the optimizer (a) re-orders join regions the way
the native optimizer would — the units carrying their pushed-down selects
and prefers along — and (b) rearranges commutative binary operators so the
plan is left-deep: during execution only two temporary relations need to be
held at a time.
"""

from __future__ import annotations

from ..engine.catalog import Catalog
from ..engine.native_optimizer import order_joins
from ..plan.nodes import Intersect, PlanNode, Union


def match_native_join_order(plan: PlanNode, catalog: Catalog) -> PlanNode:
    """Re-order join regions greedily, exactly as the native optimizer would.

    Prefer operators attached to a join input travel with it, so the
    preference placement chosen by Rules 3–5 is preserved.  Greedy ordering
    already emits left-deep join trees.
    """
    return order_joins(plan, catalog)


def left_deepen(plan: PlanNode) -> PlanNode:
    """Swap commutative set operations so binary subtrees hang left.

    Joins are already left-deep after :func:`match_native_join_order`;
    Union/Intersect are commutative on p-relations (F is commutative), so a
    binary-operator-bearing right child can be swapped to the left.
    Difference is not commutative and is left as-is.
    """
    children = plan.children()
    if children:
        plan = plan.with_children([left_deepen(child) for child in children])
    if isinstance(plan, (Union, Intersect)):
        left, right = plan.children()
        if _has_binary(right) and not _has_binary(left):
            return plan.with_children([right, left])
    return plan


def _has_binary(plan: PlanNode) -> bool:
    return any(len(node.children()) == 2 for node in plan.walk())
