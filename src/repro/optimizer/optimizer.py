"""The preference-aware query optimizer (§VI-A).

Applies the five heuristic transformation rules in order, then restructures
the plan left-deep, matching the join order the native optimizer would pick.
Individual rules can be disabled through :class:`OptimizerConfig` — the
heuristics-ablation benchmark uses this to measure each rule's contribution.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..engine.catalog import Catalog
from ..plan.nodes import PlanNode
from .leftdeep import left_deepen, match_native_join_order
from .rules import push_prefers, push_projections, push_selections, reorder_prefers


@dataclass(frozen=True)
class OptimizerConfig:
    """Which transformation rules to apply (all on by default)."""

    push_selections: bool = True        # Rule 1
    push_projections: bool = True       # Rule 2
    push_prefers: bool = True           # Rules 3 & 4
    reorder_prefers: bool = True        # Rule 5
    match_join_order: bool = True       # native join-order matching
    left_deep: bool = True              # left-deep restructuring

    @classmethod
    def none(cls) -> "OptimizerConfig":
        """Baseline plan: execute operators exactly as written in the query."""
        return cls(False, False, False, False, False, False)


class PreferenceOptimizer:
    """Rewrites extended query plans into more efficient equivalents."""

    def __init__(self, catalog: Catalog, config: OptimizerConfig | None = None):
        self.catalog = catalog
        self.config = config or OptimizerConfig()

    def optimize(self, plan: PlanNode) -> PlanNode:
        config = self.config
        if config.push_selections:
            plan = push_selections(plan, self.catalog)
        if config.push_projections:
            plan = push_projections(plan, self.catalog)
        if config.push_prefers:
            plan = push_prefers(plan, self.catalog)
        if config.reorder_prefers:
            plan = reorder_prefers(plan, self.catalog)
        if config.match_join_order:
            plan = match_native_join_order(plan, self.catalog)
        if config.left_deep:
            plan = left_deepen(plan)
        return plan


def optimize(plan: PlanNode, catalog: Catalog, config: OptimizerConfig | None = None) -> PlanNode:
    """Convenience one-shot entry point."""
    return PreferenceOptimizer(catalog, config).optimize(plan)
