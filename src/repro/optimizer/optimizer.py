"""The preference-aware query optimizer (§VI-A).

Applies the five heuristic transformation rules in order, then restructures
the plan left-deep, matching the join order the native optimizer would pick.
Individual rules can be disabled through :class:`OptimizerConfig` — the
heuristics-ablation benchmark uses this to measure each rule's contribution.

Every rule fire can be audited by the static rewrite auditor
(:mod:`repro.analysis_static.auditor`): the (before, after) pair is checked
for invariant preservation — no new verifier errors, unchanged output
attributes, unchanged preference and relation multisets.  In **strict** mode
any error-severity finding raises :class:`~repro.errors.RewriteViolation`;
otherwise findings are recorded on the rule's tracer span (``diagnostics``
attribute) and counted under ``optimizer.rewrite_violation``.  Without a
collecting tracer and without strict mode, no auditing runs at all — the
fast path is unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..engine.cardinality import estimate_cardinality
from ..engine.catalog import Catalog
from ..errors import RewriteViolation
from ..obs import current_tracer
from ..plan.nodes import PlanNode
from .leftdeep import left_deepen, match_native_join_order
from .rules import push_prefers, push_projections, push_selections, reorder_prefers


def estimated_plan_cost(plan: PlanNode, catalog: Catalog) -> float:
    """Crude plan cost: summed estimated cardinality of every node.

    The paper argues (§VI-A) that intermediate-relation sizes drive query
    cost; summing each operator's estimated output size is exactly that.
    Used only for observability (per-rule cost deltas), never for planning.
    """
    return sum(estimate_cardinality(node, catalog) for node in plan.walk())


@dataclass(frozen=True)
class OptimizerConfig:
    """Which transformation rules to apply (all on by default)."""

    push_selections: bool = True        # Rule 1
    push_projections: bool = True       # Rule 2
    push_prefers: bool = True           # Rules 3 & 4
    reorder_prefers: bool = True        # Rule 5
    match_join_order: bool = True       # native join-order matching
    left_deep: bool = True              # left-deep restructuring

    @classmethod
    def none(cls) -> "OptimizerConfig":
        """Baseline plan: execute operators exactly as written in the query."""
        return cls(False, False, False, False, False, False)


class PreferenceOptimizer:
    """Rewrites extended query plans into more efficient equivalents."""

    def __init__(
        self,
        catalog: Catalog,
        config: OptimizerConfig | None = None,
        *,
        strict: bool = False,
        default_aggregate=None,
    ):
        self.catalog = catalog
        self.config = config or OptimizerConfig()
        self.strict = strict
        self.default_aggregate = default_aggregate

    def optimize(self, plan: PlanNode, tracer=None) -> PlanNode:
        """Apply the enabled rules in order.

        Under a collecting tracer every rule gets an ``optimize.rule`` span
        recording whether it fired (changed the plan), the estimated-cost
        delta, and any audit diagnostics; fired rules also bump the global
        ``optimizer.rule_fired`` counter.  Strict mode additionally raises
        :class:`~repro.errors.RewriteViolation` on the first rule fire that
        fails the rewrite auditor.  The no-tracer, non-strict path skips all
        of that, including the tree comparisons.
        """
        config = self.config
        rules = (
            ("push_selections", config.push_selections, push_selections),
            ("push_projections", config.push_projections, push_projections),
            ("push_prefers", config.push_prefers, push_prefers),
            ("reorder_prefers", config.reorder_prefers, reorder_prefers),
            ("match_join_order", config.match_join_order, match_native_join_order),
            ("left_deep", config.left_deep, lambda p, _catalog: left_deepen(p)),
        )
        if tracer is None:
            tracer = current_tracer()
        if not tracer.enabled and not self.strict:
            for _name, enabled, rule in rules:
                if enabled:
                    plan = rule(plan, self.catalog)
            return plan

        from ..analysis_static.auditor import RewriteAuditor
        from ..analysis_static.diagnostics import Severity

        auditor = RewriteAuditor(
            self.catalog, default_aggregate=self.default_aggregate
        )
        for name, enabled, rule in rules:
            if not enabled:
                continue
            with tracer.span("optimize.rule", label=name) as span:
                if tracer.enabled:
                    cost_before = estimated_plan_cost(plan, self.catalog)
                diagnostics = []
                if rule is push_projections:
                    rewritten = push_projections(plan, self.catalog, diagnostics)
                else:
                    rewritten = rule(plan, self.catalog)
                fired = rewritten != plan
                span.set("fired", fired)
                if fired:
                    tracer.count("optimizer.rule_fired")
                    if tracer.enabled:
                        cost_after = estimated_plan_cost(rewritten, self.catalog)
                        span.set("cost_before", round(cost_before, 1))
                        span.set("cost_after", round(cost_after, 1))
                        span.set("cost_delta", round(cost_after - cost_before, 1))
                    diagnostics.extend(auditor.audit(name, plan, rewritten))
                if diagnostics:
                    span.set("diagnostics", [str(d) for d in diagnostics])
                    violations = [
                        d for d in diagnostics if d.severity is Severity.ERROR
                    ]
                    if violations:
                        tracer.count("optimizer.rewrite_violation", len(violations))
                        if self.strict:
                            raise RewriteViolation(name, violations)
                plan = rewritten
        return plan


def optimize(plan: PlanNode, catalog: Catalog, config: OptimizerConfig | None = None) -> PlanNode:
    """Convenience one-shot entry point."""
    return PreferenceOptimizer(catalog, config).optimize(plan)
