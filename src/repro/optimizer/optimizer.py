"""The preference-aware query optimizer (§VI-A).

Applies the five heuristic transformation rules in order, then restructures
the plan left-deep, matching the join order the native optimizer would pick.
Individual rules can be disabled through :class:`OptimizerConfig` — the
heuristics-ablation benchmark uses this to measure each rule's contribution.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..engine.cardinality import estimate_cardinality
from ..engine.catalog import Catalog
from ..obs import current_tracer
from ..plan.nodes import PlanNode
from .leftdeep import left_deepen, match_native_join_order
from .rules import push_prefers, push_projections, push_selections, reorder_prefers


def estimated_plan_cost(plan: PlanNode, catalog: Catalog) -> float:
    """Crude plan cost: summed estimated cardinality of every node.

    The paper argues (§VI-A) that intermediate-relation sizes drive query
    cost; summing each operator's estimated output size is exactly that.
    Used only for observability (per-rule cost deltas), never for planning.
    """
    return sum(estimate_cardinality(node, catalog) for node in plan.walk())


@dataclass(frozen=True)
class OptimizerConfig:
    """Which transformation rules to apply (all on by default)."""

    push_selections: bool = True        # Rule 1
    push_projections: bool = True       # Rule 2
    push_prefers: bool = True           # Rules 3 & 4
    reorder_prefers: bool = True        # Rule 5
    match_join_order: bool = True       # native join-order matching
    left_deep: bool = True              # left-deep restructuring

    @classmethod
    def none(cls) -> "OptimizerConfig":
        """Baseline plan: execute operators exactly as written in the query."""
        return cls(False, False, False, False, False, False)


class PreferenceOptimizer:
    """Rewrites extended query plans into more efficient equivalents."""

    def __init__(self, catalog: Catalog, config: OptimizerConfig | None = None):
        self.catalog = catalog
        self.config = config or OptimizerConfig()

    def optimize(self, plan: PlanNode, tracer=None) -> PlanNode:
        """Apply the enabled rules in order.

        Under a collecting tracer every rule gets an ``optimize.rule`` span
        recording whether it fired (changed the plan), node counts, and the
        estimated-cost delta; fired rules also bump the global
        ``optimizer.rule_fired`` counter.  The no-op tracer path skips all
        of that, including the tree comparisons.
        """
        config = self.config
        rules = (
            ("push_selections", config.push_selections, push_selections),
            ("push_projections", config.push_projections, push_projections),
            ("push_prefers", config.push_prefers, push_prefers),
            ("reorder_prefers", config.reorder_prefers, reorder_prefers),
            ("match_join_order", config.match_join_order, match_native_join_order),
            ("left_deep", config.left_deep, lambda p, _catalog: left_deepen(p)),
        )
        if tracer is None:
            tracer = current_tracer()
        if not tracer.enabled:
            for _name, enabled, rule in rules:
                if enabled:
                    plan = rule(plan, self.catalog)
            return plan
        for name, enabled, rule in rules:
            if not enabled:
                continue
            with tracer.span("optimize.rule", label=name) as span:
                cost_before = estimated_plan_cost(plan, self.catalog)
                rewritten = rule(plan, self.catalog)
                fired = rewritten != plan
                span.set("fired", fired)
                if fired:
                    tracer.count("optimizer.rule_fired")
                    cost_after = estimated_plan_cost(rewritten, self.catalog)
                    span.set("cost_before", round(cost_before, 1))
                    span.set("cost_after", round(cost_after, 1))
                    span.set("cost_delta", round(cost_after - cost_before, 1))
                plan = rewritten
        return plan


def optimize(plan: PlanNode, catalog: Catalog, config: OptimizerConfig | None = None) -> PlanNode:
    """Convenience one-shot entry point."""
    return PreferenceOptimizer(catalog, config).optimize(plan)
