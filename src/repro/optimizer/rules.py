"""The five heuristic transformation rules of the query optimizer (§VI-A).

1. Selections are pushed down as far as they can go (splitting conjunctions).
2. Projections are pushed down as far as possible.
3. Prefer operators are pushed down, landing just on top of a select or
   project operator, whenever applicable (Property 4.1).
4. A prefer operator over a binary operator whose preference involves
   attributes of only one input is pushed to that input (Property 4.4).
5. Several prefer operators on the same input are ordered in ascending
   selectivity of their conditional parts (Property 4.3).

Rule 1 is shared with the native optimizer
(:func:`repro.engine.native_optimizer.push_selections`), which already
respects Property 4.1 when moving selections across prefer operators.
"""

from __future__ import annotations

from ..core.preference import Preference
from ..engine.catalog import Catalog
from ..engine.native_optimizer import push_selections  # noqa: F401  (rule 1)
from ..engine.schema import TableSchema
from ..plan.nodes import (
    Difference,
    Intersect,
    Join,
    LeftJoin,
    PlanNode,
    Prefer,
    Project,
    Relation,
    Select,
    TopK,
    Union,
)
from .selectivity import preference_selectivity

# ---------------------------------------------------------------------------
# Rule 2 — projection pushdown
# ---------------------------------------------------------------------------


def push_projections(
    plan: PlanNode, catalog: Catalog, diagnostics: list | None = None
) -> PlanNode:
    """Insert projections directly above base relations keeping only the
    attributes somebody upstream needs (Rule 2).

    "Needed" covers: the final output attributes, every selection and join
    condition, every prefer operator's conditional and scoring attributes,
    and the primary keys of all base relations (score relations are keyed by
    them).  Projections are not pushed through set operations (their inputs
    are positional); when that blocks an active pushdown, a PV201 diagnostic
    is appended to *diagnostics* (if given) instead of dropping the fact
    silently.
    """
    required = _all_required_attributes(plan, catalog)
    return _prune(plan, required, catalog, diagnostics)


def _all_required_attributes(plan: PlanNode, catalog: Catalog) -> set[str]:
    required: set[str] = set()
    for node in plan.walk():
        if isinstance(node, Select):
            required |= node.condition.attributes()
        elif isinstance(node, (Join, LeftJoin)):
            required |= node.condition.attributes()
        elif isinstance(node, Prefer):
            required |= node.preference.attributes()
        elif isinstance(node, Project):
            required |= {a.lower() for a in node.attrs}
        elif isinstance(node, Relation):
            schema = node.schema(catalog)
            for attr in schema.primary_key:
                required.add(schema.column(attr).qualified_name.lower())
    if not isinstance(plan, (Project,)) and not any(
        isinstance(n, Project) for n in plan.walk()
    ):
        # No projection anywhere: the full width is the output; keep everything.
        return {"*"}
    return required


def _prune(
    plan: PlanNode,
    required: set[str],
    catalog: Catalog,
    diagnostics: list | None = None,
) -> PlanNode:
    if "*" in required:
        return plan
    if isinstance(plan, Relation):
        schema = plan.schema(catalog)
        kept = [
            column.qualified_name
            for column in schema.columns
            if column.name.lower() in required or column.qualified_name.lower() in required
        ]
        if not kept or len(kept) == len(schema.columns):
            return plan
        return Project(plan, kept)
    if isinstance(plan, (Union, Intersect, Difference)):
        # Positional inputs: do not disturb.  Record what was blocked rather
        # than silently leaving the subtree at full width.
        if diagnostics is not None:
            from ..analysis_static.diagnostics import make_diagnostic

            diagnostics.append(
                make_diagnostic(
                    "PV201",
                    f"projection pushdown blocked: {plan.kind} inputs are "
                    "positional, its subtree stays at full width",
                    where=plan.label(),
                )
            )
        return plan
    children = plan.children()
    if not children:
        return plan
    return plan.with_children(
        [_prune(child, required, catalog, diagnostics) for child in children]
    )


# ---------------------------------------------------------------------------
# Rules 3 & 4 — prefer pushdown
# ---------------------------------------------------------------------------


def push_prefers(plan: PlanNode, catalog: Catalog) -> PlanNode:
    """Sink every prefer operator as deep as Properties 4.1/4.4 allow.

    A prefer passes through joins to the side owning all of its attributes
    (Rule 4 / Property 4.4); for intersections and differences it is pushed
    to the left input, which every result tuple comes from.  It stops just
    on top of a select, project or leaf (Rule 3), and never crosses a TopK
    or a score-referencing selection (their output depends on scores).
    Chains of prefers sink through each other (Property 4.3).
    """
    children = plan.children()
    if children:
        plan = plan.with_children([push_prefers(child, catalog) for child in children])
    if isinstance(plan, Prefer):
        return _sink(plan, catalog)
    return plan


def _sink(node: Prefer, catalog: Catalog) -> PlanNode:
    child = node.child
    preference = node.preference

    if isinstance(child, Prefer):
        # Sink through the sibling prefer (4.3), then retry at this level.
        lowered = _sink(Prefer(child.child, preference, node.aggregate), catalog)
        return Prefer(lowered, child.preference, child.aggregate)

    if isinstance(child, Join):
        side = _owning_side(preference, child.left, child.right, catalog)
        if side == "left":
            return Join(
                _sink(Prefer(child.left, preference, node.aggregate), catalog),
                child.right,
                child.condition,
            )
        if side == "right":
            return Join(
                child.left,
                _sink(Prefer(child.right, preference, node.aggregate), catalog),
                child.condition,
            )
        return node

    if isinstance(child, LeftJoin):
        # Only the preserved (left) side is safe: a prefer pushed right would
        # miss NULL-padded rows whose non-null-rejecting conditions (e.g.
        # NOT x = 1) hold after the join.
        if (
            _resolves(preference, child.left, catalog)
            and not _any_resolves(
                preference.attributes(), child.right.schema(catalog)
            )
            and preference.attributes()
        ):
            return LeftJoin(
                _sink(Prefer(child.left, preference, node.aggregate), catalog),
                child.right,
                child.condition,
            )
        return node

    if isinstance(child, (Intersect, Difference)):
        # Every result tuple of ∩ / − exists in the left input with the same
        # attribute values, so evaluating p there is equivalent (see §IV-C).
        if _resolves(preference, child.children()[0], catalog):
            lowered = _sink(
                Prefer(child.children()[0], preference, node.aggregate), catalog
            )
            return child.with_children([lowered, child.children()[1]])
        return node

    # Select / Project: Rule 3 says stop "just on top" of them.  Union: a
    # tuple may exist only in the non-pushed input, so pushing is unsound
    # without knowing λ_p leaves that input unchanged.  Leaves / TopK: stop.
    return node


def _owning_side(
    preference: Preference, left: PlanNode, right: PlanNode, catalog: Catalog
) -> str | None:
    attrs = preference.attributes()
    if not attrs:
        return None  # membership preference over the product: stay put
    left_schema = left.schema(catalog)
    right_schema = right.schema(catalog)
    on_left = all(left_schema.has(a) for a in attrs)
    on_right = all(right_schema.has(a) for a in attrs)
    if on_left and not _any_resolves(attrs, right_schema):
        return "left"
    if on_right and not _any_resolves(attrs, left_schema):
        return "right"
    return None


def _any_resolves(attrs: set[str], schema: TableSchema) -> bool:
    return any(schema.has(a) for a in attrs)


def _resolves(preference: Preference, plan: PlanNode, catalog: Catalog) -> bool:
    schema = plan.schema(catalog)
    return all(schema.has(a) for a in preference.attributes())


# ---------------------------------------------------------------------------
# Rule 5 — order prefer chains by ascending selectivity
# ---------------------------------------------------------------------------


def reorder_prefers(plan: PlanNode, catalog: Catalog) -> PlanNode:
    """Sort every maximal chain of prefer operators by ascending selectivity.

    Property 4.3 makes any order equivalent; evaluating the most selective
    conditional parts first materializes fewer score-relation entries early
    (the paper's "from less to more expensive").
    """
    if isinstance(plan, Prefer):
        # Consume the whole maximal chain here rather than re-sorting every
        # suffix on the way up — that cost O(|λ|²) selectivity estimates per
        # chain, which dominated planning time for wide preference pools.
        chain: list[Prefer] = []
        node: PlanNode = plan
        while isinstance(node, Prefer):
            chain.append(node)
            node = node.child
        base = reorder_prefers(node, catalog)
        if len(chain) == 1:
            return plan if base is node else Prefer(base, plan.preference, plan.aggregate)
        ranked = sorted(
            chain, key=lambda p: preference_selectivity(p.preference, base, catalog)
        )
        rebuilt = base
        # The most selective preference must be evaluated first, i.e. sit lowest.
        for prefer_node in ranked:
            rebuilt = Prefer(rebuilt, prefer_node.preference, prefer_node.aggregate)
        return rebuilt
    children = plan.children()
    if children:
        plan = plan.with_children([reorder_prefers(child, catalog) for child in children])
    return plan
