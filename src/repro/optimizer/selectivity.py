"""Selectivity of preference conditional parts (input to Heuristic 5)."""

from __future__ import annotations

from ..core.preference import Preference
from ..engine.cardinality import estimate_condition_selectivity
from ..engine.catalog import Catalog
from ..plan.nodes import PlanNode


def preference_selectivity(
    preference: Preference, input_plan: PlanNode, catalog: Catalog
) -> float:
    """Estimated fraction of the input's tuples affected by *preference*.

    This is the selectivity of the preference's conditional part ``σ_φ`` over
    the output of *input_plan*; Heuristic 5 sorts prefer chains by it in
    ascending order so cheaper (more selective) preferences materialize fewer
    score-relation entries first.
    """
    return estimate_condition_selectivity(preference.condition, input_plan, catalog)
