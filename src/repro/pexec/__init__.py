"""Preference-aware query execution strategies (§VI-B).

* :class:`ExecutionEngine` — strategy registry and entry point.
* :func:`execute_ftp` / :func:`execute_bu` / :func:`execute_gbu` — the
  paper's Filter-then-Prefer, Bottom-Up and Group Bottom-Up algorithms.
* :func:`execute_plugin_rma` / :func:`execute_plugin_shared` — the plug-in
  baselines (rewrite / materialize / aggregate).
* :func:`evaluate_reference` — the semantics oracle.
"""

from .bottom_up import execute_bu
from .conform import conform
from .engine import STRATEGIES, ExecutionEngine, ExecutionStats, QueryResult
from .ftp import execute_ftp, is_spj_region
from .group_bottom_up import execute_gbu
from .plugin import execute_plugin_rma, execute_plugin_shared
from .reference import evaluate_reference
from .scorerel import Intermediate

__all__ = [
    "ExecutionEngine",
    "ExecutionStats",
    "QueryResult",
    "STRATEGIES",
    "execute_ftp",
    "execute_bu",
    "execute_gbu",
    "execute_plugin_rma",
    "execute_plugin_shared",
    "evaluate_reference",
    "conform",
    "is_spj_region",
    "Intermediate",
]
