"""Fused batch preference scoring — the physical layer over ``core.prefgroup``.

The execution strategies evaluate *runs* of prefer operators: FtP folds the
whole region's preference list over one delegated result, BU/GBU walk chains
of adjacent ``Prefer`` nodes.  This module applies such a run as **one**
fused pass (dispatch index + fused combining + distinct-value memoization,
see :mod:`repro.core.prefgroup`) instead of |λ| separate passes.

Batch scoring is on by default and gated by an ambient flag so callers can
flip it per query (``Session.execute(batch_scoring=False)``) — the unfused
sequential fold stays available as the reference path and as the baseline
the ``bench_batch_scoring`` benchmark and the CI perf-smoke gate compare
against.

Every fused application reports a ``prefer.batch`` span with the pass's
counters (``probes``, ``dispatch_hits``, ``memo_hits``, ``fused_combines``,
``residual_checks``, ``rows_in``, ``matches``) so EXPLAIN ANALYZE shows
where the pass saved work.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from operator import itemgetter
from typing import Sequence

from ..core.aggregates import AggregateFunction
from ..core.preference import Preference
from ..core.prefgroup import CompiledGroup, PreferenceGroup
from ..core.prelation import PRelation
from ..core.scorepair import ScorePair
from ..engine.schema import TableSchema
from ..engine.table import Row
from ..obs import current_tracer
from .scorerel import Intermediate

#: Ambient switch: fused batch scoring is the default execution mode.
_BATCH_SCORING: ContextVar[bool] = ContextVar("repro-batch-scoring", default=True)


def batch_scoring_enabled() -> bool:
    """Whether strategies should evaluate preference runs as fused groups."""
    return _BATCH_SCORING.get()


@contextmanager
def use_batch_scoring(enabled: bool):
    """Ambiently enable/disable fused batch scoring for the dynamic extent."""
    token = _BATCH_SCORING.set(bool(enabled))
    try:
        yield
    finally:
        _BATCH_SCORING.reset(token)


def _report_batch(compiled: CompiledGroup, label: str) -> None:
    """Attach the pass's counters to a ``prefer.batch`` span (no-op untraced)."""
    tracer = current_tracer()
    if not tracer.enabled:
        return
    with tracer.span("prefer.batch", label=label) as span:
        span.set("preferences", len(compiled.group))
        span.set("indexed", compiled.indexed_count)
        span.set("residual", compiled.residual_count)
        span.set("memo", compiled.memo_enabled)
        for name, value in compiled.stats.as_dict().items():
            span.add(name, value)
        # A match is exactly one combiner application of the sequential
        # fold, so the standard counter stays comparable across modes.
        span.add("aggregate.combine", compiled.stats.matches)


def apply_prefer_group(
    inter: Intermediate,
    preferences: Sequence[Preference],
    aggregate: AggregateFunction,
) -> Intermediate:
    """Fused equivalent of folding ``scorerel.apply_prefer`` per preference.

    One pass over ``inter.rows``; the score relation is copied once for the
    whole group.  Bit-identical to the sequential fold (see
    :meth:`CompiledGroup.score_rows`).
    """
    compiled = PreferenceGroup(preferences, aggregate).compile(inter.schema)
    scores = compiled.score_rows(inter.rows, inter.key_fn(), inter.scores)
    _report_batch(compiled, f"|λ|={len(preferences)}")
    return Intermediate(inter.schema, inter.rows, inter.key_attrs, scores, inter.source)


def prefer_group(
    relation: PRelation,
    preferences: Sequence[Preference],
    aggregate: AggregateFunction,
) -> PRelation:
    """Fused equivalent of folding ``core.prefer.prefer`` per preference.

    The PRelation form used by FtP and the plug-in skeleton: rows keep their
    positions, every row's pair is folded through all matching preferences
    in one pass.
    """
    compiled = PreferenceGroup(preferences, aggregate).compile(relation.schema)
    pairs = compiled.score_pairs(relation.rows, relation.pairs)
    _report_batch(compiled, f"|λ|={len(preferences)}")
    return PRelation(relation.schema, list(relation.rows), pairs)


def group_scores_from_rows(
    schema: TableSchema,
    rows: Sequence[Row],
    key_attrs: Sequence[str],
    preferences: Sequence[Preference],
    aggregate: AggregateFunction,
    base: "dict[tuple, ScorePair] | None" = None,
) -> "dict[tuple, ScorePair]":
    """Fused score-relation derivation for a natively-executed block (GBU).

    *schema* is the block result's schema as delivered (possibly permuted);
    keys are resolved by name.  Returns a fresh dict merging into *base*
    without mutating it.
    """
    group = PreferenceGroup(preferences, aggregate)
    compiled = group.compile(schema)
    positions = tuple(schema.index_of(a) for a in key_attrs)
    if len(positions) == 1:
        position = positions[0]
        key_fn = lambda row: (row[position],)  # noqa: E731
    else:
        key_fn = itemgetter(*positions)
    scores = compiled.score_rows(rows, key_fn, base)
    _report_batch(compiled, f"|λ|={len(preferences)}")
    return scores
