"""The Bottom-Up (BU) execution strategy (§VI-B).

BU performs a postorder traversal of the optimized extended plan and
executes **each operator separately**, materializing its (rows, score
relation) pair before moving on.  It is greedy: no batching, every standard
operator becomes its own native query over the already-materialized inputs.
The paper excludes BU from its plots because GBU strictly improves on it —
our Fig.-14 benchmark reproduces exactly that gap.
"""

from __future__ import annotations

from ..core.aggregates import F_S, AggregateFunction
from ..core.prelation import PRelation
from ..engine.database import Database
from ..engine.physical import execute_native
from ..errors import ExecutionError
from ..obs import current_tracer
from ..resilience import current_faults, current_guard
from ..plan.nodes import (
    Difference,
    Intersect,
    Join,
    LeftJoin,
    Materialized,
    PlanNode,
    Prefer,
    Project,
    Relation,
    Select,
    TopK,
    Union,
)
from . import batchscore, scorerel
from .batchscore import batch_scoring_enabled
from .scorerel import Intermediate


def execute_bu(
    plan: PlanNode, db: Database, aggregate: AggregateFunction = F_S
) -> PRelation:
    """Execute *plan* (already optimized and widened) with the BU strategy."""
    return _Evaluator(db, aggregate).evaluate(plan).to_prelation()


class _Evaluator:
    def __init__(self, db: Database, aggregate: AggregateFunction):
        self.db = db
        self.aggregate = aggregate
        self.tracer = current_tracer()
        self.guard = current_guard()
        self.faults = current_faults()

    # Each operator is executed through the native engine as its own query
    # over Materialized inputs, mirroring BU's one-query-per-operator shape.

    def evaluate(self, plan: PlanNode) -> Intermediate:
        if self.guard.enabled:
            self.guard.check()
        if self.faults.enabled:
            self.faults.at("strategy.bu")
        tracer = self.tracer
        if not tracer.enabled:
            return self._evaluate(plan)
        with tracer.span(f"bu.{plan.kind}", label=plan.label()) as span:
            result = self._evaluate(plan)
            if result.rows is not None:
                span.add("rows_out", len(result.rows))
            span.add("scores", len(result.scores))
            return result

    def _evaluate(self, plan: PlanNode) -> Intermediate:
        if isinstance(plan, Relation):
            table = self.db.table(plan.name)
            inter = Intermediate.from_table(table, plan.schema(self.db.catalog))
            inter.source = plan
            return inter
        if isinstance(plan, Materialized):
            return Intermediate.from_rows(plan.schema(self.db.catalog), list(plan.rows))
        if isinstance(plan, Select):
            return self._select(plan)
        if isinstance(plan, Project):
            return self._project(plan)
        if isinstance(plan, (Join, LeftJoin)):
            return self._join(plan)
        if isinstance(plan, (Union, Intersect, Difference)):
            return self._setop(plan)
        if isinstance(plan, Prefer):
            return self._prefer(plan)
        if isinstance(plan, TopK):
            child = self.evaluate(plan.child)
            return scorerel.apply_topk(child, plan.k, plan.by)
        raise ExecutionError(f"BU cannot execute node {plan!r}")

    def _prefer_chain(self, plan: Prefer) -> "tuple[list[Prefer], AggregateFunction]":
        """Longest run of adjacent Prefer nodes sharing one effective aggregate.

        Returned innermost-first, matching the order a per-node postorder
        traversal would apply them in.
        """
        aggregate = plan.aggregate or self.aggregate
        chain = [plan]
        node = plan.child
        while isinstance(node, Prefer) and (node.aggregate or self.aggregate) is aggregate:
            chain.append(node)
            node = node.child
        chain.reverse()
        return chain, aggregate

    def _prefer(self, plan: Prefer) -> Intermediate:
        chain, aggregate = self._prefer_chain(plan)
        for _ in chain:
            self.db.cost.count_operator("prefer")
        innermost = chain[0]
        if len(chain) == 1 and isinstance(innermost.child, Relation):
            # Base-relation prefer: run the conditional part natively so
            # index access paths apply (Heuristic 4's rationale).
            table = self.db.table(innermost.child.name)
            child = Intermediate.from_table(
                table, innermost.child.schema(self.db.catalog)
            )
            child.source = innermost.child
            _, qualifying = execute_native(
                Select(innermost.child, innermost.preference.condition),
                self.db.catalog,
                self.db.cost,
            )
            result = scorerel.apply_prefer_to_rows(
                child, innermost.preference, list(qualifying), aggregate
            )
            self.db.cost.materialize(len(result.scores))
            return result
        child = self.evaluate(innermost.child)
        preferences = [node.preference for node in chain]
        if batch_scoring_enabled():
            # Fused: one pass over the materialized child for the whole run.
            self.db.cost.scan(len(child.rows))
            result = batchscore.apply_prefer_group(child, preferences, aggregate)
        else:
            for _ in preferences:
                self.db.cost.scan(len(child.rows))
            result = scorerel.apply_prefer_seq(child, preferences, aggregate)
        self.db.cost.materialize(len(result.scores))
        return result

    def _native(self, plan: PlanNode) -> tuple:
        schema, rows = execute_native(plan, self.db.catalog, self.db.cost)
        self.db.cost.materialize(len(rows))
        return schema, rows

    def _as_leaf(self, inter: Intermediate) -> PlanNode:
        if inter.source is not None:
            # Unchanged base rows: reference the relation itself so the
            # per-operator query keeps its index access paths.
            return inter.source
        return Materialized(inter.schema, inter.rows)

    def _select(self, plan: Select) -> Intermediate:
        child = self.evaluate(plan.child)
        if plan.condition.references_score():
            return scorerel.apply_score_select(child, plan.condition)
        if isinstance(plan.child, Relation):
            # σ over a base table keeps its index access paths available.
            _, rows = self._native(Select(plan.child, plan.condition))
        else:
            _, rows = self._native(Select(self._as_leaf(child), plan.condition))
        return scorerel.filter_rows(child, rows)

    def _project(self, plan: Project) -> Intermediate:
        child = self.evaluate(plan.child)
        schema, rows = self._native(Project(self._as_leaf(child), plan.attrs))
        return scorerel.project_rows(child, schema, plan.attrs, rows)

    def _join(self, plan: "Join | LeftJoin") -> Intermediate:
        left = self.evaluate(plan.left)
        right = self.evaluate(plan.right)
        native = plan.with_children([self._as_leaf(left), self._as_leaf(right)])
        schema, rows = self._native(native)
        return scorerel.combine_join(left, right, schema, rows, self.aggregate)

    def _setop(self, plan: PlanNode) -> Intermediate:
        left = self.evaluate(plan.children()[0])
        right = self.evaluate(plan.children()[1])
        native = plan.with_children([self._as_leaf(left), self._as_leaf(right)])
        _, rows = self._native(native)
        return scorerel.combine_setop(plan.kind, left, right, rows, self.aggregate)
