"""Conforming p-relations to a target schema (column order normalization).

The native optimizer is free to re-order joins, which permutes result
columns; strategies must still return results in the logical plan's column
order so that set operations stay positional and results are comparable
across strategies and with the reference evaluator.
"""

from __future__ import annotations

from ..core.prelation import PRelation
from ..engine.schema import TableSchema
from ..errors import ExecutionError


def conform(relation: PRelation, target: TableSchema) -> PRelation:
    """Re-order/select *relation*'s columns to match *target* (by name)."""
    source = relation.schema
    if source.attribute_names == target.attribute_names:
        return relation
    positions = []
    for column in target.columns:
        name = column.qualified_name
        if not source.has(name):
            # Fall back to the bare name (qualifiers may differ after rename).
            name = column.name
        if not source.has(name):
            raise ExecutionError(
                f"cannot conform result: attribute {column.qualified_name!r} "
                "is missing from the computed schema"
            )
        positions.append(source.index_of(name))
    rows = [tuple(row[i] for i in positions) for row in relation.rows]
    return PRelation(target, rows, list(relation.pairs))
