"""The preference-aware execution engine: strategy registry and entry point.

This is the component marked "Execution Engine" in the paper's architecture
(Fig. 6): it receives an extended query plan, runs the preference-aware
optimizer where the strategy calls for it, executes the plan with the chosen
strategy and returns a p-relation along with timing and simulated-I/O
statistics.

Strategies:

======================  ======================================================
``gbu`` (default)       Group Bottom-Up — optimized plan, operators batched
                        into native queries between prefer boundaries (Alg 2).
``bu``                  Bottom-Up — optimized plan, one query per operator.
``ftp``                 Filter-then-Prefer — non-preference part delegated
                        wholesale, prefers evaluated on its result (Alg 1).
``plugin-rma``          Plug-in baseline, one full query per preference.
``plugin-shared``       Plug-in baseline sharing one materialized base result.
``reference``           Direct interpretation of the extended algebra (oracle).
======================  ======================================================
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

from ..core.aggregates import F_S, AggregateFunction
from ..core.prelation import PRelation
from ..core.scorepair import ScorePair
from ..engine.database import Database
from ..engine.iosim import CostModel
from ..errors import (
    CircuitOpen,
    ColumnarUnsupported,
    DataCorruption,
    ExecutionError,
    QueryCancelled,
    QueryTimeout,
    ReproError,
    ResourceExhausted,
    TransientFault,
)
from ..obs import current_tracer, use_tracer
from ..optimizer import OptimizerConfig, PreferenceOptimizer
from ..resilience import (
    ResiliencePolicy,
    current_faults,
    current_guard,
    use_faults,
    use_guard,
)
from ..plan.analysis import (
    qualify_preferences,
    required_carry_attributes,
    widen_projections,
)
from ..plan.nodes import PlanNode
from .batchscore import use_batch_scoring
from .bottom_up import execute_bu
from .conform import conform
from .ftp import execute_ftp
from .group_bottom_up import execute_gbu
from .plugin import execute_plugin_rma, execute_plugin_shared
from .reference import evaluate_reference

#: Strategies that run on the plan produced by the preference-aware
#: optimizer; the others organize execution themselves.
_OPTIMIZED_STRATEGIES = frozenset({"bu", "gbu"})

STRATEGIES = ("gbu", "bu", "ftp", "plugin-rma", "plugin-shared", "reference")


@dataclass
class ExecutionStats:
    """Measurements for a single query execution.

    Every instance is private to one :meth:`ExecutionEngine.run` call: the
    engine executes each query against a fresh :class:`CostModel` (merged
    into the database-wide accumulator afterwards), so reusing one engine —
    or interleaving strategies — can never bleed counters between results.

    ``operators`` counts operator invocations for this query only;
    ``trace`` is the root :class:`repro.obs.Span` when the query ran under
    a collecting tracer, else ``None``.

    When the query ran under a :class:`~repro.resilience.ResiliencePolicy`
    and any attempt failed before this result was produced, ``degraded`` is
    ``True``, ``failures`` lists the causes (oldest first) and ``attempts``
    counts every execution attempt including the successful one; the same
    information is annotated on the query's tracer span.
    """

    strategy: str
    wall_time: float
    rows: int
    cost: dict[str, int] = field(default_factory=dict)
    operators: dict[str, int] = field(default_factory=dict)
    trace: object | None = None
    degraded: bool = False
    failures: list[str] = field(default_factory=list)
    attempts: int = 1
    #: Which executor produced the result: ``"row"`` (the strategy named in
    #: ``strategy``), ``"columnar"`` (serial columnar executor) or
    #: ``"columnar-parallel"`` (partitioned worker pool).
    mode: str = "row"

    def summary(self) -> str:
        suffix = ""
        if self.degraded:
            suffix = f" (degraded after {self.attempts} attempts)"
        return (
            f"{self.strategy}: {self.wall_time * 1e3:.2f} ms, {self.rows} rows, "
            f"{self.cost.get('total_io', 0)} simulated page I/Os{suffix}"
        )


@dataclass
class QueryResult:
    """Outcome of one query execution.

    ``relation`` carries the *widened* schema (user attributes plus the
    primary keys and preference attributes the engine projects through the
    plan); :meth:`presented` trims it back to the attributes the query asked
    for.
    """

    relation: PRelation
    stats: ExecutionStats
    plan: PlanNode
    executed_plan: PlanNode
    plan_schema: object = None

    def presented(self) -> PRelation:
        from ..core.algebra import project

        target = [c.qualified_name for c in self.plan_schema.columns]
        return project(self.relation, target)


def _check_integrity(result: PRelation, strategy: str) -> None:
    """Result gate: every score pair must be well-formed.

    A single preference scores in ``[0, 1]`` and aggregates only ever
    combine non-negative finite scores and confidences, so any NaN,
    infinity or negative component proves the pair was corrupted somewhere
    between the strategy and the caller.  Raises
    :exc:`~repro.errors.DataCorruption` (a typed resilience error the
    fallback chain can recover from) instead of returning a wrong answer.
    """
    for position, (score, conf) in enumerate(result.pairs):
        score_ok = score is None or (math.isfinite(score) and score >= 0.0)
        conf_ok = math.isfinite(conf) and conf >= 0.0
        if not (score_ok and conf_ok):
            raise DataCorruption(
                f"strategy {strategy!r} produced an invalid score pair "
                f"⟨{score}, {conf}⟩ at result position {position}"
            )


class ExecutionEngine:
    """Runs extended query plans against a :class:`Database`."""

    def __init__(
        self,
        db: Database,
        aggregate: AggregateFunction = F_S,
        optimizer_config: OptimizerConfig | None = None,
        tracer=None,
        *,
        strict: bool = False,
        resilience: ResiliencePolicy | None = None,
    ):
        self.db = db
        self.aggregate = aggregate
        #: When *strict*, every optimizer rule fire is audited against the
        #: static plan verifier and an invariant-breaking rewrite raises
        #: :class:`~repro.errors.RewriteViolation` instead of executing.
        self.strict = strict
        self.optimizer = PreferenceOptimizer(
            db.catalog, optimizer_config, strict=strict, default_aggregate=aggregate
        )
        #: Default tracer for every :meth:`run`; ``None`` means "use the
        #: ambient tracer" (a zero-cost no-op unless one is installed).
        self.tracer = tracer
        #: Default degradation policy for every :meth:`run`; ``None`` means
        #: fail-fast (one attempt, no fallback) — the historical behavior.
        self.resilience = resilience

    def prepare(self, plan: PlanNode) -> PlanNode:
        """Widen the plan's projections (the parser step of §VI).

        Every attribute a prefer operator uses, every join attribute and
        every base-relation primary key is carried through projections so
        score relations stay keyable.
        """
        plan = qualify_preferences(plan, self.db.catalog)
        carry = required_carry_attributes(plan, self.db.catalog)
        return widen_projections(plan, carry, self.db.catalog)

    def run(
        self,
        plan: PlanNode,
        strategy: str = "gbu",
        tracer=None,
        *,
        guard=None,
        faults=None,
        resilience: ResiliencePolicy | None = None,
        batch_scoring: bool | None = None,
        columnar: bool | None = None,
        partitions: int | None = None,
    ) -> QueryResult:
        """Execute *plan* with *strategy*, returning result and statistics.

        *tracer* (or the engine's default, or the ambient tracer) receives a
        ``query`` span with ``prepare`` / ``optimize`` / ``execute:<s>`` /
        ``conform`` phases; every operator below reports into it.  Costs are
        accumulated in a per-query :class:`CostModel` and merged back into
        ``db.cost``, so the returned stats are isolated per invocation.

        *guard* is a :class:`~repro.resilience.QueryGuard` enforced at every
        operator boundary; its deadline and budgets cover the whole call,
        including retries and fallback strategies.  *faults* is a
        :class:`~repro.resilience.FaultPlan` for chaos testing.  *resilience*
        (or the engine default) enables retry-with-backoff, per-strategy
        circuit breakers and the strategy fallback chain; a result produced
        after any failure has ``stats.degraded`` set and the causes recorded
        both in ``stats.failures`` and on the query's tracer span.

        *batch_scoring* selects fused group evaluation of preference runs
        (see :mod:`repro.pexec.batchscore`); ``None`` keeps the ambient
        setting (fused, unless a surrounding ``use_batch_scoring(False)``
        turned it off), ``False`` forces the sequential per-preference fold.

        *columnar* routes execution through the columnar executor
        (:mod:`repro.columnar`); *partitions* > 1 additionally splits the
        plan's largest leaf into horizontal partitions evaluated on a worker
        pool (:mod:`repro.pexec.parallel`) — either implies columnar mode.
        A plan shape the columnar executor does not support silently falls
        back to the requested row *strategy* (capability miss, not
        degradation); a worker fault falls back too, but marks the result
        ``degraded`` with the cause recorded.  ``stats.mode`` reports which
        executor actually produced the result.
        """
        if strategy not in STRATEGIES:
            raise ExecutionError(
                f"unknown strategy {strategy!r}; choose one of {', '.join(STRATEGIES)}"
            )
        if tracer is None:
            tracer = self.tracer if self.tracer is not None else current_tracer()
        if guard is None:
            guard = current_guard()
        if faults is None:
            faults = current_faults()
        if resilience is None:
            resilience = self.resilience
        nparts = max(1, partitions or 1)
        columnar_mode = bool(columnar) or nparts > 1
        if batch_scoring is not None:
            with use_batch_scoring(batch_scoring):
                if resilience is None:
                    return self._run_once(
                        plan, strategy, tracer, guard, faults,
                        columnar=columnar_mode, partitions=nparts,
                    )
                return self._run_resilient(
                    plan, strategy, tracer, guard, faults, resilience,
                    columnar=columnar_mode, partitions=nparts,
                )
        if resilience is None:
            return self._run_once(
                plan, strategy, tracer, guard, faults,
                columnar=columnar_mode, partitions=nparts,
            )
        return self._run_resilient(
            plan, strategy, tracer, guard, faults, resilience,
            columnar=columnar_mode, partitions=nparts,
        )

    def _run_resilient(
        self, plan: PlanNode, strategy: str, tracer, guard, faults, resilience,
        *, columnar: bool = False, partitions: int = 1,
    ) -> QueryResult:
        """Retry × circuit breaker × fallback orchestration around `_run_once`.

        Transient faults — and detected result corruption, which is just as
        attempt-local — are retried on the same strategy with exponential
        backoff (clamped to the guard's deadline); any other library error
        moves straight to the next strategy in the fallback chain.  Guard
        trips (timeout, cancellation, exhausted budgets) always propagate:
        their budgets span the whole query, so another attempt could only
        trip them again.
        """
        failures: list[str] = []
        last_error: ReproError | None = None
        attempts = 0
        retry = resilience.retry
        for candidate in resilience.chain_for(strategy):
            if candidate not in STRATEGIES:
                continue
            breaker = resilience.breaker(candidate)
            if breaker is not None and not breaker.allow():
                failures.append(f"{candidate}: circuit open")
                if last_error is None:
                    last_error = CircuitOpen(candidate)
                continue
            for attempt in range(1, max(1, retry.attempts) + 1):
                attempts += 1
                try:
                    result = self._run_once(
                        plan, candidate, tracer, guard, faults,
                        columnar=columnar, partitions=partitions,
                    )
                except (TransientFault, DataCorruption) as err:
                    last_error = err
                    failures.append(f"{candidate}#{attempt}: {type(err).__name__}: {err}")
                    if breaker is not None:
                        breaker.record_failure()
                    if attempt < max(1, retry.attempts):
                        retry.pause(attempt, guard)
                        continue
                    break  # retries exhausted: fall back to the next strategy
                except (QueryTimeout, QueryCancelled, ResourceExhausted):
                    raise
                except ReproError as err:
                    last_error = err
                    failures.append(f"{candidate}#{attempt}: {type(err).__name__}: {err}")
                    if breaker is not None:
                        breaker.record_failure()
                    break  # non-transient: retrying the same strategy won't help
                else:
                    if breaker is not None:
                        breaker.record_success()
                    stats = result.stats
                    stats.attempts = attempts
                    if failures:
                        stats.degraded = True
                        stats.failures = list(failures)
                        span = stats.trace
                        if span is not None:
                            span.set("degraded", True)
                            span.set("failure_cause", failures[-1])
                            span.set("failures", list(failures))
                    return result
        assert last_error is not None  # the chain is never empty
        raise last_error

    def _run_once(
        self, plan: PlanNode, strategy: str, tracer, guard, faults,
        *, columnar: bool = False, partitions: int = 1,
    ) -> QueryResult:
        """One execution attempt under an installed guard and fault plan."""
        with use_tracer(tracer), use_guard(guard), use_faults(faults), tracer.span(
            "query", label=strategy
        ) as root:
            root.set("strategy", strategy)
            original_schema = plan.schema(self.db.catalog)
            with tracer.span("prepare"):
                widened = self.prepare(plan)
            target_schema = widened.schema(self.db.catalog)

            outer_cost = self.db.cost
            query_cost = CostModel()
            # The per-query cost model doubles as the resilience layer's
            # data-volume choke point: every strategy charges scans and
            # materializations through it, so attaching the guard and fault
            # plan here covers the whole execution without per-site plumbing.
            query_cost.guard = guard if guard.enabled else None
            query_cost.faults = faults if faults.enabled else None
            self.db.cost = query_cost
            started = time.perf_counter()
            mode = "row"
            degraded_causes: list[str] = []
            try:
                result = None
                executed_plan = widened
                if columnar:
                    result, mode = self._run_columnar(
                        widened, tracer, partitions, degraded_causes
                    )
                if result is None:
                    mode = "row"
                    if strategy in _OPTIMIZED_STRATEGIES:
                        with tracer.span("optimize"):
                            executed_plan = self.optimizer.optimize(widened)
                    with tracer.span(f"execute:{strategy}") as execute_span:
                        result = self._dispatch(executed_plan, strategy)
                        execute_span.add("rows_out", len(result))
                with tracer.span("conform"):
                    result = conform(result, target_schema)
                if faults.enabled:
                    if faults.corrupts("pexec.scores") and result.pairs:
                        victim = faults.pick(len(result.pairs))
                        result.pairs[victim] = ScorePair(float("nan"), -1.0)
                    # Chaos mode arms the result-integrity gate: a corrupted
                    # score pair must surface as a typed error, never as a
                    # silently wrong answer.
                    _check_integrity(result, strategy)
                if guard.enabled:
                    guard.note_rows(len(result))
                    guard.check()
            finally:
                self.db.cost = outer_cost
                outer_cost.merge(query_cost)
            elapsed = time.perf_counter() - started
            root.add("rows_out", len(result))
            root.set("mode", mode)

            stats = ExecutionStats(
                strategy=strategy,
                wall_time=elapsed,
                rows=len(result),
                cost=query_cost.snapshot(),
                operators=dict(query_cost.operator_calls),
                trace=root if tracer.enabled else None,
                mode=mode,
            )
            if degraded_causes:
                stats.degraded = True
                stats.failures = list(degraded_causes)
                root.set("degraded", True)
                root.set("failure_cause", degraded_causes[-1])
                root.set("failures", list(degraded_causes))
        return QueryResult(result, stats, plan, executed_plan, original_schema)

    def _run_columnar(self, widened, tracer, partitions, degraded_causes):
        """The columnar attempt inside one `_run_once` call.

        Returns ``(relation, mode)`` — ``(None, "row")`` when the row path
        must take over: silently on :exc:`~repro.errors.ColumnarUnsupported`
        (capability miss), with the cause recorded in *degraded_causes* on a
        typed worker fault.  Guard trips propagate — their budgets span the
        query, so the row engine would only trip them again.
        """
        from .parallel import execute_parallel  # lazy: parallel imports columnar,
        # which imports this package's batchscore — a module-level import here
        # would run during ``repro.pexec.__init__`` and close the cycle.

        with tracer.span("engine.columnar") as span:
            span.set("requested_partitions", partitions)
            try:
                result, info = execute_parallel(
                    widened, self.db, self.aggregate, partitions,
                    strict=self.strict,
                )
            except ColumnarUnsupported as err:
                span.set("fallback", "unsupported")
                span.set("cause", str(err))
                return None, "row"
            except (TransientFault, DataCorruption) as err:
                span.set("fallback", "fault")
                span.set("cause", f"{type(err).__name__}: {err}")
                degraded_causes.append(
                    f"columnar: {type(err).__name__}: {err}"
                )
                return None, "row"
            for key, value in info.items():
                span.set(key, value)
            span.add("rows_out", len(result))
            return result, info["mode"]

    def explain_result(self, result: QueryResult, index: int = 0):
        """Provenance for one result tuple: each preference's contribution.

        Works on the widened relation the engine returns, so every attribute
        a preference reads is present; see :mod:`repro.pexec.provenance`.
        """
        from .provenance import explain_tuple

        preferences = [
            p.qualify(self.db.catalog) for p in result.plan.preferences()
        ]
        row = result.relation.rows[index]
        return explain_tuple(result.relation.schema, row, preferences, self.aggregate)

    def _dispatch(self, plan: PlanNode, strategy: str) -> PRelation:
        if strategy == "gbu":
            return execute_gbu(plan, self.db, self.aggregate)
        if strategy == "bu":
            return execute_bu(plan, self.db, self.aggregate)
        if strategy == "ftp":
            return execute_ftp(plan, self.db, self.aggregate)
        if strategy == "plugin-rma":
            return execute_plugin_rma(plan, self.db, self.aggregate)
        if strategy == "plugin-shared":
            return execute_plugin_shared(plan, self.db, self.aggregate)
        return evaluate_reference(plan, self.db.catalog, self.aggregate)
