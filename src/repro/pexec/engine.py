"""The preference-aware execution engine: strategy registry and entry point.

This is the component marked "Execution Engine" in the paper's architecture
(Fig. 6): it receives an extended query plan, runs the preference-aware
optimizer where the strategy calls for it, executes the plan with the chosen
strategy and returns a p-relation along with timing and simulated-I/O
statistics.

Strategies:

======================  ======================================================
``gbu`` (default)       Group Bottom-Up — optimized plan, operators batched
                        into native queries between prefer boundaries (Alg 2).
``bu``                  Bottom-Up — optimized plan, one query per operator.
``ftp``                 Filter-then-Prefer — non-preference part delegated
                        wholesale, prefers evaluated on its result (Alg 1).
``plugin-rma``          Plug-in baseline, one full query per preference.
``plugin-shared``       Plug-in baseline sharing one materialized base result.
``reference``           Direct interpretation of the extended algebra (oracle).
======================  ======================================================
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..core.aggregates import F_S, AggregateFunction
from ..core.prelation import PRelation
from ..engine.database import Database
from ..engine.iosim import CostModel
from ..errors import ExecutionError
from ..obs import current_tracer, use_tracer
from ..optimizer import OptimizerConfig, PreferenceOptimizer
from ..plan.analysis import (
    qualify_preferences,
    required_carry_attributes,
    widen_projections,
)
from ..plan.nodes import PlanNode
from .bottom_up import execute_bu
from .conform import conform
from .ftp import execute_ftp
from .group_bottom_up import execute_gbu
from .plugin import execute_plugin_rma, execute_plugin_shared
from .reference import evaluate_reference

#: Strategies that run on the plan produced by the preference-aware
#: optimizer; the others organize execution themselves.
_OPTIMIZED_STRATEGIES = frozenset({"bu", "gbu"})

STRATEGIES = ("gbu", "bu", "ftp", "plugin-rma", "plugin-shared", "reference")


@dataclass
class ExecutionStats:
    """Measurements for a single query execution.

    Every instance is private to one :meth:`ExecutionEngine.run` call: the
    engine executes each query against a fresh :class:`CostModel` (merged
    into the database-wide accumulator afterwards), so reusing one engine —
    or interleaving strategies — can never bleed counters between results.

    ``operators`` counts operator invocations for this query only;
    ``trace`` is the root :class:`repro.obs.Span` when the query ran under
    a collecting tracer, else ``None``.
    """

    strategy: str
    wall_time: float
    rows: int
    cost: dict[str, int] = field(default_factory=dict)
    operators: dict[str, int] = field(default_factory=dict)
    trace: object | None = None

    def summary(self) -> str:
        return (
            f"{self.strategy}: {self.wall_time * 1e3:.2f} ms, {self.rows} rows, "
            f"{self.cost.get('total_io', 0)} simulated page I/Os"
        )


@dataclass
class QueryResult:
    """Outcome of one query execution.

    ``relation`` carries the *widened* schema (user attributes plus the
    primary keys and preference attributes the engine projects through the
    plan); :meth:`presented` trims it back to the attributes the query asked
    for.
    """

    relation: PRelation
    stats: ExecutionStats
    plan: PlanNode
    executed_plan: PlanNode
    plan_schema: object = None

    def presented(self) -> PRelation:
        from ..core.algebra import project

        target = [c.qualified_name for c in self.plan_schema.columns]
        return project(self.relation, target)


class ExecutionEngine:
    """Runs extended query plans against a :class:`Database`."""

    def __init__(
        self,
        db: Database,
        aggregate: AggregateFunction = F_S,
        optimizer_config: OptimizerConfig | None = None,
        tracer=None,
        *,
        strict: bool = False,
    ):
        self.db = db
        self.aggregate = aggregate
        #: When *strict*, every optimizer rule fire is audited against the
        #: static plan verifier and an invariant-breaking rewrite raises
        #: :class:`~repro.errors.RewriteViolation` instead of executing.
        self.strict = strict
        self.optimizer = PreferenceOptimizer(
            db.catalog, optimizer_config, strict=strict, default_aggregate=aggregate
        )
        #: Default tracer for every :meth:`run`; ``None`` means "use the
        #: ambient tracer" (a zero-cost no-op unless one is installed).
        self.tracer = tracer

    def prepare(self, plan: PlanNode) -> PlanNode:
        """Widen the plan's projections (the parser step of §VI).

        Every attribute a prefer operator uses, every join attribute and
        every base-relation primary key is carried through projections so
        score relations stay keyable.
        """
        plan = qualify_preferences(plan, self.db.catalog)
        carry = required_carry_attributes(plan, self.db.catalog)
        return widen_projections(plan, carry, self.db.catalog)

    def run(self, plan: PlanNode, strategy: str = "gbu", tracer=None) -> QueryResult:
        """Execute *plan* with *strategy*, returning result and statistics.

        *tracer* (or the engine's default, or the ambient tracer) receives a
        ``query`` span with ``prepare`` / ``optimize`` / ``execute:<s>`` /
        ``conform`` phases; every operator below reports into it.  Costs are
        accumulated in a per-query :class:`CostModel` and merged back into
        ``db.cost``, so the returned stats are isolated per invocation.
        """
        if strategy not in STRATEGIES:
            raise ExecutionError(
                f"unknown strategy {strategy!r}; choose one of {', '.join(STRATEGIES)}"
            )
        if tracer is None:
            tracer = self.tracer if self.tracer is not None else current_tracer()
        with use_tracer(tracer), tracer.span("query", label=strategy) as root:
            root.set("strategy", strategy)
            original_schema = plan.schema(self.db.catalog)
            with tracer.span("prepare"):
                widened = self.prepare(plan)
            target_schema = widened.schema(self.db.catalog)

            outer_cost = self.db.cost
            query_cost = CostModel()
            self.db.cost = query_cost
            started = time.perf_counter()
            try:
                if strategy in _OPTIMIZED_STRATEGIES:
                    with tracer.span("optimize"):
                        executed_plan = self.optimizer.optimize(widened)
                else:
                    executed_plan = widened
                with tracer.span(f"execute:{strategy}") as execute_span:
                    result = self._dispatch(executed_plan, strategy)
                    execute_span.add("rows_out", len(result))
                with tracer.span("conform"):
                    result = conform(result, target_schema)
            finally:
                self.db.cost = outer_cost
                outer_cost.merge(query_cost)
            elapsed = time.perf_counter() - started
            root.add("rows_out", len(result))

            stats = ExecutionStats(
                strategy=strategy,
                wall_time=elapsed,
                rows=len(result),
                cost=query_cost.snapshot(),
                operators=dict(query_cost.operator_calls),
                trace=root if tracer.enabled else None,
            )
        return QueryResult(result, stats, plan, executed_plan, original_schema)

    def explain_result(self, result: QueryResult, index: int = 0):
        """Provenance for one result tuple: each preference's contribution.

        Works on the widened relation the engine returns, so every attribute
        a preference reads is present; see :mod:`repro.pexec.provenance`.
        """
        from .provenance import explain_tuple

        preferences = [
            p.qualify(self.db.catalog) for p in result.plan.preferences()
        ]
        row = result.relation.rows[index]
        return explain_tuple(result.relation.schema, row, preferences, self.aggregate)

    def _dispatch(self, plan: PlanNode, strategy: str) -> PRelation:
        if strategy == "gbu":
            return execute_gbu(plan, self.db, self.aggregate)
        if strategy == "bu":
            return execute_bu(plan, self.db, self.aggregate)
        if strategy == "ftp":
            return execute_ftp(plan, self.db, self.aggregate)
        if strategy == "plugin-rma":
            return execute_plugin_rma(plan, self.db, self.aggregate)
        if strategy == "plugin-shared":
            return execute_plugin_shared(plan, self.db, self.aggregate)
        return evaluate_reference(plan, self.db.catalog, self.aggregate)
