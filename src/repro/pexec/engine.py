"""The preference-aware execution engine: strategy registry and entry point.

This is the component marked "Execution Engine" in the paper's architecture
(Fig. 6): it receives an extended query plan, runs the preference-aware
optimizer where the strategy calls for it, executes the plan with the chosen
strategy and returns a p-relation along with timing and simulated-I/O
statistics.

Strategies:

======================  ======================================================
``gbu`` (default)       Group Bottom-Up — optimized plan, operators batched
                        into native queries between prefer boundaries (Alg 2).
``bu``                  Bottom-Up — optimized plan, one query per operator.
``ftp``                 Filter-then-Prefer — non-preference part delegated
                        wholesale, prefers evaluated on its result (Alg 1).
``plugin-rma``          Plug-in baseline, one full query per preference.
``plugin-shared``       Plug-in baseline sharing one materialized base result.
``reference``           Direct interpretation of the extended algebra (oracle).
======================  ======================================================
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..core.aggregates import F_S, AggregateFunction
from ..core.prelation import PRelation
from ..engine.database import Database
from ..errors import ExecutionError
from ..optimizer import OptimizerConfig, PreferenceOptimizer
from ..plan.analysis import (
    qualify_preferences,
    required_carry_attributes,
    widen_projections,
)
from ..plan.nodes import PlanNode
from .bottom_up import execute_bu
from .conform import conform
from .ftp import execute_ftp
from .group_bottom_up import execute_gbu
from .plugin import execute_plugin_rma, execute_plugin_shared
from .reference import evaluate_reference

#: Strategies that run on the plan produced by the preference-aware
#: optimizer; the others organize execution themselves.
_OPTIMIZED_STRATEGIES = frozenset({"bu", "gbu"})

STRATEGIES = ("gbu", "bu", "ftp", "plugin-rma", "plugin-shared", "reference")


@dataclass
class ExecutionStats:
    """Measurements for a single query execution."""

    strategy: str
    wall_time: float
    rows: int
    cost: dict[str, int] = field(default_factory=dict)

    def summary(self) -> str:
        return (
            f"{self.strategy}: {self.wall_time * 1e3:.2f} ms, {self.rows} rows, "
            f"{self.cost.get('total_io', 0)} simulated page I/Os"
        )


@dataclass
class QueryResult:
    """Outcome of one query execution.

    ``relation`` carries the *widened* schema (user attributes plus the
    primary keys and preference attributes the engine projects through the
    plan); :meth:`presented` trims it back to the attributes the query asked
    for.
    """

    relation: PRelation
    stats: ExecutionStats
    plan: PlanNode
    executed_plan: PlanNode
    plan_schema: object = None

    def presented(self) -> PRelation:
        from ..core.algebra import project

        target = [c.qualified_name for c in self.plan_schema.columns]
        return project(self.relation, target)


class ExecutionEngine:
    """Runs extended query plans against a :class:`Database`."""

    def __init__(
        self,
        db: Database,
        aggregate: AggregateFunction = F_S,
        optimizer_config: OptimizerConfig | None = None,
    ):
        self.db = db
        self.aggregate = aggregate
        self.optimizer = PreferenceOptimizer(db.catalog, optimizer_config)

    def prepare(self, plan: PlanNode) -> PlanNode:
        """Widen the plan's projections (the parser step of §VI).

        Every attribute a prefer operator uses, every join attribute and
        every base-relation primary key is carried through projections so
        score relations stay keyable.
        """
        plan = qualify_preferences(plan, self.db.catalog)
        carry = required_carry_attributes(plan, self.db.catalog)
        return widen_projections(plan, carry, self.db.catalog)

    def run(self, plan: PlanNode, strategy: str = "gbu") -> QueryResult:
        """Execute *plan* with *strategy*, returning result and statistics."""
        if strategy not in STRATEGIES:
            raise ExecutionError(
                f"unknown strategy {strategy!r}; choose one of {', '.join(STRATEGIES)}"
            )
        original_schema = plan.schema(self.db.catalog)
        widened = self.prepare(plan)
        target_schema = widened.schema(self.db.catalog)

        cost_before = self.db.cost.snapshot()
        started = time.perf_counter()
        if strategy in _OPTIMIZED_STRATEGIES:
            executed_plan = self.optimizer.optimize(widened)
        else:
            executed_plan = widened
        result = self._dispatch(executed_plan, strategy)
        result = conform(result, target_schema)
        elapsed = time.perf_counter() - started
        cost_after = self.db.cost.snapshot()

        stats = ExecutionStats(
            strategy=strategy,
            wall_time=elapsed,
            rows=len(result),
            cost={k: cost_after[k] - cost_before.get(k, 0) for k in cost_after},
        )
        return QueryResult(result, stats, plan, executed_plan, original_schema)

    def explain_result(self, result: QueryResult, index: int = 0):
        """Provenance for one result tuple: each preference's contribution.

        Works on the widened relation the engine returns, so every attribute
        a preference reads is present; see :mod:`repro.pexec.provenance`.
        """
        from .provenance import explain_tuple

        preferences = [
            p.qualify(self.db.catalog) for p in result.plan.preferences()
        ]
        row = result.relation.rows[index]
        return explain_tuple(result.relation.schema, row, preferences, self.aggregate)

    def _dispatch(self, plan: PlanNode, strategy: str) -> PRelation:
        if strategy == "gbu":
            return execute_gbu(plan, self.db, self.aggregate)
        if strategy == "bu":
            return execute_bu(plan, self.db, self.aggregate)
        if strategy == "ftp":
            return execute_ftp(plan, self.db, self.aggregate)
        if strategy == "plugin-rma":
            return execute_plugin_rma(plan, self.db, self.aggregate)
        if strategy == "plugin-shared":
            return execute_plugin_shared(plan, self.db, self.aggregate)
        return evaluate_reference(plan, self.db.catalog, self.aggregate)
