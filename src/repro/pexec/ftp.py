"""The Filter-then-Prefer (FtP) execution strategy (Algorithm 1, §VI-B).

FtP separates the non-preference query part from preference evaluation: the
plan with every prefer operator removed (``Q_NP``) is delegated wholesale to
the native engine; the prefer operators are then evaluated directly on its
result ``R_NP`` — possible because the query parser projects every attribute
any prefer operator needs.  Join/set operators between score relations reduce
to folding all prefer operators over ``R_NP`` (F is associative and
commutative), which is exactly what this implementation does.

FtP applies per *region*: a maximal select/project/join subtree with embedded
prefer operators.  Filtering operators (top-k, score/confidence selections)
and set operations form region boundaries and are evaluated on p-relations —
so arbitrarily shaped plans (e.g. the paper's Q3) still execute, each SPJ
region going through the FtP fast path.
"""

from __future__ import annotations

from typing import Callable

from ..core import algebra
from ..core.aggregates import F_S, AggregateFunction
from ..core.prefer import prefer as apply_prefer
from ..core.prelation import PRelation
from ..engine.database import Database
from ..errors import ExecutionError
from ..filtering import topk as topk_filter
from ..obs import current_tracer
from ..resilience import current_faults, current_guard
from ..plan.analysis import strip_prefers
from .batchscore import batch_scoring_enabled, prefer_group
from .conform import conform
from ..plan.nodes import (
    Difference,
    Intersect,
    Join,
    LeftJoin,
    Materialized,
    PlanNode,
    Prefer,
    Project,
    Relation,
    Select,
    TopK,
    Union,
)

RegionFn = Callable[[PlanNode], PRelation]


def execute_ftp(
    plan: PlanNode, db: Database, aggregate: AggregateFunction = F_S
) -> PRelation:
    """Execute *plan* (already widened) with the FtP strategy."""
    return RegionEvaluator(db, aggregate, _make_ftp_region(db, aggregate)).evaluate(plan)


def is_spj_region(plan: PlanNode) -> bool:
    """True when the whole subtree is select/project/join/prefer over leaves.

    Such a subtree is what Algorithm 1 calls the query: its non-preference
    part is one native query.  Score-referencing selections and top-k depend
    on preference output and break the region.
    """
    for node in plan.walk():
        if isinstance(node, (Relation, Materialized, Project, Join, LeftJoin, Prefer)):
            continue
        if isinstance(node, Select) and not node.condition.references_score():
            continue
        return False
    return True


class RegionEvaluator:
    """Shared recursive skeleton for FtP and the plug-in baselines.

    SPJ regions go through ``region_fn``; everything else (filters, set
    operations) is interpreted over p-relations with the extended algebra.
    """

    def __init__(
        self,
        db: Database,
        aggregate: AggregateFunction,
        region_fn: RegionFn,
        site: str = "strategy.ftp",
    ):
        self.db = db
        self.aggregate = aggregate
        self.region_fn = region_fn
        #: Fault-injection site visited at every operator boundary; the
        #: plug-in baselines share this skeleton under ``strategy.plugin``.
        self.site = site
        self.guard = current_guard()
        self.faults = current_faults()

    def evaluate(self, plan: PlanNode) -> PRelation:
        if self.guard.enabled:
            self.guard.check()
        if self.faults.enabled:
            self.faults.at(self.site)
        tracer = current_tracer()
        if not tracer.enabled:
            return self._evaluate(plan)
        name = "region" if is_spj_region(plan) else plan.kind
        with tracer.span(f"ftp.{name}", label=plan.label()) as span:
            result = self._evaluate(plan)
            span.add("rows_out", len(result))
            return result

    def _evaluate(self, plan: PlanNode) -> PRelation:
        if is_spj_region(plan):
            return self.region_fn(plan)
        if isinstance(plan, Select):
            return algebra.select(self.evaluate(plan.child), plan.condition)
        if isinstance(plan, Project):
            return algebra.project(self.evaluate(plan.child), plan.attrs)
        if isinstance(plan, Join):
            return algebra.join(
                self.evaluate(plan.left),
                self.evaluate(plan.right),
                plan.condition,
                self.aggregate,
            )
        if isinstance(plan, LeftJoin):
            return algebra.left_join(
                self.evaluate(plan.left),
                self.evaluate(plan.right),
                plan.condition,
                self.aggregate,
            )
        if isinstance(plan, Union):
            return algebra.union(
                self.evaluate(plan.left), self.evaluate(plan.right), self.aggregate
            )
        if isinstance(plan, Intersect):
            return algebra.intersect(
                self.evaluate(plan.left), self.evaluate(plan.right), self.aggregate
            )
        if isinstance(plan, Difference):
            return algebra.difference(
                self.evaluate(plan.left), self.evaluate(plan.right), self.aggregate
            )
        if isinstance(plan, Prefer):
            return apply_prefer(
                self.evaluate(plan.child),
                plan.preference,
                plan.aggregate or self.aggregate,
            )
        if isinstance(plan, TopK):
            return topk_filter(self.evaluate(plan.child), plan.k, plan.by)
        # Relation/Materialized leaves are SPJ regions, caught above.
        raise ExecutionError(f"FtP cannot execute node {plan!r}")  # noqa: LN103


def _make_ftp_region(db: Database, aggregate: AggregateFunction) -> RegionFn:
    def run_region(plan: PlanNode) -> PRelation:
        tracer = current_tracer()
        non_preference = strip_prefers(plan)
        with tracer.span("ftp.delegate") as span:
            schema, rows = db.execute(non_preference, optimize=True)
            span.add("rows_out", len(rows))
        db.cost.materialize(len(rows))
        result = conform(
            PRelation(schema, rows), non_preference.schema(db.catalog)
        )
        # preferences() is pre-order (outermost first); fold innermost-first
        # so the aggregate combines pairs in the same order as the written
        # plan — Property 4.3 makes the orders algebraically equivalent, but
        # the floating-point folds differ by ULPs and filtering cuts exactly.
        preferences = list(reversed(plan.preferences()))
        if not preferences:
            return result
        for _ in preferences:
            db.cost.count_operator("prefer")
        if batch_scoring_enabled():
            # Fused group evaluation: one pass over the delegated result,
            # dispatch index + memoized distinct-value scoring underneath.
            db.cost.scan(len(rows))
            with tracer.span("ftp.prefer", label=f"batch |λ|={len(preferences)}") as span:
                result = prefer_group(result, preferences, aggregate)
                if tracer.enabled:
                    span.add(
                        "scores",
                        sum(1 for p in result.pairs if not p.is_default),
                    )
        else:
            # Unfused reference path: one pass per preference (scores list
            # still copied once per group, see core.prefer.prefer_seq).
            for preference in preferences:  # noqa: LN201 — reference fold
                db.cost.scan(len(rows))
                with tracer.span("ftp.prefer", label=preference.name) as span:
                    result = apply_prefer(result, preference, aggregate)
                    if tracer.enabled:
                        span.add(
                            "scores",
                            sum(1 for p in result.pairs if not p.is_default),
                        )
        return result

    return run_region
