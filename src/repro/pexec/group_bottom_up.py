"""The Group Bottom-Up (GBU) execution strategy (Algorithm 2, §VI-B).

GBU performs the same postorder traversal as BU but **defers** standard
operators: contiguous selects/projects/joins/set-operations are accumulated
(the paper's DAG ``G``) and, when a prefer operator — or the root — forces
evaluation, the whole accumulated block is combined into a *single* query
delegated to the native engine, which optimizes it with its own machinery.
Intermediates produced by prefer operators re-enter blocks as materialized
leaves, so the only materializations are the unavoidable ones at prefer
boundaries.
"""

from __future__ import annotations

from ..core.aggregates import F_S, AggregateFunction
from ..core.prelation import PRelation
from ..engine.database import Database
from ..engine.native_optimizer import optimize_native
from ..engine.physical import execute_native
from ..errors import ExecutionError
from ..obs import current_tracer
from ..resilience import current_faults, current_guard
from ..plan.nodes import (
    Difference,
    Intersect,
    Join,
    LeftJoin,
    Materialized,
    PlanNode,
    Prefer,
    Project,
    Relation,
    Select,
    TopK,
    Union,
)
from . import batchscore, scorerel
from .batchscore import batch_scoring_enabled
from .scorerel import Intermediate


def execute_gbu(
    plan: PlanNode, db: Database, aggregate: AggregateFunction = F_S
) -> PRelation:
    """Execute *plan* (already optimized and widened) with the GBU strategy."""
    evaluator = _Evaluator(db, aggregate)
    deferred = evaluator.evaluate(plan)
    return evaluator.force(deferred).to_prelation()


class _Evaluator:
    """Recursive GBU evaluation.

    :meth:`evaluate` returns either a *deferred* plan — a subtree of standard
    operators whose leaves are base relations or materialized intermediates —
    or an :class:`Intermediate` (after a forcing operator).  ``embedded``
    maps each materialized leaf injected into a deferred subtree back to the
    intermediate it wraps, so the block's score relation can be derived after
    native execution.
    """

    def __init__(self, db: Database, aggregate: AggregateFunction):
        self.db = db
        self.aggregate = aggregate
        self.embedded: dict[int, Intermediate] = {}
        self.tracer = current_tracer()
        self.guard = current_guard()
        self.faults = current_faults()

    # -- traversal -----------------------------------------------------------

    def evaluate(self, plan: PlanNode) -> "PlanNode | Intermediate":
        if self.guard.enabled:
            self.guard.check()
        if self.faults.enabled:
            self.faults.at("strategy.gbu")
        tracer = self.tracer
        if not tracer.enabled:
            return self._evaluate(plan)
        with tracer.span(f"gbu.{plan.kind}", label=plan.label()) as span:
            result = self._evaluate(plan)
            if isinstance(result, Intermediate):
                if result.rows is not None:
                    span.add("rows_out", len(result.rows))
                span.add("scores", len(result.scores))
            else:
                # Still accumulating into the deferred block (the paper's G).
                span.set("deferred", True)
            return result

    def _evaluate(self, plan: PlanNode) -> "PlanNode | Intermediate":
        if isinstance(plan, (Relation, Materialized)):
            return plan

        if isinstance(plan, Select):
            if plan.condition.references_score():
                child = self.force(self.evaluate(plan.child))
                return scorerel.apply_score_select(child, plan.condition)
            return self._defer_unary(plan)

        if isinstance(plan, Project):
            return self._defer_unary(plan)

        if isinstance(plan, (Join, LeftJoin, Union, Intersect, Difference)):
            left = self._as_deferred(self.evaluate(plan.children()[0]))
            right = self._as_deferred(self.evaluate(plan.children()[1]))
            return plan.with_children([left, right])

        if isinstance(plan, Prefer):
            return self._prefer(plan)

        if isinstance(plan, TopK):
            child = self.force(self.evaluate(plan.child))
            return scorerel.apply_topk(child, plan.k, plan.by)

        raise ExecutionError(f"GBU cannot execute node {plan!r}")

    def _prefer(self, plan: Prefer) -> Intermediate:
        """Evaluate a prefer operator without copying its input.

        When the child is a *pure* block (standard operators over base
        relations, no embedded intermediates) — the common shape after the
        optimizer pushed the prefer down — the conditional part runs through
        the native engine as ``σ_φ(block)``, so selection pushdown and index
        access paths apply, and only the score relation is materialized.
        The block itself stays deferred (lazy rows), exactly like the paper's
        prototype where prefer leaves R unchanged and updates R_P.
        """
        aggregate = plan.aggregate or self.aggregate
        preference = plan.preference

        chain: list[Prefer] = [plan]
        if batch_scoring_enabled():
            node = plan.child
            while isinstance(node, Prefer) and (
                node.aggregate or self.aggregate
            ) is aggregate:
                chain.append(node)
                node = node.child
            chain.reverse()
        for _ in chain:
            self.db.cost.count_operator("prefer")
        if len(chain) > 1:
            return self._prefer_fused(chain, aggregate)

        child = self.evaluate(plan.child)
        block: PlanNode | None = None
        base_scores: dict = {}
        if isinstance(child, Intermediate):
            if child.rows is None:
                block = child.source  # lazy: a prefer chain over one block
                base_scores = child.scores
        elif not self._has_embedded(child):
            block = child

        if block is None:
            # Impure input (filters/set-ops below): force and scan.
            forced = self.force(child)
            self.db.cost.scan(len(forced.rows))
            result = scorerel.apply_prefer(forced, preference, aggregate)
            self.db.cost.materialize(len(result.scores))
            return result

        conditional = Select(block, preference.condition)
        optimized = optimize_native(conditional, self.db.catalog)
        result_schema, qualifying = execute_native(
            optimized, self.db.catalog, self.db.cost
        )
        schema = block.schema(self.db.catalog)
        key_attrs = self._block_key_attrs(block, schema)
        scores = scorerel.prefer_scores_from_rows(
            result_schema, list(qualifying), key_attrs, preference, aggregate, base_scores
        )
        self.db.cost.materialize(len(scores))
        return Intermediate(schema, None, key_attrs, scores, source=block)

    def _prefer_fused(self, chain: "list[Prefer]", aggregate: AggregateFunction) -> Intermediate:
        """Evaluate a run of adjacent prefer operators as one fused pass.

        Instead of one native ``σ_φᵢ(block)`` per preference, the block runs
        **once** and the whole run is scored through the dispatch index
        (:mod:`repro.core.prefgroup`).  The block result is kept on the
        intermediate so a later :meth:`force` is free, while ``source`` still
        lets :meth:`_as_deferred` embed the block into a larger delegated
        query.
        """
        innermost = chain[0]
        preferences = [node.preference for node in chain]
        child = self.evaluate(innermost.child)

        block: PlanNode | None = None
        base_scores: dict = {}
        if isinstance(child, Intermediate):
            if child.rows is None:
                block = child.source
                base_scores = child.scores
        elif not self._has_embedded(child):
            block = child

        if block is None:
            forced = self.force(child)
            self.db.cost.scan(len(forced.rows))
            result = batchscore.apply_prefer_group(forced, preferences, aggregate)
            self.db.cost.materialize(len(result.scores))
            return result

        if isinstance(block, Relation):
            # Base-relation chain (the common shape after prefer pushdown):
            # read the table directly, no per-query native machinery needed.
            result_schema = block.schema(self.db.catalog)
            rows = list(self.db.table(block.name).rows)
            self.db.cost.scan(len(rows))
        else:
            optimized = optimize_native(block, self.db.catalog)
            result_schema, rows = execute_native(
                optimized, self.db.catalog, self.db.cost
            )
            rows = list(rows)
        self.db.cost.materialize(len(rows))
        key_attrs = self._block_key_attrs(block, block.schema(self.db.catalog))
        scores = batchscore.group_scores_from_rows(
            result_schema, rows, key_attrs, preferences, aggregate, base_scores
        )
        self.db.cost.materialize(len(scores))
        return Intermediate(result_schema, rows, key_attrs, scores, source=block)

    def _block_key_attrs(self, block: PlanNode, schema) -> list[str]:
        """Qualified primary keys of the block's base relations (its R_P key)."""
        key_attrs: list[str] = []
        for node in block.walk():
            if isinstance(node, Relation):
                relation_schema = node.schema(self.db.catalog)
                for attr in relation_schema.primary_key:
                    qualified = relation_schema.column(attr).qualified_name
                    if qualified not in key_attrs:
                        key_attrs.append(qualified)
        if not key_attrs or not all(schema.has(a) for a in key_attrs):
            return [c.qualified_name for c in schema.columns]
        return key_attrs

    def _has_embedded(self, block: PlanNode) -> bool:
        return any(id(node) in self.embedded for node in block.walk())

    def _defer_unary(self, plan: PlanNode) -> PlanNode:
        child = self._as_deferred(self.evaluate(plan.children()[0]))
        return plan.with_children([child])

    def _as_deferred(self, value: "PlanNode | Intermediate") -> PlanNode:
        if isinstance(value, Intermediate):
            if value.source is not None:
                # The rows are exactly a base relation's: keep the relation
                # inside the delegated query (index access paths survive,
                # nothing is copied) and carry only the score relation.
                leaf = value.source
            else:
                leaf = Materialized(value.schema, value.rows)
            self.embedded[id(leaf)] = value
            return leaf
        return value

    # -- forcing ---------------------------------------------------------------

    def force(self, value: "PlanNode | Intermediate") -> Intermediate:
        """Run an accumulated block as one native query and derive its R_P."""
        if isinstance(value, Intermediate):
            if value.rows is None:
                # Lazy (prefer over a pure block): execute the block now.
                with self.tracer.span("gbu.force", label="lazy block") as span:
                    optimized = optimize_native(value.source, self.db.catalog)
                    schema, rows = execute_native(
                        optimized, self.db.catalog, self.db.cost
                    )
                    self.db.cost.materialize(len(rows))
                    span.add("rows_out", len(rows))
                    span.add("scores", len(value.scores))
                return Intermediate(schema, list(rows), value.key_attrs, value.scores)
            return value
        with self.tracer.span("gbu.force", label="block") as span:
            result = self._force_block(value)
            span.add("rows_out", len(result.rows))
            span.add("scores", len(result.scores))
        return result

    def _force_block(self, block: PlanNode) -> Intermediate:
        embedded: list[Intermediate] = []
        extra_keys: list[str] = []
        for node in block.walk():
            if id(node) in self.embedded:
                # Consume the entry (Alg. 2 removes executed operators from
                # G).  Crucial for correctness, not just hygiene: once the
                # forced tree is garbage-collected a future node could reuse
                # the same id() and collide with a stale entry.
                embedded.append(self.embedded.pop(id(node)))
            elif isinstance(node, Relation):
                schema = node.schema(self.db.catalog)
                for attr in schema.primary_key:
                    extra_keys.append(schema.column(attr).qualified_name)
        optimized = optimize_native(block, self.db.catalog)
        schema, rows = execute_native(optimized, self.db.catalog, self.db.cost)
        self.db.cost.materialize(len(rows))
        return scorerel.merge_embedded(
            schema, rows, embedded, extra_keys, self.aggregate
        )
