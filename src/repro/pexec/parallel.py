"""Partition-parallel execution of columnar plan fragments.

The driver splits one base-table (or materialized) leaf of a plan into
horizontal row ranges and evaluates the plan fragment once per partition on
a ``multiprocessing`` worker pool, then merges the per-partition score
relations.  Correctness rests on two facts the library already checks by
machine:

* every operator on the path from the partitioned leaf to the fragment root
  (select / project / prefer / join / the *left* side of a left join)
  computes each output row's ``⟨score, conf⟩`` pair from its input rows
  independently of the rest of the relation, so the fragment distributes
  over a disjoint horizontal split — the partition results concatenate into
  exactly the serial result (the degenerate, disjoint-key case of a score-
  relation merge);
* the aggregate ``F`` is law-checked associative/commutative/identity
  (:func:`~repro.core.prefgroup.ensure_fold_safe` runs before any split),
  so pair folds inside each worker combine in the same order as the serial
  fold and :func:`merge_score_maps` may fold overlapping keys in any
  partition order.

Filtering suffixes need care: workers pre-apply the *innermost* run of
score-filters and the first ``TopK`` as a local candidate cut (exact,
because top-k's deterministic total order makes local-top-k ∘ global-top-k
= global-top-k), and the driver re-applies the suffix globally on the
concatenated candidates.  A selection *above* a TopK is never pushed into
workers — it would filter candidates before the global cut.

Workers are forked (copy-on-write catalog and column caches; the pool is
keyed by ``(id(db), db.version)`` and retired when the database mutates).
Materialized leaves travel through shared memory (:mod:`repro.columnar.shm`)
instead of the task pipe.  Worker failures come back as typed
:exc:`~repro.errors.TransientFault` / :exc:`~repro.errors.DataCorruption`
values (never bare pickled tracebacks); the ambient query guard is polled
between partitions so cancellation and deadlines keep working, and the
fault-injection site ``pexec.partition`` fires *inside* each worker.
"""

from __future__ import annotations

import atexit
import math
import multiprocessing
import os
import weakref
from dataclasses import dataclass

from ..columnar import audited_push_selections, evaluate_columnar
from ..columnar import shm
from ..core.aggregates import F_S, AggregateFunction
from ..core.prefgroup import ensure_fold_safe
from ..core.prelation import PRelation
from ..core.scorepair import ScorePair
from ..core import algebra
from ..errors import (
    DataCorruption,
    ExecutionError,
    ReproError,
    TransientFault,
)
from ..filtering import topk
from ..obs import current_tracer
from ..plan.analysis import node_at_path, replace_at_path
from ..plan.nodes import (
    Join,
    LeftJoin,
    Materialized,
    PlanNode,
    Prefer,
    Project,
    Relation,
    Select,
    TopK,
)
from ..resilience import current_faults, current_guard, use_faults, use_guard
from ..resilience.faults import FaultPlan
from .batchscore import batch_scoring_enabled, use_batch_scoring

#: Fault-injection and trace-span site for one partition's execution.
PARTITION_SITE = "pexec.partition"

#: Guard poll interval while waiting on a worker result (seconds).
_POLL_INTERVAL = 0.05


# ---------------------------------------------------------------------------
# Partition planning
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PartitionPlan:
    """How to split one plan: worker fragment, leaf location, driver merge.

    ``worker_plan`` is the fragment each worker evaluates (region plus the
    worker-side filtering suffix); ``leaf_path`` locates the partitioned
    leaf inside it by child indexes; ``merge_nodes`` are the suffix
    operators the driver re-applies globally, innermost first.
    """

    worker_plan: PlanNode
    leaf_path: tuple[int, ...]
    merge_nodes: tuple[PlanNode, ...]
    leaf_rows: int


def plan_partitions(plan: PlanNode, catalog, *, strict: bool = False) -> PartitionPlan | None:
    """Split *plan* for partition-parallel execution, or ``None``.

    ``None`` means "not partitionable" — a plain capability miss (the
    caller degrades to serial columnar execution, which is always exact).
    The selection pushdown performed on the region goes through the same
    audit discipline as every other rewrite (*strict* raises
    :class:`~repro.errors.RewriteViolation` on an audit failure).
    """
    # 1. Peel the filtering suffix off the root: TopK nodes and selections
    #    over score/conf.  Everything below is the region.
    suffix: list[PlanNode] = []
    region = plan
    while True:
        if isinstance(region, TopK):
            suffix.append(region)
            region = region.child
        elif isinstance(region, Select) and region.condition.references_score():
            suffix.append(region)
            region = region.child
        else:
            break

    # 2. Workers pre-apply the innermost run of score-selects and the first
    #    TopK (local candidate cut); the rest merges globally.  The cut TopK
    #    appears in BOTH lists: locally as a prefilter, globally as the cut.
    inner_first = list(reversed(suffix))
    worker_nodes: list[PlanNode] = []
    position = 0
    while position < len(inner_first) and isinstance(inner_first[position], Select):
        worker_nodes.append(inner_first[position])
        position += 1
    if position < len(inner_first):
        worker_nodes.append(inner_first[position])  # the innermost TopK
    merge_nodes = tuple(inner_first[position:])

    # 3. Sink score-free selections now, on the driver's copy of the region:
    #    the workers' own pushdown would redo the identical (exact) rewrite
    #    per partition, and hoisting below wants filters already inside the
    #    subtrees it materializes.
    region = audited_push_selections(region, catalog, strict=strict)

    # 4. Find candidate leaves reachable through row-local operators only.
    candidates = _partitionable_leaves(region, ())
    if not candidates:
        return None
    best_path, best_leaf = max(
        candidates, key=lambda item: _leaf_rows(item[1], catalog)
    )
    leaf_rows = _leaf_rows(best_leaf, catalog)

    worker_plan = region
    for node in worker_nodes:
        worker_plan = node.with_children([worker_plan])
    leaf_path = (0,) * len(worker_nodes) + best_path
    return PartitionPlan(worker_plan, leaf_path, merge_nodes, leaf_rows)


def _partitionable_leaves(
    node: PlanNode, path: tuple[int, ...]
) -> list[tuple[tuple[int, ...], PlanNode]]:
    """Leaves whose root path crosses only row-local operators.

    Join leaves may sit on either side (the other side is replicated to
    every worker); a LeftJoin only tolerates splitting its *left* input —
    padding decisions read the entire right side.
    """
    if isinstance(node, (Relation, Materialized)):
        return [(path, node)]
    if isinstance(node, (Select, Project, Prefer)):
        return _partitionable_leaves(node.children()[0], path + (0,))
    if isinstance(node, Join):
        return _partitionable_leaves(node.left, path + (0,)) + _partitionable_leaves(
            node.right, path + (1,)
        )
    if isinstance(node, LeftJoin):
        return _partitionable_leaves(node.left, path + (0,))
    return []


def _leaf_rows(leaf: PlanNode, catalog) -> int:
    if isinstance(leaf, Materialized):
        return len(leaf.rows)
    if catalog.has_table(leaf.name):
        return len(catalog.table(leaf.name))
    return 0


def _contains_prefer(node: PlanNode) -> bool:
    if isinstance(node, Prefer):
        return True
    return any(_contains_prefer(child) for child in node.children())


def hoist_shared_subtrees(split: PartitionPlan, db, aggregate) -> PartitionPlan:
    """Evaluate off-path sibling subtrees once, in the driver.

    Every worker receives the same fragment modulo its leaf slice, so any
    subtree *not* on the root→leaf path would be recomputed identically
    ``partitions`` times.  Sibling subtrees that contain real operators
    (bare base-relation leaves are already copy-on-write free in forked
    workers) and no ``Prefer`` are evaluated here once and substituted as
    :class:`Materialized` leaves.  Exact: the substitution replays the same
    columnar evaluator on the same subtree, and a Prefer-free subtree
    carries only identity score pairs — precisely what a Materialized leaf
    reproduces (``F``'s identity law is part of ``ensure_fold_safe``).
    """
    worker_plan = split.worker_plan
    for depth in range(len(split.leaf_path)):
        parent = node_at_path(worker_plan, split.leaf_path[:depth])
        children = parent.children()
        if len(children) < 2:
            continue
        for position, child in enumerate(children):
            if position == split.leaf_path[depth]:
                continue
            if isinstance(child, (Relation, Materialized)) or _contains_prefer(child):
                continue
            relation = evaluate_columnar(child, db, aggregate, pushdown=False)
            worker_plan = replace_at_path(
                worker_plan,
                split.leaf_path[:depth] + (position,),
                Materialized(relation.schema, relation.rows, name=f"hoist@{depth}"),
            )
    return PartitionPlan(
        worker_plan, split.leaf_path, split.merge_nodes, split.leaf_rows
    )


def partition_ranges(total: int, parts: int) -> list[tuple[int, int]]:
    """Split ``range(total)`` into *parts* contiguous, near-even ranges."""
    parts = max(1, min(parts, total)) if total else 1
    size, extra = divmod(total, parts)
    ranges = []
    low = 0
    for index in range(parts):
        high = low + size + (1 if index < extra else 0)
        ranges.append((low, high))
        low = high
    return ranges


# ---------------------------------------------------------------------------
# Score-relation merging
# ---------------------------------------------------------------------------


def merge_score_maps(
    maps, aggregate: AggregateFunction
) -> dict:
    """Fold per-partition sparse score maps ``{key: pair}`` into one.

    Overlapping keys combine through ``F``; since ``F`` passed the
    commutativity/associativity law check, the partition order cannot
    change the result (the order-independence property test asserts it).
    Horizontal row partitions have disjoint keys, so the driver's merge
    degenerates to concatenation — this is the general primitive.
    """
    ensure_fold_safe(aggregate)
    combine = aggregate.combine
    merged: dict = {}
    for partial in maps:
        for key, pair in partial.items():
            current = merged.get(key)
            merged[key] = pair if current is None else combine(current, pair)
    return merged


# ---------------------------------------------------------------------------
# Worker pool management
# ---------------------------------------------------------------------------

#: Live pools keyed by ``(id(db), db.version, workers)``.  Each entry pins a
#: ``weakref.ref`` to the owning database: ``id()`` alone is not an identity
#: — CPython recycles addresses, so a collected database and its successor
#: can share one, and an unvalidated hit would hand back a pool whose forked
#: children still hold (and serve rows from) the *dead* database.
_POOLS: dict[tuple[int, int, int], "tuple[object, weakref.ref]"] = {}

#: The database the *next* fork inherits (workers read it as a global).
_WORKER_DB = None


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _pool_for(db, workers: int):
    """A fork pool whose children hold a copy-on-write view of *db*.

    Pools are retired when the database mutates (its ``version`` bumps) or
    a larger pool is needed; children forked before a mutation would serve
    stale rows.
    """
    global _WORKER_DB
    key = (id(db), db.version, workers)
    entry = _POOLS.get(key)
    if entry is not None:
        pool, owner = entry
        if owner() is db:
            return pool
        # id() recycled: the key's database was collected and *db* happens
        # to live at the same address with the same version.  The cached
        # pool's children were forked from the dead database and would
        # serve its rows — retire it and fork fresh.
        _POOLS.pop(key)
        pool.terminate()
        pool.join()
    # Retire pools for prior versions of this database and pools whose
    # owning database has been collected (a serving layer snapshotting
    # freely would otherwise accumulate one orphaned pool per dead
    # snapshot until process exit).
    for stale_key in [
        k for k, (_, ref) in _POOLS.items() if k[0] == id(db) or ref() is None
    ]:
        stale, _ = _POOLS.pop(stale_key)
        stale.terminate()
        stale.join()
    _WORKER_DB = db
    context = multiprocessing.get_context("fork")
    pool = context.Pool(processes=workers)
    _POOLS[key] = (pool, weakref.ref(db))
    return pool


def shutdown_pools() -> None:
    """Terminate and reap every worker pool; release shared memory."""
    for pool, _ in list(_POOLS.values()):
        pool.terminate()
        pool.join()
    _POOLS.clear()
    shm.release_all()


def active_pools() -> int:
    """Number of live pools (teardown checks)."""
    return len(_POOLS)


atexit.register(shutdown_pools)


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------


def _worker_run(task):
    """Evaluate one partition; return a plain tuple, never raise.

    Exceptions are flattened to ``("err", type_name, message, site)`` —
    pickling exception objects through the pool pipe round-trips poorly
    (``__reduce__`` replays ``args``, losing keyword state), a value tuple
    does not.  The forked child inherits the driver's ambient guard/fault
    contextvars; both are explicitly overridden — the driver polls the
    guard itself, and faults run from the per-partition plan built here.
    """
    (plan, path, lo, hi, aggregate, specs, seed, index, batch, handle, extras) = task
    db = _WORKER_DB
    try:
        leaf = node_at_path(plan, path)
        if handle is not None:
            schema, rows = shm.load(handle)
            replacement = Materialized(schema, rows, name=f"shm:{index}")
        else:
            table = db.catalog.table(leaf.name)
            replacement = Materialized(
                leaf.schema(db.catalog), table.rows[lo:hi], name=leaf.effective_name
            )
        worker_plan = replace_at_path(plan, path, replacement)
        for extra_path, extra_handle, extra_name in extras:
            schema, rows = shm.load(extra_handle)
            worker_plan = replace_at_path(
                worker_plan, extra_path, Materialized(schema, rows, name=extra_name)
            )
        plan_faults = FaultPlan(list(specs), seed=seed + index) if specs else None
        with use_guard(None), use_faults(plan_faults):
            faults = current_faults()
            if faults.enabled:
                faults.at(PARTITION_SITE)
            with use_batch_scoring(batch):
                relation = evaluate_columnar(worker_plan, db, aggregate)
            if faults.enabled and faults.corrupts(PARTITION_SITE) and relation.pairs:
                victim = faults.pick(len(relation.pairs))
                relation.pairs[victim] = ScorePair(float("nan"), -1.0)
        return ("ok", relation.rows, relation.pairs)
    except ReproError as err:
        return ("err", type(err).__name__, str(err), getattr(err, "site", None))


def _rebuild_error(name: str, message: str, site: str | None) -> ReproError:
    if name == "TransientFault":
        return TransientFault(site or PARTITION_SITE, message)
    if name == "DataCorruption":
        return DataCorruption(message)
    return ExecutionError(f"partition worker failed: {name}: {message}")


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


def _audit_split(plan, split, catalog, partitions: int, strict: bool) -> None:
    """Run the PV3xx partition verifier over a fresh split, rule-style.

    Mirrors the optimizer's per-rule audit: findings land on an
    ``optimize.rule`` span (label ``plan_partitions``), error findings bump
    ``optimizer.rewrite_violation``, and *strict* raises
    :class:`~repro.errors.RewriteViolation` before any worker fans out.
    """
    from ..analysis_static.diagnostics import Severity
    from ..analysis_static.parallel_verifier import verify_partition_plan
    from ..errors import RewriteViolation

    tracer = current_tracer()
    with tracer.span("optimize.rule", label="plan_partitions") as span:
        findings = verify_partition_plan(
            plan, catalog, partitions=partitions, split=split
        )
        span.set("fired", True)
        if findings:
            span.set("diagnostics", [str(d) for d in findings])
            violations = [d for d in findings if d.severity is Severity.ERROR]
            if violations:
                tracer.count("optimizer.rewrite_violation", len(violations))
                if strict:
                    raise RewriteViolation("plan_partitions", violations)


def execute_parallel(
    plan: PlanNode,
    db,
    aggregate: AggregateFunction = F_S,
    partitions: int = 1,
    *,
    in_process: bool | None = None,
    strict: bool = False,
) -> tuple[PRelation, dict]:
    """Evaluate *plan* columnar-wise over *partitions* horizontal splits.

    Returns ``(relation, info)`` where ``info`` describes what actually ran
    (``mode``, ``partitions``, ``partitionable``, ``pool``) for the
    engine's ``engine.columnar`` span.  ``partitions <= 1``, an
    unpartitionable plan, or an empty leaf all degrade to serial columnar
    execution — identical semantics, just one fragment.  *in_process*
    forces the partition loop to run in the driver (no pool); ``None``
    auto-selects the pool when ``fork`` is available *and* more than one
    CPU is usable (on one core the pool can only add overhead).
    """
    info: dict = {"mode": "columnar", "partitions": 1, "partitionable": False}
    if partitions > 1:
        split = plan_partitions(plan, db.catalog, strict=strict)
        if split is not None:
            if strict or current_tracer().enabled:
                _audit_split(plan, split, db.catalog, partitions, strict)
            ensure_fold_safe(aggregate)
            ranges = partition_ranges(split.leaf_rows, partitions)
            if len(ranges) > 1:
                info = {
                    "mode": "columnar-parallel",
                    "partitions": len(ranges),
                    "partitionable": True,
                }
                return _execute_partitions(
                    split, ranges, db, aggregate, info, in_process
                )
            info["partitionable"] = True
    return evaluate_columnar(plan, db, aggregate, strict=strict), info


def _execute_partitions(
    split: PartitionPlan,
    ranges: list[tuple[int, int]],
    db,
    aggregate: AggregateFunction,
    info: dict,
    in_process: bool | None,
) -> tuple[PRelation, dict]:
    # Auto-selection engages the fork pool only when it can actually win:
    # on a single-CPU host the workers time-share one core and the fork's
    # copy-on-write page faults are pure overhead, so the partition loop
    # runs in the driver instead (same split, same merge, same semantics).
    if in_process is None:
        use_pool = _fork_available() and _usable_cpus() > 1
    else:
        use_pool = not in_process
    guard = current_guard()
    faults = current_faults()
    if guard.enabled:
        guard.check()
    split = hoist_shared_subtrees(split, db, aggregate)
    if use_pool:
        parts = _run_pool(split, ranges, db, aggregate, guard, faults)
    else:
        parts = _run_in_process(split, ranges, db, aggregate, faults)
    info["pool"] = use_pool

    schema = split.worker_plan.schema(db.catalog)
    rows: list = []
    pairs: list = []
    for part_rows, part_pairs in parts:
        rows.extend(part_rows)
        pairs.extend(part_pairs)
    merged = PRelation(schema, rows, pairs)
    for node in split.merge_nodes:
        if isinstance(node, TopK):
            merged = topk(merged, node.k, node.by)
        else:
            merged = algebra.select(merged, node.condition)
    return merged, info


def _run_in_process(split, ranges, db, aggregate, faults):
    """The poolless partition loop (fork unavailable, or tests/merge laws)."""
    tracer = current_tracer()
    leaf = node_at_path(split.worker_plan, split.leaf_path)
    parts = []
    for index, (lo, hi) in enumerate(ranges):
        with tracer.span(PARTITION_SITE, label=f"{index + 1}/{len(ranges)}") as span:
            span.set("lo", lo)
            span.set("hi", hi)
            guard = current_guard()
            if guard.enabled:
                guard.check()
            if faults.enabled:
                faults.at(PARTITION_SITE)
            if isinstance(leaf, Materialized):
                sliced = Materialized(
                    leaf.schema(db.catalog), leaf.rows[lo:hi], name=leaf.name
                )
            else:
                sliced = Materialized(
                    leaf.schema(db.catalog),
                    db.catalog.table(leaf.name).rows[lo:hi],
                    name=leaf.effective_name,
                )
            fragment = replace_at_path(split.worker_plan, split.leaf_path, sliced)
            relation = evaluate_columnar(fragment, db, aggregate)
            pairs = relation.pairs
            if faults.enabled and faults.corrupts(PARTITION_SITE) and pairs:
                victim = faults.pick(len(pairs))
                pairs[victim] = ScorePair(float("nan"), -1.0)
            _check_partition_pairs(pairs, index, armed=faults.enabled)
            span.add("rows_out", len(relation.rows))
            parts.append((relation.rows, pairs))
    return parts


def _run_pool(split, ranges, db, aggregate, guard, faults):
    """Fan the partitions out over the fork pool, polling the guard."""
    tracer = current_tracer()
    specs = tuple(faults.specs) if faults.enabled else ()
    seed = getattr(faults, "seed", 0)
    batch = batch_scoring_enabled()
    leaf = node_at_path(split.worker_plan, split.leaf_path)
    pool = _pool_for(db, len(ranges))

    shipped_plan = split.worker_plan
    handles: list[tuple[str, int] | None] = [None] * len(ranges)
    segment_names: list[str] = []
    if isinstance(leaf, Materialized):
        # The leaf's rows live only in this process: ship each slice through
        # shared memory and replace the leaf with an empty stub so the task
        # pickle stays small.
        schema = leaf.schema(db.catalog)
        for index, (lo, hi) in enumerate(ranges):
            handle = shm.pack((schema, leaf.rows[lo:hi]))
            handles[index] = handle
            segment_names.append(handle[0])
        shipped_plan = replace_at_path(
            split.worker_plan, split.leaf_path, Materialized(schema, (), name=leaf.name)
        )

    # Hoisted sibling subtrees (and any other driver-heap Materialized
    # nodes) also live only in this process.  Unlike the leaf they are the
    # same for every partition: pack each once, share the segment.
    extras: list[tuple[tuple[int, ...], tuple[str, int], str]] = []
    for path in _materialized_paths(shipped_plan):
        if path == split.leaf_path:
            continue
        node = node_at_path(shipped_plan, path)
        if not node.rows:
            continue
        node_schema = node.schema(db.catalog)
        handle = shm.pack((node_schema, node.rows))
        segment_names.append(handle[0])
        extras.append((path, handle, node.name))
        shipped_plan = replace_at_path(
            shipped_plan, path, Materialized(node_schema, (), name=node.name)
        )

    try:
        pending = [
            pool.apply_async(
                _worker_run,
                (
                    (
                        shipped_plan,
                        split.leaf_path,
                        lo,
                        hi,
                        aggregate,
                        specs,
                        seed,
                        index,
                        batch,
                        handles[index],
                        extras,
                    ),
                ),
            )
            for index, (lo, hi) in enumerate(ranges)
        ]
        parts = []
        for index, (async_result, (lo, hi)) in enumerate(zip(pending, ranges)):
            with tracer.span(
                PARTITION_SITE, label=f"{index + 1}/{len(ranges)}"
            ) as span:
                span.set("lo", lo)
                span.set("hi", hi)
                while True:
                    if guard.enabled:
                        guard.check()
                        try:
                            outcome = async_result.get(timeout=_POLL_INTERVAL)
                        except multiprocessing.TimeoutError:
                            continue
                    else:
                        outcome = async_result.get()
                    break
                if outcome[0] == "err":
                    raise _rebuild_error(outcome[1], outcome[2], outcome[3])
                _, rows, pairs = outcome
                _check_partition_pairs(pairs, index, armed=faults.enabled)
                span.add("rows_out", len(rows))
                parts.append((rows, pairs))
        return parts
    finally:
        for name in segment_names:
            shm.release(name)


def _materialized_paths(
    node: PlanNode, path: tuple[int, ...] = ()
) -> list[tuple[int, ...]]:
    """Child-index paths of every Materialized node under *node*."""
    if isinstance(node, Materialized):
        return [path]
    found: list[tuple[int, ...]] = []
    for index, child in enumerate(node.children()):
        found.extend(_materialized_paths(child, path + (index,)))
    return found


def _check_partition_pairs(pairs, index: int, *, armed: bool) -> None:
    """Integrity gate over one partition's pairs (armed under fault plans).

    Mirrors the engine's result gate: the merge's global TopK may drop a
    corrupted pair before the engine sees it, so corruption must be caught
    per partition to surface as a typed error rather than a silent ranking
    glitch.
    """
    if not armed:
        return
    for score, conf in pairs:
        score_ok = score is None or (math.isfinite(score) and score >= 0.0)
        conf_ok = math.isfinite(conf) and conf >= 0.0
        if not (score_ok and conf_ok):
            raise DataCorruption(
                f"partition {index} returned an invalid score pair ⟨{score}, {conf}⟩"
            )
