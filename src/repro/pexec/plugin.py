"""Plug-in baselines: rewrite → materialize → aggregate on a black-box DBMS.

The paper's comparison point (§I, §VII): a layer on *top* of the database
that never sees inside the engine.  Query translation "conceptually involves
the following steps: (Rewrite) the preferences are integrated as standard
query conditions producing a set of new queries, (Materialize) the new
queries are executed and (Aggregate) the partial results are combined into a
single ranked list."

Two implementations are provided, matching the paper's "two implementations
of the plug-in approach":

* :func:`execute_plugin_rma` — the straightforward translation: one full
  query per preference (the rewritten query re-executes the entire
  non-preference query with the preference condition appended), plus one
  query for the base result.  Work grows linearly with |λ| with a large
  constant.
* :func:`execute_plugin_shared` — a smarter plug-in that materializes the
  non-preference result once, then issues one selection query per preference
  against the materialized table.  Still outside the engine (one round-trip
  and one scan per preference, no operator-level optimization), but it
  avoids re-running the joins.

Both share FtP's region skeleton, so filtering operators and set operations
compose the same way.
"""

from __future__ import annotations

from ..core.aggregates import F_S, AggregateFunction
from ..core.prelation import PRelation
from ..core.scorepair import IDENTITY, ScorePair
from ..engine.database import Database
from ..engine.table import Row
from ..obs import current_tracer
from ..plan.analysis import strip_prefers
from ..plan.nodes import Materialized, PlanNode, Select
from .conform import conform
from .ftp import RegionEvaluator, RegionFn


def execute_plugin_rma(
    plan: PlanNode, db: Database, aggregate: AggregateFunction = F_S
) -> PRelation:
    """Rewrite/Materialize/Aggregate with one full query per preference."""
    return RegionEvaluator(
        db, aggregate, _make_region(db, aggregate, shared=False), site="strategy.plugin"
    ).evaluate(plan)


def execute_plugin_shared(
    plan: PlanNode, db: Database, aggregate: AggregateFunction = F_S
) -> PRelation:
    """Plug-in variant sharing one materialized base result across preferences."""
    return RegionEvaluator(
        db, aggregate, _make_region(db, aggregate, shared=True), site="strategy.plugin"
    ).evaluate(plan)


def _make_region(db: Database, aggregate: AggregateFunction, shared: bool) -> RegionFn:
    def run_region(plan: PlanNode) -> PRelation:
        tracer = current_tracer()
        non_preference = strip_prefers(plan)
        target_schema = non_preference.schema(db.catalog)

        # Materialize the base (non-preference) answer — the plug-in needs it
        # anyway, to list tuples that match no preference with default pairs.
        with tracer.span("plugin.base-query") as span:
            schema, rows = db.execute(non_preference, optimize=True)
            span.add("rows_out", len(rows))
        db.cost.materialize(len(rows))
        base = conform(PRelation(schema, rows), target_schema)

        partials: dict[Row, ScorePair] = {}
        combine = aggregate.combine
        for preference in plan.preferences():
            # Rewrite: the preference condition becomes a standard constraint.
            with tracer.span("plugin.query", label=preference.name) as span:
                if shared:
                    rewritten = Select(
                        Materialized(target_schema, base.rows), preference.condition
                    )
                    part_schema, part_rows = db.execute(rewritten, optimize=False)
                    part = PRelation(part_schema, part_rows)
                else:
                    rewritten = Select(non_preference, preference.condition)
                    part_schema, part_rows = db.execute(rewritten, optimize=True)
                    part = conform(PRelation(part_schema, part_rows), target_schema)
                db.cost.materialize(len(part.rows))
                db.cost.count_operator("plugin-query")

                # Score the partial result in the plug-in layer.
                scoring = preference.scoring.compile(target_schema)
                confidence = preference.confidence
                combined = 0
                for row in part.rows:
                    fresh = ScorePair(scoring(row), confidence)
                    previous = partials.get(row)
                    if previous is None:
                        partials[row] = fresh
                    else:
                        partials[row] = combine(previous, fresh)
                        combined += 1
                span.add("rows_out", len(part.rows))
                span.add("aggregate.combine", combined)

        # Aggregate: merge partial pairs back onto the base answer.
        with tracer.span("plugin.aggregate") as span:
            pairs = [partials.get(row, IDENTITY) for row in base.rows]
            span.add("rows_out", len(base.rows))
            span.add("scores", len(partials))
        return PRelation(target_schema, list(base.rows), pairs)

    return run_region
