"""Answer provenance: *why* does a tuple carry its score and confidence?

A preference-aware application should be able to explain its suggestions
("because you love comedies, and it won an Academy Award").  Since the
engine widens every result with the attributes the prefer operators read,
each result row still carries enough information to re-evaluate every
preference's conditional and scoring part on it — so explanations come for
free, without re-running the query.

The per-tuple report lists one :class:`Contribution` per preference: whether
its conditional part matched, the score it assigned, its confidence, and —
as a sanity check — the F-combined pair, which equals the tuple's actual
pair for SPJ-shaped queries (set operations merge pairs across branches, so
there the report explains the branch's contribution).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core.aggregates import F_S, AggregateFunction
from ..core.preference import Preference
from ..core.prelation import PRelation
from ..core.scorepair import IDENTITY, ScorePair
from ..engine.schema import TableSchema
from ..engine.table import Row
from ..errors import ExecutionError


@dataclass(frozen=True)
class Contribution:
    """One preference's effect on one result tuple."""

    preference: Preference
    matched: bool
    score: float | None = None       # the scoring part's value (if matched)
    confidence: float = 0.0          # the preference's confidence (if matched)

    def describe(self) -> str:
        if not self.matched:
            return f"{self.preference.name}: not applicable"
        score = "⊥" if self.score is None else f"{self.score:.3f}"
        return (
            f"{self.preference.name}: matched, score {score} "
            f"with confidence {self.confidence:g}"
        )


@dataclass(frozen=True)
class TupleExplanation:
    """All contributions for one tuple plus the combined pair."""

    row: Row
    contributions: tuple[Contribution, ...]
    combined: ScorePair

    @property
    def matched(self) -> tuple[Contribution, ...]:
        return tuple(c for c in self.contributions if c.matched)

    def describe(self) -> str:
        lines = [f"tuple {self.row!r} → {self.combined!r}"]
        for contribution in self.contributions:
            lines.append("  " + contribution.describe())
        return "\n".join(lines)


def explain_tuple(
    schema: TableSchema,
    row: Row,
    preferences: Sequence[Preference],
    aggregate: AggregateFunction = F_S,
) -> TupleExplanation:
    """Evaluate every preference against one (widened) result row."""
    contributions: list[Contribution] = []
    pair = IDENTITY
    for preference in preferences:
        try:
            condition = preference.condition.compile(schema)
            scoring = preference.scoring.compile(schema)
        except Exception as err:  # attribute not carried: cannot explain
            raise ExecutionError(
                f"cannot explain preference {preference.name!r}: {err}"
            ) from err
        if condition(row):
            score = scoring(row)
            contributions.append(
                Contribution(preference, True, score, preference.confidence)
            )
            pair = aggregate.combine(pair, ScorePair(score, preference.confidence))
        else:
            contributions.append(Contribution(preference, False))
    return TupleExplanation(row, tuple(contributions), pair)


def explain_relation(
    relation: PRelation,
    preferences: Sequence[Preference],
    aggregate: AggregateFunction = F_S,
    limit: int | None = None,
) -> list[TupleExplanation]:
    """Explanations for (the first *limit*) tuples of a result p-relation."""
    out: list[TupleExplanation] = []
    for index, row in enumerate(relation.rows):
        if limit is not None and index >= limit:
            break
        out.append(explain_tuple(relation.schema, row, preferences, aggregate))
    return out
