"""Reference evaluator: direct interpretation of extended plans.

Evaluates a plan bottom-up over :class:`~repro.core.prelation.PRelation`
values using the extended algebra and the prefer operator exactly as defined
in Section IV.  It makes no attempt to be fast — it is the *semantics
oracle*: every execution strategy must produce results identical to it, and
the test suite enforces that.
"""

from __future__ import annotations

from ..core import algebra
from ..core.aggregates import F_S, AggregateFunction
from ..core.prefer import prefer
from ..core.prelation import PRelation
from ..engine.catalog import Catalog
from ..errors import ExecutionError
from ..filtering import topk
from ..resilience import current_faults, current_guard
from ..plan.nodes import (
    Difference,
    Intersect,
    Join,
    LeftJoin,
    Materialized,
    PlanNode,
    Prefer,
    Project,
    Relation,
    Select,
    TopK,
    Union,
)


def evaluate_reference(
    plan: PlanNode, catalog: Catalog, aggregate: AggregateFunction = F_S
) -> PRelation:
    """Evaluate *plan* over the catalog, returning the result p-relation.

    Even the oracle honors the ambient query guard (deadline, cancellation)
    at every operator boundary — it is the last rung of the fallback chain,
    so it must stay interruptible too.
    """
    guard = current_guard()
    if guard.enabled:
        guard.check()
    faults = current_faults()
    if faults.enabled:
        faults.at("strategy.reference")
    if isinstance(plan, Relation):
        relation = PRelation.from_table(catalog.table(plan.name))
        if plan.alias and plan.alias != plan.name:
            return PRelation(plan.schema(catalog), relation.rows, relation.pairs)
        return relation
    if isinstance(plan, Materialized):
        return PRelation(plan.schema(catalog), plan.rows)
    if isinstance(plan, Select):
        return algebra.select(
            evaluate_reference(plan.child, catalog, aggregate), plan.condition
        )
    if isinstance(plan, Project):
        return algebra.project(
            evaluate_reference(plan.child, catalog, aggregate), plan.attrs
        )
    if isinstance(plan, Join):
        return algebra.join(
            evaluate_reference(plan.left, catalog, aggregate),
            evaluate_reference(plan.right, catalog, aggregate),
            plan.condition,
            aggregate,
        )
    if isinstance(plan, LeftJoin):
        return algebra.left_join(
            evaluate_reference(plan.left, catalog, aggregate),
            evaluate_reference(plan.right, catalog, aggregate),
            plan.condition,
            aggregate,
        )
    if isinstance(plan, Union):
        return algebra.union(
            evaluate_reference(plan.left, catalog, aggregate),
            evaluate_reference(plan.right, catalog, aggregate),
            aggregate,
        )
    if isinstance(plan, Intersect):
        return algebra.intersect(
            evaluate_reference(plan.left, catalog, aggregate),
            evaluate_reference(plan.right, catalog, aggregate),
            aggregate,
        )
    if isinstance(plan, Difference):
        return algebra.difference(
            evaluate_reference(plan.left, catalog, aggregate),
            evaluate_reference(plan.right, catalog, aggregate),
            aggregate,
        )
    if isinstance(plan, Prefer):
        return prefer(
            evaluate_reference(plan.child, catalog, aggregate),
            plan.preference,
            plan.aggregate or aggregate,
        )
    if isinstance(plan, TopK):
        return topk(evaluate_reference(plan.child, catalog, aggregate), plan.k, plan.by)
    raise ExecutionError(f"reference evaluator: unknown node {plan!r}")
