"""Physical score-relation machinery shared by the execution strategies.

An :class:`Intermediate` is the paper's execution-time pair ``(R_i, R_Pi)``:
the materialized base rows of an operator's output plus its score relation —
a sparse map from primary-key values to non-default ⟨score, conf⟩ pairs
(§VI, "Implementing p-relations").  The helpers here implement the two-step
evaluation of §VI: run the conventional operation on base rows (done by the
caller through the native engine), then derive the result's score relation
from the inputs' score relations.
"""

from __future__ import annotations

from operator import itemgetter
from typing import Sequence

from ..core.aggregates import F_S, AggregateFunction
from ..core.preference import Preference
from ..core.prelation import PRelation
from ..core.scorepair import IDENTITY, ScorePair
from ..engine.schema import TableSchema
from ..engine.table import Row, Table
from ..errors import ExecutionError
from ..obs import current_tracer


class Intermediate:
    """Materialized operator output: rows plus their sparse score relation.

    ``key_attrs`` names the columns (by qualified name where possible) whose
    values key the score relation; for base relations this is the primary
    key, for joins the concatenation of the inputs' keys, for set-operation
    results the full column list.  Every key attribute must be present in
    ``schema`` — the execution engine widens projections to guarantee it.
    """

    __slots__ = ("schema", "rows", "key_attrs", "scores", "source")

    def __init__(
        self,
        schema: TableSchema,
        rows: list[Row] | None,
        key_attrs: Sequence[str],
        scores: dict[tuple, ScorePair] | None = None,
        source: object | None = None,
    ):
        self.schema = schema
        #: ``None`` marks a *lazy* intermediate: the rows are exactly what
        #: natively executing ``source`` yields, and are only produced when
        #: somebody genuinely needs them (GBU's prefer-over-pure-block path).
        self.rows = rows
        self.key_attrs = tuple(key_attrs)
        for attr in self.key_attrs:
            if not schema.has(attr):
                raise ExecutionError(
                    f"score-relation key attribute {attr!r} is missing from the "
                    "intermediate schema; the plan was not widened "
                    "(see required_carry_attributes)"
                )
        self.scores: dict[tuple, ScorePair] = scores if scores is not None else {}
        #: When set, a plan node (typically a base Relation) whose native
        #: execution regenerates exactly ``rows``.  The execution strategies
        #: then keep the *relation* in their delegated queries — preserving
        #: index access paths — and only carry the score relation alongside,
        #: exactly like the paper's prototype (prefer leaves R unchanged and
        #: updates R_P).
        self.source = source

    # -- construction -----------------------------------------------------------

    @classmethod
    def from_table(cls, table: Table, schema: TableSchema | None = None) -> "Intermediate":
        schema = schema or table.schema
        if table.schema.primary_key:
            key_attrs = [
                schema.columns[table.schema.index_of(a)].qualified_name
                for a in table.schema.primary_key
            ]
        else:
            key_attrs = [c.qualified_name for c in schema.columns]
        return cls(schema, list(table.rows), key_attrs)

    @classmethod
    def from_rows(
        cls, schema: TableSchema, rows: list[Row], key_attrs: Sequence[str] | None = None
    ) -> "Intermediate":
        if key_attrs is None:
            key_attrs = [c.qualified_name for c in schema.columns]
        return cls(schema, rows, key_attrs)

    # -- keys --------------------------------------------------------------------

    def key_positions(self) -> tuple[int, ...]:
        return tuple(self.schema.index_of(a) for a in self.key_attrs)

    def key_fn(self):
        positions = self.key_positions()
        if len(positions) == len(self.schema.columns) and positions == tuple(
            range(len(positions))
        ):
            return lambda row: row
        if len(positions) == 1:
            position = positions[0]
            return lambda row: (row[position],)
        return itemgetter(*positions)

    def pair_of(self, row: Row) -> ScorePair:
        return self.scores.get(self.key_fn()(row), IDENTITY)

    # -- conversion -----------------------------------------------------------------

    def to_prelation(self) -> PRelation:
        if self.rows is None:
            raise ExecutionError(
                "lazy intermediate has no materialized rows; force it first"
            )
        key = self.key_fn()
        scores = self.scores
        pairs = [scores.get(key(row), IDENTITY) for row in self.rows]
        return PRelation(self.schema, list(self.rows), pairs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Intermediate({len(self.rows)} rows, {len(self.scores)} scored, "
            f"key={self.key_attrs})"
        )


# ---------------------------------------------------------------------------
# Operator-level score-relation derivations
# ---------------------------------------------------------------------------


def _report_prefer(rows_in: int, qualifying: int, combined: int) -> None:
    """Credit prefer-evaluation counters to the ambient tracer (no-op cost:
    one attribute check when tracing is off)."""
    tracer = current_tracer()
    if tracer.enabled:
        tracer.count("rows_in", rows_in)
        tracer.count("qualifying", qualifying)
        tracer.count("aggregate.combine", combined)


def _apply_prefer_into(
    scores: dict,
    inter: Intermediate,
    preference: Preference,
    aggregate: AggregateFunction,
    key,
) -> None:
    """One sequential prefer pass, mutating *scores* in place.

    Shared core of :func:`apply_prefer` and :func:`apply_prefer_seq`: the
    callers decide how often the score relation is copied (once per call vs
    once per *group* — the latter keeps the unfused path linear in |λ|
    instead of quadratic in the size of the score relation).
    """
    condition = preference.condition.compile(inter.schema)
    scoring = preference.scoring.compile(inter.schema)
    confidence = preference.confidence
    combine = aggregate.combine
    qualifying = combined = 0
    for row in inter.rows:
        if not condition(row):
            continue
        qualifying += 1
        fresh = ScorePair(scoring(row), confidence)
        k = key(row)
        previous = scores.get(k)
        if previous is None:
            pair = fresh
        else:
            pair = combine(previous, fresh)
            combined += 1
        if pair.is_default:
            scores.pop(k, None)
        else:
            scores[k] = pair
    _report_prefer(len(inter.rows), qualifying, combined)


def apply_prefer(
    inter: Intermediate,
    preference: Preference,
    aggregate: AggregateFunction = F_S,
) -> Intermediate:
    """Evaluate a prefer operator on an intermediate (§VI, prefer UDF).

    The conditional part runs over the base rows; qualifying tuples already
    present in the score relation have their pairs updated, qualifying
    tuples absent from it are inserted with their fresh pair.
    """
    scores = dict(inter.scores)
    _apply_prefer_into(scores, inter, preference, aggregate, inter.key_fn())
    return Intermediate(inter.schema, inter.rows, inter.key_attrs, scores, inter.source)


def apply_prefer_seq(
    inter: Intermediate,
    preferences: Sequence[Preference],
    aggregate: AggregateFunction = F_S,
) -> Intermediate:
    """Sequential (unfused) evaluation of a prefer run, copying scores ONCE.

    Semantically identical to folding :func:`apply_prefer` per preference —
    each preference still scans every row — but the score relation is copied
    once per group instead of once per preference, so the unfused path costs
    O(|R|·|λ|) instead of O((|R| + |R_P|)·|λ|) dict copies.  The fused
    counterpart is :func:`repro.pexec.batchscore.apply_prefer_group`.
    """
    scores = dict(inter.scores)
    key = inter.key_fn()
    for preference in preferences:
        _apply_prefer_into(scores, inter, preference, aggregate, key)
    return Intermediate(inter.schema, inter.rows, inter.key_attrs, scores, inter.source)


def prefer_scores_from_rows(
    schema: TableSchema,
    qualifying: "list[Row] | tuple[Row, ...]",
    key_attrs: Sequence[str],
    preference: Preference,
    aggregate: AggregateFunction = F_S,
    base: dict[tuple, ScorePair] | None = None,
) -> dict[tuple, ScorePair]:
    """Score-relation entries for a prefer whose qualifying rows are given.

    *schema* is the schema of the rows as delivered (which may be permuted
    relative to the logical block schema — keys are resolved by name).  The
    returned dict merges into *base* without mutating it.
    """
    scoring = preference.scoring.compile(schema)
    confidence = preference.confidence
    combine = aggregate.combine
    positions = tuple(schema.index_of(a) for a in key_attrs)
    scores = dict(base or {})
    combined = 0
    for row in qualifying:
        fresh = ScorePair(scoring(row), confidence)
        k = tuple(row[i] for i in positions)
        previous = scores.get(k)
        if previous is None:
            pair = fresh
        else:
            pair = combine(previous, fresh)
            combined += 1
        if pair.is_default:
            scores.pop(k, None)
        else:
            scores[k] = pair
    _report_prefer(len(qualifying), len(qualifying), combined)
    return scores


def apply_prefer_to_rows(
    inter: Intermediate,
    preference: Preference,
    qualifying: list[Row],
    aggregate: AggregateFunction = F_S,
) -> Intermediate:
    """Prefer evaluation when the qualifying rows are already known.

    Used when the conditional part was executed through the native engine
    (e.g. via an index over a base relation — the access-path advantage
    behind the paper's Heuristic 4): only the matching tuples are scored,
    instead of scanning the whole input.
    """
    scoring = preference.scoring.compile(inter.schema)
    confidence = preference.confidence
    combine = aggregate.combine
    key = inter.key_fn()
    scores = dict(inter.scores)
    combined = 0
    for row in qualifying:
        fresh = ScorePair(scoring(row), confidence)
        k = key(row)
        previous = scores.get(k)
        if previous is None:
            pair = fresh
        else:
            pair = combine(previous, fresh)
            combined += 1
        if pair.is_default:
            scores.pop(k, None)
        else:
            scores[k] = pair
    _report_prefer(len(qualifying), len(qualifying), combined)
    return Intermediate(inter.schema, inter.rows, inter.key_attrs, scores, inter.source)


def filter_rows(inter: Intermediate, rows: list[Row]) -> Intermediate:
    """A selection's result: surviving rows, score relation pruned to them.

    The paper filters non-qualifying tuples "from both relations".
    """
    key = inter.key_fn()
    surviving_keys = {key(row) for row in rows}
    scores = {k: p for k, p in inter.scores.items() if k in surviving_keys}
    return Intermediate(inter.schema, rows, inter.key_attrs, scores)


def project_rows(
    inter: Intermediate, schema: TableSchema, attrs: Sequence[str], rows: list[Row]
) -> Intermediate:
    """A projection's result; key attributes must survive the projection."""
    old_positions = {inter.schema.index_of(a) for a in inter.key_attrs}
    kept_positions = [inter.schema.index_of(a) for a in attrs]
    if not old_positions.issubset(set(kept_positions)):
        raise ExecutionError(
            "projection drops score-relation key attributes; widen the plan "
            "with required_carry_attributes before executing"
        )
    # Keys are value-based, so they survive as long as the columns do.
    new_key_attrs = [
        schema.columns[kept_positions.index(inter.schema.index_of(a))].qualified_name
        for a in inter.key_attrs
    ]
    return Intermediate(schema, rows, new_key_attrs, dict(inter.scores))


def combine_join(
    left: Intermediate,
    right: Intermediate,
    schema: TableSchema,
    rows: list[Row],
    aggregate: AggregateFunction = F_S,
) -> Intermediate:
    """A join's score relation: per result tuple, ``F(pair_left, pair_right)``.

    The result key is the concatenation of the input keys (the composite
    primary key of the §VI prototype).
    """
    left_width = len(left.schema.columns)
    left_positions = left.key_positions()
    right_positions = tuple(p + left_width for p in right.key_positions())
    key_attrs = [schema.columns[p].qualified_name for p in left_positions] + [
        schema.columns[p].qualified_name for p in right_positions
    ]
    scores: dict[tuple, ScorePair] = {}
    if left.scores or right.scores:
        combine = aggregate.combine
        left_scores = left.scores
        right_scores = right.scores
        combined = 0
        for row in rows:
            left_key = tuple(row[i] for i in left_positions)
            right_key = tuple(row[i] for i in right_positions)
            left_pair = left_scores.get(left_key)
            right_pair = right_scores.get(right_key)
            if left_pair is None and right_pair is None:
                continue
            if left_pair is None:
                pair = right_pair
            elif right_pair is None:
                pair = left_pair
            else:
                pair = combine(left_pair, right_pair)
                combined += 1
            if not pair.is_default:
                scores[left_key + right_key] = pair
        tracer = current_tracer()
        if tracer.enabled:
            tracer.count("aggregate.combine", combined)
    return Intermediate(schema, rows, key_attrs, scores)


def combine_setop(
    kind: str,
    left: Intermediate,
    right: Intermediate,
    rows: list[Row],
    aggregate: AggregateFunction = F_S,
) -> Intermediate:
    """A set operation's score relation, keyed by the full (deduplicated) row.

    Inputs are first collapsed to per-row pairs (duplicates within one input
    merge through F, matching the reference algebra); then union combines
    pairs of common rows, intersection combines both sides, difference keeps
    the left pair.
    """
    left_pairs = _collapse_by_row(left, aggregate)
    right_pairs = _collapse_by_row(right, aggregate)
    combine = aggregate.combine
    scores: dict[tuple, ScorePair] = {}
    for row in rows:
        if kind == "difference":
            pair = left_pairs.get(row, IDENTITY)
        elif kind == "intersect":
            pair = combine(left_pairs.get(row, IDENTITY), right_pairs.get(row, IDENTITY))
        else:  # union
            a = left_pairs.get(row)
            b = right_pairs.get(row)
            if a is None:
                pair = b if b is not None else IDENTITY
            elif b is None:
                pair = a
            else:
                pair = combine(a, b)
        if not pair.is_default:
            scores[row] = pair
    key_attrs = [c.qualified_name for c in left.schema.columns]
    return Intermediate(left.schema, rows, key_attrs, scores)


def _collapse_by_row(
    inter: Intermediate, aggregate: AggregateFunction
) -> dict[Row, ScorePair]:
    out: dict[Row, ScorePair] = {}
    key = inter.key_fn()
    scores = inter.scores
    combine = aggregate.combine
    for row in inter.rows:
        pair = scores.get(key(row), IDENTITY)
        if row in out:
            out[row] = combine(out[row], pair)
        else:
            out[row] = pair
    return out


def apply_score_select(inter: Intermediate, condition) -> Intermediate:
    """A selection referencing ``score``/``conf``: evaluated with pair lookups."""
    fn = condition.compile(inter.schema, with_score=True)
    key = inter.key_fn()
    scores = inter.scores
    kept = []
    for row in inter.rows:
        pair = scores.get(key(row), IDENTITY)
        if fn(row + (pair.score, pair.conf)):
            kept.append(row)
    return filter_rows(inter, kept)


def apply_topk(inter: Intermediate, k: int, by: str) -> Intermediate:
    """Top-k over an intermediate, via the shared deterministic ordering."""
    from ..filtering import topk as topk_filter

    result = topk_filter(inter.to_prelation(), k, by)
    return filter_rows(inter, list(result.rows))


def merge_embedded(
    schema: TableSchema,
    rows: list[Row],
    embedded: Sequence[Intermediate],
    extra_key_attrs: Sequence[str],
    aggregate: AggregateFunction = F_S,
) -> Intermediate:
    """Score relation of a natively-executed block with embedded intermediates.

    Used by GBU after forcing a deferred subtree: each embedded
    intermediate's key attributes are resolved against the block's output
    schema and its pairs are combined per result row.  ``extra_key_attrs``
    are the primary keys contributed by base-relation leaves of the block.
    """
    key_attrs: list[str] = []
    seen_positions: set[int] = set()
    for source in list(extra_key_attrs) + [
        attr for inter in embedded for attr in inter.key_attrs
    ]:
        position = schema.index_of(source)
        if position not in seen_positions:
            seen_positions.add(position)
            key_attrs.append(schema.columns[position].qualified_name)
    if not key_attrs:
        key_attrs = [c.qualified_name for c in schema.columns]

    scores: dict[tuple, ScorePair] = {}
    if any(inter.scores for inter in embedded):
        lookups = []
        for inter in embedded:
            positions = tuple(schema.index_of(a) for a in inter.key_attrs)
            lookups.append((positions, inter.scores))
        key_positions = tuple(schema.index_of(a) for a in key_attrs)
        combine = aggregate.combine
        for row in rows:
            pair = IDENTITY
            for positions, table in lookups:
                found = table.get(tuple(row[i] for i in positions))
                if found is not None:
                    pair = found if pair is IDENTITY else combine(pair, found)
            if not pair.is_default:
                scores[tuple(row[i] for i in key_positions)] = pair
    return Intermediate(schema, rows, key_attrs, scores)
