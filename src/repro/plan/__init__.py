"""Logical extended query plans: nodes, builder, printer and analysis."""

from .analysis import (
    preference_attributes,
    preferred_relations,
    required_carry_attributes,
    strip_prefers,
    widen_projections,
)
from .builder import PlanBuilder, natural_join_condition, scan
from .fingerprint import UncacheablePlan, fingerprint_payload, plan_fingerprint
from .nodes import (
    Difference,
    Intersect,
    Join,
    LeftJoin,
    Materialized,
    PlanNode,
    Prefer,
    Project,
    Relation,
    Select,
    TopK,
    Union,
)
from .printer import compact, explain

__all__ = [
    "PlanNode",
    "Relation",
    "Materialized",
    "Select",
    "Project",
    "Join",
    "LeftJoin",
    "Union",
    "Intersect",
    "Difference",
    "Prefer",
    "TopK",
    "PlanBuilder",
    "scan",
    "natural_join_condition",
    "explain",
    "compact",
    "strip_prefers",
    "widen_projections",
    "preference_attributes",
    "preferred_relations",
    "required_carry_attributes",
    "plan_fingerprint",
    "fingerprint_payload",
    "UncacheablePlan",
]
