"""Static analysis helpers over extended query plans.

Used by the query parser (which must project every attribute any prefer
operator will need, plus all join attributes — §VI "System Architecture")
and by the Filter-then-Prefer strategy (which strips prefer operators to
obtain the non-preference query part ``Q_NP``).
"""

from __future__ import annotations

from ..engine.catalog import Catalog
from .nodes import Join, LeftJoin, PlanNode, Prefer, Project, Relation, Select


def preference_attributes(plan: PlanNode) -> set[str]:
    """Attributes used by any prefer operator in *plan* (conditional+scoring)."""
    out: set[str] = set()
    for node in plan.walk():
        if isinstance(node, Prefer):
            out |= node.preference.attributes()
    return out


def join_attributes(plan: PlanNode) -> set[str]:
    """Attributes referenced by any join condition in *plan*."""
    out: set[str] = set()
    for node in plan.walk():
        if isinstance(node, (Join, LeftJoin)):
            out |= node.condition.attributes()
    return out


def preferred_relations(plan: PlanNode) -> set[str]:
    """Base relations named by at least one preference in *plan*."""
    out: set[str] = set()
    for node in plan.walk():
        if isinstance(node, Prefer):
            out |= set(node.preference.relations)
    return out


def primary_key_attributes(plan: PlanNode, catalog: Catalog) -> set[str]:
    """Qualified primary-key attributes of every base relation in the plan.

    The execution strategies key score relations by primary keys — composite
    keys for join results — so any projection along the way must preserve
    them.  Keys of preference-free relations are kept too: they make the
    composite key of a join result unique even under fan-out.
    """
    out: set[str] = set()
    for node in plan.walk():
        if not isinstance(node, Relation) or not catalog.has_table(node.name):
            continue
        schema = node.schema(catalog)
        for attr in schema.primary_key:
            out.add(schema.column(attr).qualified_name.lower())
    return out


def qualify_preferences(plan: PlanNode, catalog: Catalog) -> PlanNode:
    """Qualify every preference's bare attributes against its relations.

    Run once by the execution engine before widening/optimizing so that
    preference conditions stay unambiguous when evaluated on join results.
    """
    if isinstance(plan, Prefer):
        child = qualify_preferences(plan.child, catalog)
        return Prefer(child, plan.preference.qualify(catalog), plan.aggregate)
    children = plan.children()
    if not children:
        return plan
    return plan.with_children([qualify_preferences(child, catalog) for child in children])


def strip_prefers(plan: PlanNode) -> PlanNode:
    """The non-preference part ``Q_NP``: *plan* with every Prefer removed."""
    if isinstance(plan, Prefer):
        return strip_prefers(plan.child)
    children = plan.children()
    if not children:
        return plan
    return plan.with_children([strip_prefers(child) for child in children])


def required_carry_attributes(plan: PlanNode, catalog: Catalog) -> set[str]:
    """Everything a projection must keep for preference processing to work:
    prefer attributes, join attributes and affected relations' primary keys.
    """
    return (
        preference_attributes(plan)
        | join_attributes(plan)
        | primary_key_attributes(plan, catalog)
    )


def widen_projections(plan: PlanNode, extra: set[str], catalog: Catalog) -> PlanNode:
    """Rewrite every Project so attributes in *extra* survive when available.

    This implements the parser's rule of adding "projections for all
    attributes that will be used as part of a prefer operator and for all
    join attributes".  Attributes are matched by bare or qualified name
    against the projection input's schema; kept attributes are added in
    schema order after the user-requested ones.
    """
    children = plan.children()
    if children:
        plan = plan.with_children(
            [widen_projections(child, extra, catalog) for child in children]
        )
    if not isinstance(plan, Project):
        return plan
    child_schema = plan.child.schema(catalog)
    kept = list(plan.attrs)
    kept_positions = {child_schema.index_of(a) for a in plan.attrs}
    for column in child_schema.columns:
        bare = column.name.lower()
        qualified = column.qualified_name.lower()
        if bare in extra or qualified in extra:
            position = child_schema.index_of(qualified)
            if position not in kept_positions:
                kept.append(column.qualified_name)
                kept_positions.add(position)
    if tuple(kept) == plan.attrs:
        return plan
    return Project(plan.child, kept)


def node_at_path(plan: PlanNode, path: tuple[int, ...]) -> PlanNode:
    """The node reached from *plan* by following child indexes in *path*.

    Paths (rather than node identity) are how the partition-parallel driver
    names the leaf to slice: object identity does not survive pickling into
    a worker process, child positions do.
    """
    node = plan
    for index in path:
        node = node.children()[index]
    return node


def replace_at_path(
    plan: PlanNode, path: tuple[int, ...], replacement: PlanNode
) -> PlanNode:
    """A copy of *plan* with the node at *path* swapped for *replacement*."""
    if not path:
        return replacement
    children = list(plan.children())
    children[path[0]] = replace_at_path(children[path[0]], path[1:], replacement)
    return plan.with_children(children)


def selection_conditions(plan: PlanNode) -> list:
    """All selection conditions in the plan (pre-order) — used in tests."""
    return [node.condition for node in plan.walk() if isinstance(node, Select)]


def leaf_tables(plan: PlanNode) -> list[Relation]:
    """Relation leaves in left-to-right order."""
    return [node for node in plan.walk() if isinstance(node, Relation)]


def plan_depth(plan: PlanNode) -> int:
    children = plan.children()
    if not children:
        return 1
    return 1 + max(plan_depth(child) for child in children)


def is_left_deep(plan: PlanNode) -> bool:
    """True when no binary operator has another binary operator on its right."""
    for node in plan.walk():
        if len(node.children()) == 2:
            right = node.children()[1]
            if any(len(inner.children()) == 2 for inner in right.walk()):
                return False
    return True
