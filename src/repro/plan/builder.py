"""Fluent construction of extended query plans.

The paper's preferential queries (Section V) compose base relations,
extended operators and prefer operators.  :class:`PlanBuilder` provides a
compact notation for writing them in Python::

    plan = (
        scan("MOVIES").select(eq("year", 2011))
        .natural_join(scan("GENRES").prefer(p1), catalog)
        .project(["title"])
        .top(10, by="score")
        .build()
    )
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # break the core ↔ plan import cycle: hints only
    from ..core.aggregates import AggregateFunction
    from ..core.preference import Preference

from ..engine.catalog import Catalog
from ..engine.expressions import Attr, Comparison, Expr, conjoin
from ..errors import PlanError
from .nodes import (
    Difference,
    Intersect,
    Join,
    LeftJoin,
    PlanNode,
    Prefer,
    Project,
    Relation,
    Select,
    TopK,
    Union,
)


def natural_join_condition(
    catalog: Catalog, left: PlanNode, right: PlanNode
) -> Expr:
    """Equality of every bare attribute name the two subtrees share.

    Attribute references are qualified so the combined schema stays
    unambiguous (the paper's schema joins on shared key columns, e.g.
    ``MOVIES ⋈ DIRECTORS`` on ``d_id``).
    """
    left_schema = left.schema(catalog)
    right_schema = right.schema(catalog)
    left_names = {c.name.lower(): c.qualified_name for c in left_schema.columns}
    common: list[Expr] = []
    for column in right_schema.columns:
        bare = column.name.lower()
        if bare in left_names:
            common.append(
                Comparison("=", Attr(left_names[bare]), Attr(column.qualified_name))
            )
    if not common:
        raise PlanError(
            f"no common attributes between {left.label()} and {right.label()}"
        )
    return conjoin(common)


class PlanBuilder:
    """Immutable fluent wrapper around a :class:`PlanNode`."""

    __slots__ = ("node",)

    def __init__(self, node: PlanNode):
        self.node = node

    def build(self) -> PlanNode:
        """Unwrap the constructed plan."""
        return self.node

    # -- unary ------------------------------------------------------------------

    def select(self, condition: Expr) -> "PlanBuilder":
        """``σ_condition`` over the current plan."""
        return PlanBuilder(Select(self.node, condition))

    def project(self, attrs: Sequence[str]) -> "PlanBuilder":
        """``π_attrs`` over the current plan."""
        return PlanBuilder(Project(self.node, attrs))

    def prefer(
        self, preference: Preference, aggregate: AggregateFunction | None = None
    ) -> "PlanBuilder":
        """``λ_preference`` over the current plan."""
        return PlanBuilder(Prefer(self.node, preference, aggregate))

    def prefer_all(self, preferences: Sequence[Preference]) -> "PlanBuilder":
        """Chain one prefer operator per preference, in order."""
        builder = self
        for preference in preferences:
            builder = builder.prefer(preference)
        return builder

    def top(self, k: int, by: str = "score") -> "PlanBuilder":
        """``top(k, score|conf)`` filtering over the current plan."""
        return PlanBuilder(TopK(self.node, k, by))

    # -- binary ------------------------------------------------------------------

    def join(self, other: "PlanBuilder | PlanNode", on: Expr) -> "PlanBuilder":
        """Inner θ-join with *other* on the given condition."""
        return PlanBuilder(Join(self.node, _unwrap(other), on))

    def natural_join(
        self, other: "PlanBuilder | PlanNode", catalog: Catalog
    ) -> "PlanBuilder":
        """Inner join on all attribute names the two sides share."""
        right = _unwrap(other)
        condition = natural_join_condition(catalog, self.node, right)
        return PlanBuilder(Join(self.node, right, condition))

    def left_join(self, other: "PlanBuilder | PlanNode", on: Expr) -> "PlanBuilder":
        """LEFT OUTER θ-join: unmatched left tuples survive NULL-padded."""
        return PlanBuilder(LeftJoin(self.node, _unwrap(other), on))

    def natural_left_join(
        self, other: "PlanBuilder | PlanNode", catalog: Catalog
    ) -> "PlanBuilder":
        """LEFT OUTER join on all shared attribute names."""
        right = _unwrap(other)
        condition = natural_join_condition(catalog, self.node, right)
        return PlanBuilder(LeftJoin(self.node, right, condition))

    def union(self, other: "PlanBuilder | PlanNode") -> "PlanBuilder":
        """``∪_F`` with *other* (duplicates merged through F)."""
        return PlanBuilder(Union(self.node, _unwrap(other)))

    def intersect(self, other: "PlanBuilder | PlanNode") -> "PlanBuilder":
        """``∩_F`` with *other*."""
        return PlanBuilder(Intersect(self.node, _unwrap(other)))

    def difference(self, other: "PlanBuilder | PlanNode") -> "PlanBuilder":
        """``−`` with *other* (left pairs kept)."""
        return PlanBuilder(Difference(self.node, _unwrap(other)))


def _unwrap(value: "PlanBuilder | PlanNode") -> PlanNode:
    return value.node if isinstance(value, PlanBuilder) else value


def scan(name: str, alias: str | None = None) -> PlanBuilder:
    """Start a plan from a base relation."""
    return PlanBuilder(Relation(name, alias))
