"""Stable value fingerprints for extended query plans.

The result cache (:mod:`repro.cache`) keys entries by *what will be
computed*: a sha256 over a canonical JSON rendering of the plan tree plus
the execution knobs that change the answer (strategy, aggregate,
presentation order).  Two queries fingerprint equal iff they denote the
same computation, so the fingerprint can stand in for the plan inside a
cache key — the data side of the key is covered separately by per-table
content digests (:func:`repro.serve.server.table_digest`).

Not every plan has a value identity.  :class:`~repro.plan.nodes.Materialized`
leaves compare by object identity (two materializations are never "the same
subtree"), and a preference carrying an opaque ``CallableScore`` or a
predicate context has no canonical serialization.  Those raise
:class:`UncacheablePlan`; callers bypass the cache for such queries instead
of risking a wrong hit.
"""

from __future__ import annotations

import hashlib

from ..errors import PlanError, PreferenceError
from .nodes import (
    Difference,
    Intersect,
    Join,
    LeftJoin,
    Materialized,
    PlanNode,
    Prefer,
    Project,
    Relation,
    Select,
    TopK,
    Union,
)

#: Bump when the payload layout changes, so stale persisted fingerprints
#: (should any ever be stored) can never collide with current ones.
FINGERPRINT_VERSION = 1


class UncacheablePlan(PlanError):
    """The plan has no stable value identity; its results must not be cached."""


def fingerprint_payload(plan: PlanNode) -> dict:
    """Recursive value rendering of *plan* as canonical-JSON-able data.

    Every concrete node kind contributes exactly the fields its ``_key()``
    compares, serialized through :mod:`repro.serve.codec` (imported lazily:
    ``plan`` must stay importable without the serving layer).
    """
    from ..serve.codec import expr_to_dict, preference_to_dict

    def node(current: PlanNode) -> dict:
        if isinstance(current, Materialized):
            raise UncacheablePlan(
                "materialized plan leaves compare by identity and have no "
                "stable fingerprint"
            )
        if isinstance(current, Relation):
            data: dict = {
                "kind": current.kind,
                "name": current.name,
                "alias": current.alias,
            }
        elif isinstance(current, Select):
            data = {"kind": current.kind, "condition": expr_to_dict(current.condition)}
        elif isinstance(current, Project):
            data = {"kind": current.kind, "attrs": list(current.attrs)}
        elif isinstance(current, (Join, LeftJoin)):
            data = {"kind": current.kind, "condition": expr_to_dict(current.condition)}
        elif isinstance(current, (Union, Intersect, Difference)):
            data = {"kind": current.kind}
        elif isinstance(current, Prefer):
            try:
                serialized = preference_to_dict(current.preference)
            except PreferenceError as err:
                raise UncacheablePlan(
                    f"preference {current.preference.name!r} has no canonical "
                    f"serialization: {err}"
                ) from err
            data = {
                "kind": current.kind,
                "preference": serialized,
                "aggregate": getattr(current.aggregate, "name", None),
            }
        elif isinstance(current, TopK):
            data = {"kind": current.kind, "k": current.k, "by": current.by}
        else:
            # A node kind this module does not know cannot be keyed by value.
            raise UncacheablePlan(
                f"plan node kind {current.kind!r} has no fingerprint rule"
            )
        children = current.children()
        if children:
            data["children"] = [node(child) for child in children]
        return data

    return node(plan)


def plan_fingerprint(
    plan: PlanNode,
    *,
    strategy: str = "",
    aggregate: str | None = None,
    order_by: str | None = None,
    extra: dict | None = None,
) -> str:
    """sha256 identifying the computation *plan* denotes under the given knobs.

    *strategy*, *aggregate* (the query-level default F's name) and
    *order_by* are part of the identity: the same tree executed under a
    different strategy or presented in a different rank order is a
    different cacheable computation.  *extra* folds in any further
    caller-specific discriminators (already JSON-able).

    Raises :class:`UncacheablePlan` when the plan (or anything in *extra*)
    cannot be canonically serialized.
    """
    from ..serve.codec import canonical_json

    payload = {
        "v": FINGERPRINT_VERSION,
        "plan": fingerprint_payload(plan),
        "strategy": strategy,
        "aggregate": aggregate,
        "order_by": order_by,
    }
    if extra:
        payload["extra"] = dict(extra)
    try:
        text = canonical_json(payload)
    except (TypeError, ValueError) as err:
        raise UncacheablePlan(f"plan fingerprint is not serializable: {err}") from err
    return hashlib.sha256(text.encode("utf-8")).hexdigest()
