"""Logical plan nodes for extended (preference-aware) query plans.

An *extended query plan* is an expression tree whose leaves are p-relations
(base tables lifted with default pairs) and whose internal nodes are extended
relational operators plus the prefer operator (§VI, Fig. 7).  Plans are
immutable values: rewrites build new trees.

Filtering operators (``TopK``, selections over ``score``/``conf``) are plain
plan nodes too — the paper's point is precisely that preference *evaluation*
(Prefer) is separate from preferred-tuple *filtering*.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # break the core ↔ plan import cycle: hints only
    from ..core.aggregates import AggregateFunction
    from ..core.preference import Preference

from ..engine.catalog import Catalog
from ..engine.expressions import Expr
from ..engine.schema import TableSchema
from ..errors import PlanError


class PlanNode:
    """Base class of all logical plan nodes."""

    #: Operator name used by the printer and the execution engines.
    kind = "abstract"

    def children(self) -> tuple["PlanNode", ...]:
        return ()

    def with_children(self, children: Sequence["PlanNode"]) -> "PlanNode":
        """Rebuild this node with new children (same arity)."""
        raise NotImplementedError

    def schema(self, catalog: Catalog) -> TableSchema:
        """Output schema of this subtree."""
        raise NotImplementedError

    # -- tree utilities --------------------------------------------------------

    def walk(self):
        """Yield every node of the subtree, pre-order."""
        yield self
        for child in self.children():
            yield from child.walk()

    def contains_prefer(self) -> bool:
        return any(isinstance(node, Prefer) for node in self.walk())

    def relations(self) -> set[str]:
        """Names of the base relations referenced in this subtree."""
        return {node.name for node in self.walk() if isinstance(node, Relation)}

    def preferences(self) -> list[Preference]:
        """All preferences attached to the subtree, in pre-order."""
        return [node.preference for node in self.walk() if isinstance(node, Prefer)]

    def label(self) -> str:
        """One-line description used by the plan printer."""
        return self.kind

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PlanNode):
            return NotImplemented
        return (
            type(self) is type(other)
            and self._key() == other._key()
            and self.children() == other.children()
        )

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._key(), self.children()))

    def _key(self) -> tuple:
        return ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.label()


class Relation(PlanNode):
    """A base table leaf, optionally aliased."""

    kind = "relation"

    def __init__(self, name: str, alias: str | None = None):
        self.name = name.upper()
        self.alias = alias.upper() if alias else None

    def with_children(self, children: Sequence[PlanNode]) -> "Relation":
        if children:
            raise PlanError("relation nodes have no children")
        return self

    def schema(self, catalog: Catalog) -> TableSchema:
        schema = catalog.table(self.name).schema
        if self.alias and self.alias != self.name:
            return schema.rename(self.alias)
        return schema

    @property
    def effective_name(self) -> str:
        return self.alias or self.name

    def label(self) -> str:
        if self.alias and self.alias != self.name:
            return f"{self.name} AS {self.alias}"
        return self.name

    def _key(self) -> tuple:
        return (self.name, self.alias)


class Materialized(PlanNode):
    """A leaf carrying an already-computed intermediate relation.

    The execution strategies (notably GBU) materialize partial results and
    feed them back into native subqueries; this node is how such data enters
    a plan.  Identity-based equality: two materializations are never "the
    same subtree".
    """

    kind = "materialized"

    def __init__(self, schema: TableSchema, rows: Sequence[tuple], name: str | None = None):
        self._schema = schema
        self.rows = list(rows)
        self.name = name or schema.name or "tmp"

    def with_children(self, children: Sequence[PlanNode]) -> "Materialized":
        if children:
            raise PlanError("materialized nodes have no children")
        return self

    def schema(self, catalog: Catalog) -> TableSchema:
        return self._schema

    def label(self) -> str:
        return f"[{self.name}: {len(self.rows)} rows]"

    def _key(self) -> tuple:
        return (id(self),)


class Select(PlanNode):
    """``σ_φ(child)``; φ may reference ``score``/``conf`` (post-filtering)."""

    kind = "select"

    def __init__(self, child: PlanNode, condition: Expr):
        self.child = child
        self.condition = condition

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[PlanNode]) -> "Select":
        (child,) = children
        return Select(child, self.condition)

    def schema(self, catalog: Catalog) -> TableSchema:
        return self.child.schema(catalog)

    def label(self) -> str:
        return f"σ[{self.condition!r}]"

    def _key(self) -> tuple:
        return (self.condition,)


class Project(PlanNode):
    """``π_attrs(child)`` — score/conf always survive (p-relation output)."""

    kind = "project"

    def __init__(self, child: PlanNode, attrs: Sequence[str]):
        if not attrs:
            raise PlanError("projection requires at least one attribute")
        self.child = child
        self.attrs = tuple(attrs)

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[PlanNode]) -> "Project":
        (child,) = children
        return Project(child, self.attrs)

    def schema(self, catalog: Catalog) -> TableSchema:
        return self.child.schema(catalog).project(self.attrs)

    def label(self) -> str:
        return f"π[{', '.join(self.attrs)}]"

    def _key(self) -> tuple:
        return (self.attrs,)


class Join(PlanNode):
    """``left ⋈_{φ,F} right`` — matched pairs combined through F."""

    kind = "join"

    def __init__(self, left: PlanNode, right: PlanNode, condition: Expr):
        self.left = left
        self.right = right
        self.condition = condition

    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)

    def with_children(self, children: Sequence[PlanNode]) -> "Join":
        left, right = children
        return Join(left, right, self.condition)

    def schema(self, catalog: Catalog) -> TableSchema:
        return self.left.schema(catalog).join(self.right.schema(catalog))

    def label(self) -> str:
        return f"⋈[{self.condition!r}]"

    def _key(self) -> tuple:
        return (self.condition,)


class LeftJoin(PlanNode):
    """``left ⟕_{φ,F} right`` — left outer join on p-relations.

    Matched pairs combine through F like an inner join; unmatched left
    tuples survive padded with NULLs on the right side and keep their own
    pair.  Useful for *membership* preferences that should boost tuples with
    a join partner without eliminating the rest (the paper's p7 evaluated
    non-restrictively).
    """

    kind = "left-join"

    def __init__(self, left: PlanNode, right: PlanNode, condition: Expr):
        self.left = left
        self.right = right
        self.condition = condition

    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)

    def with_children(self, children: Sequence[PlanNode]) -> "LeftJoin":
        left, right = children
        return LeftJoin(left, right, self.condition)

    def schema(self, catalog: Catalog) -> TableSchema:
        return self.left.schema(catalog).join(self.right.schema(catalog))

    def label(self) -> str:
        return f"⟕[{self.condition!r}]"

    def _key(self) -> tuple:
        return (self.condition,)


class _SetOperation(PlanNode):
    def __init__(self, left: PlanNode, right: PlanNode):
        self.left = left
        self.right = right

    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)

    def with_children(self, children: Sequence[PlanNode]) -> "_SetOperation":
        left, right = children
        return type(self)(left, right)

    def schema(self, catalog: Catalog) -> TableSchema:
        left = self.left.schema(catalog)
        right = self.right.schema(catalog)
        if not left.union_compatible(right):
            raise PlanError(f"{self.kind}: inputs are not union-compatible")
        return left


class Union(_SetOperation):
    kind = "union"

    def label(self) -> str:
        return "∪"


class Intersect(_SetOperation):
    kind = "intersect"

    def label(self) -> str:
        return "∩"


class Difference(_SetOperation):
    kind = "difference"

    def label(self) -> str:
        return "−"


class Prefer(PlanNode):
    """``λ_{p,F}(child)`` — evaluate one preference on the child p-relation.

    ``aggregate`` of ``None`` means "use the query-level default F"; the
    paper assumes the same F across all operators of a query (required for
    Properties 4.3/4.4), so a per-node override is only honoured when it
    matches the query default.
    """

    kind = "prefer"

    def __init__(
        self,
        child: PlanNode,
        preference: Preference,
        aggregate: AggregateFunction | None = None,
    ):
        self.child = child
        self.preference = preference
        self.aggregate = aggregate

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[PlanNode]) -> "Prefer":
        (child,) = children
        return Prefer(child, self.preference, self.aggregate)

    def schema(self, catalog: Catalog) -> TableSchema:
        return self.child.schema(catalog)

    def label(self) -> str:
        return f"λ[{self.preference.name}]"

    def _key(self) -> tuple:
        return (self.preference, self.aggregate)


class TopK(PlanNode):
    """``top(k, score|conf)`` — order by the pair component, keep k (Ex. 9).

    Tuples with ⊥ score order below every known score.  A filtering
    operator: it runs after all preference evaluation below it.
    """

    kind = "topk"

    def __init__(self, child: PlanNode, k: int, by: str = "score"):
        if k <= 0:
            raise PlanError(f"top-k requires k >= 1, got {k}")
        if by not in ("score", "conf"):
            raise PlanError(f"top-k orders by 'score' or 'conf', got {by!r}")
        self.child = child
        self.k = k
        self.by = by

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[PlanNode]) -> "TopK":
        (child,) = children
        return TopK(child, self.k, self.by)

    def schema(self, catalog: Catalog) -> TableSchema:
        return self.child.schema(catalog)

    def label(self) -> str:
        return f"top({self.k}, {self.by})"

    def _key(self) -> tuple:
        return (self.k, self.by)
