"""EXPLAIN-style pretty printing of extended query plans."""

from __future__ import annotations

from .nodes import PlanNode


def explain(plan: PlanNode) -> str:
    """Render *plan* as an indented operator tree, root first.

    Example::

        top(10, score)
        └─ π[title]
           └─ ⋈[(movies.d_id = directors.d_id)]
              ├─ σ[(movies.year = 2011)]
              │  └─ MOVIES
              └─ λ[p2]
                 └─ DIRECTORS
    """
    lines: list[str] = []
    _render(plan, prefix="", is_last=True, is_root=True, lines=lines)
    return "\n".join(lines)


def _render(
    node: PlanNode, prefix: str, is_last: bool, is_root: bool, lines: list[str]
) -> None:
    if is_root:
        lines.append(node.label())
        child_prefix = ""
    else:
        connector = "└─ " if is_last else "├─ "
        lines.append(prefix + connector + node.label())
        child_prefix = prefix + ("   " if is_last else "│  ")
    children = node.children()
    for index, child in enumerate(children):
        _render(child, child_prefix, index == len(children) - 1, False, lines)


def compact(plan: PlanNode) -> str:
    """One-line functional rendering, useful in assertion messages."""
    children = plan.children()
    if not children:
        return plan.label()
    inner = ", ".join(compact(child) for child in children)
    return f"{plan.label()}({inner})"


def explain_analyze(plan: PlanNode, trace) -> str:
    """EXPLAIN ANALYZE: the executed plan plus its per-operator trace.

    *trace* is the root :class:`repro.obs.Span` of a query run under a
    collecting tracer (``QueryResult.stats.trace``).  Each trace line
    carries the operator's plan label, row counts, score-relation sizes,
    aggregate applications and inclusive wall time.
    """
    from ..obs.render import render_trace

    rendered = "executed plan:\n" + explain(plan)
    if trace is None:
        return rendered + "\n\n(no trace recorded: run under a collecting tracer)"
    return rendered + "\n\nexecution trace:\n" + render_trace(trace)
