"""EXPLAIN-style pretty printing of extended query plans."""

from __future__ import annotations

from .nodes import PlanNode


def explain(plan: PlanNode) -> str:
    """Render *plan* as an indented operator tree, root first.

    Example::

        top(10, score)
        └─ π[title]
           └─ ⋈[(movies.d_id = directors.d_id)]
              ├─ σ[(movies.year = 2011)]
              │  └─ MOVIES
              └─ λ[p2]
                 └─ DIRECTORS
    """
    lines: list[str] = []
    _render(plan, prefix="", is_last=True, is_root=True, lines=lines)
    return "\n".join(lines)


def _render(
    node: PlanNode, prefix: str, is_last: bool, is_root: bool, lines: list[str]
) -> None:
    if is_root:
        lines.append(node.label())
        child_prefix = ""
    else:
        connector = "└─ " if is_last else "├─ "
        lines.append(prefix + connector + node.label())
        child_prefix = prefix + ("   " if is_last else "│  ")
    children = node.children()
    for index, child in enumerate(children):
        _render(child, child_prefix, index == len(children) - 1, False, lines)


def compact(plan: PlanNode) -> str:
    """One-line functional rendering, useful in assertion messages."""
    children = plan.children()
    if not children:
        return plan.label()
    inner = ", ".join(compact(child) for child in children)
    return f"{plan.label()}({inner})"
