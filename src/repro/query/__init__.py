"""User-facing query layer: SQL dialect, query compiler and sessions."""

from .model import PreferentialQuery, QueryCompiler
from .session import Session
from .sql import parse
from .store import PreferenceStore

__all__ = ["Session", "QueryCompiler", "PreferentialQuery", "parse", "PreferenceStore"]
