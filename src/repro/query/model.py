"""From parsed SQL to extended query plans.

This is the "query parser" box of the paper's architecture (Fig. 6): it
takes the user query plus its preferences and produces a baseline extended
query plan, keeping the order of operators as written.  Widening with the
attributes prefer operators need happens later, in
:meth:`repro.pexec.ExecutionEngine.prepare`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.preference import Preference
from ..core.scoring import ExprScore
from ..engine.catalog import Catalog
from ..engine.expressions import TRUE, Expr, conjoin, conjuncts
from ..errors import ParseError, PreferenceError
from ..plan.builder import natural_join_condition
from ..plan.nodes import (
    Difference,
    Intersect,
    Join,
    LeftJoin,
    PlanNode,
    Prefer,
    Project,
    Relation,
    Select,
    TopK,
    Union,
)
from .sql.ast import InlinePreference, SelectBlock, SetStatement, Statement
from .sql.parser import parse


@dataclass(frozen=True)
class PreferentialQuery:
    """A compiled preferential query: the plan plus presentation hints."""

    plan: PlanNode
    order_by: str | None = None  # rank the final result by 'score'/'conf'
    text: str | None = None
    aggregate: str | None = None  # USING clause: aggregate function name


class QueryCompiler:
    """Compiles SQL text into :class:`PreferentialQuery` objects.

    The registry may hold plain preferences or
    :class:`~repro.core.context.ContextualPreference` wrappers; the latter
    are resolved against the context returned by *context_provider* at
    compile time (an inactive contextual preference named in a PREFERRING
    clause is simply skipped — it does not apply in this context).
    """

    def __init__(
        self,
        catalog: Catalog,
        registry: dict[str, object] | None = None,
        context_provider=None,
    ):
        self.catalog = catalog
        self.registry = registry if registry is not None else {}
        self.context_provider = context_provider

    def compile(self, text: str) -> PreferentialQuery:
        statement = parse(text)
        plan, order_by, aggregate = self._statement(statement)
        return PreferentialQuery(plan, order_by, text, aggregate)

    # -- statement dispatch -----------------------------------------------------

    def _statement(
        self, statement: Statement
    ) -> tuple[PlanNode, str | None, str | None]:
        if isinstance(statement, SetStatement):
            left, _, left_aggregate = self._statement(statement.left)
            right, _, right_aggregate = self._statement(statement.right)
            if left_aggregate != right_aggregate:
                raise ParseError(
                    "all blocks of a set statement must share one USING "
                    "aggregate (F must be uniform across a query)"
                )
            node = {"union": Union, "intersect": Intersect, "except": Difference}[
                statement.op
            ](left, right)
            return node, None, left_aggregate
        return self._select_block(statement)

    def _select_block(
        self, block: SelectBlock
    ) -> tuple[PlanNode, str | None, str | None]:
        plan = self._from_clause(block)
        pre, post = self._split_where(block.where)
        if pre is not None:
            plan = Select(plan, pre)
        for preference in self._preferences(block):
            plan = Prefer(plan, preference)
        if block.attrs:
            plan = Project(plan, block.attrs)
        if post is not None:
            plan = Select(plan, post)
        if block.top_k is not None:
            plan = TopK(plan, block.top_k, block.top_by)
        return plan, block.order_by, block.aggregate

    # -- FROM -----------------------------------------------------------------

    def _from_clause(self, block: SelectBlock) -> PlanNode:
        refs = block.tables
        plan: PlanNode = Relation(refs[0].name, refs[0].alias)
        for ref in refs[1:]:
            right = Relation(ref.name, ref.alias)
            if ref.join_condition is not None:
                if ref.outer:
                    plan = LeftJoin(plan, right, ref.join_condition)
                else:
                    plan = Join(plan, right, ref.join_condition)
            elif ref.natural:
                plan = Join(plan, right, natural_join_condition(self.catalog, plan, right))
            else:
                plan = Join(plan, right, TRUE)  # comma: conditions come from WHERE
        return plan

    # -- WHERE ------------------------------------------------------------------

    @staticmethod
    def _split_where(where: Expr | None) -> tuple[Expr | None, Expr | None]:
        """Split WHERE into the boolean part and the score/conf post-filter.

        Conditions on ``score``/``conf`` depend on preference evaluation, so
        they are placed above the prefer operators (Property 4.1 would not
        let them commute downward anyway).
        """
        if where is None:
            return None, None
        pre: list[Expr] = []
        post: list[Expr] = []
        for part in conjuncts(where):
            (post if part.references_score() else pre).append(part)
        pre_expr = conjoin(pre) if pre else None
        post_expr = conjoin(post) if post else None
        return pre_expr, post_expr

    # -- PREFERRING ----------------------------------------------------------------

    def _preferences(self, block: SelectBlock) -> list[Preference]:
        out: list[Preference] = []
        for index, entry in enumerate(block.preferring):
            if isinstance(entry, str):
                registered = self.registry.get(entry.lower())
                if registered is None:
                    raise ParseError(f"unknown preference {entry!r}; register it first")
                from ..core.context import ContextualPreference

                if isinstance(registered, ContextualPreference):
                    context = self.context_provider() if self.context_provider else {}
                    if registered.is_active(context):
                        out.append(registered.preference)
                else:
                    out.append(registered)
            elif isinstance(entry, InlinePreference):
                out.append(self._inline(entry, block, index))
            else:  # pragma: no cover - parser guarantees the two cases
                raise PreferenceError(f"bad PREFERRING entry {entry!r}")
        return out

    def _inline(
        self, entry: InlinePreference, block: SelectBlock, index: int
    ) -> Preference:
        relations = entry.relations or self._infer_relations(entry, block)
        return Preference(
            name=f"inline#{index + 1}",
            relations=relations,
            condition=entry.condition,
            scoring=ExprScore(entry.score_expr),
            confidence=entry.confidence,
        )

    def _infer_relations(
        self, entry: InlinePreference, block: SelectBlock
    ) -> tuple[str, ...]:
        """The FROM tables owning the inline preference's attributes."""
        attrs = entry.condition.attributes() | entry.score_expr.attributes()
        owners: list[str] = []
        for ref in block.tables:
            name = (ref.alias or ref.name).upper()
            base = ref.name
            if not self.catalog.has_table(base):
                continue
            schema = self.catalog.table(base).schema
            if ref.alias:
                schema = schema.rename(name)
            if any(schema.has(a) for a in attrs):
                owners.append(name)
        if owners:
            return tuple(owners)
        return tuple((ref.alias or ref.name).upper() for ref in block.tables)
