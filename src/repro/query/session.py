"""High-level user API: a session over a preference-aware database.

Applications talk to :class:`Session`: register preferences once (the
system's preference store), then run SQL with ``PREFERRING`` clauses; plans,
optimization and strategy choice are handled underneath, mirroring how the
paper expects "preference-aware applications [to] provide an appropriate
interface ... preferences are automatically integrated into their queries".
"""

from __future__ import annotations

from typing import Iterable

from ..core.aggregates import F_S, AggregateFunction
from ..core.context import ContextualPreference
from ..core.preference import Preference
from ..engine.database import Database
from ..errors import PreferenceError
from ..filtering import ranked
from ..optimizer import OptimizerConfig
from ..pexec.engine import ExecutionEngine, QueryResult
from ..plan.nodes import PlanNode
from ..resilience import QueryGuard, ResiliencePolicy
from .model import PreferentialQuery, QueryCompiler


class Session:
    """A connection-like facade bundling database, preferences and engine."""

    def __init__(
        self,
        db: Database,
        strategy: str = "gbu",
        aggregate: AggregateFunction = F_S,
        optimizer_config: OptimizerConfig | None = None,
        *,
        strict: bool = False,
        resilience: ResiliencePolicy | None = None,
    ):
        self.db = db
        self.strategy = strategy
        #: Strict sessions audit every optimizer rewrite against the static
        #: plan verifier (:mod:`repro.analysis_static`) and refuse to execute
        #: a plan an invariant-breaking rule produced.
        self.strict = strict
        self.engine = ExecutionEngine(
            db, aggregate, optimizer_config, strict=strict, resilience=resilience
        )
        self.preferences: dict[str, Preference | ContextualPreference] = {}
        self.context: dict = {}
        self.compiler = QueryCompiler(
            db.catalog, self.preferences, context_provider=lambda: self.context
        )

    # -- preference store ----------------------------------------------------

    def register(self, preference: "Preference | ContextualPreference") -> None:
        """Add a (possibly context-dependent) preference under its name."""
        key = preference.name.lower()
        if key in self.preferences:
            raise PreferenceError(f"preference {preference.name!r} already registered")
        self.preferences[key] = preference

    def register_all(
        self, preferences: "Iterable[Preference | ContextualPreference]"
    ) -> None:
        for preference in preferences:
            self.register(preference)

    def unregister(self, name: str) -> None:
        self.preferences.pop(name.lower(), None)

    # -- external context ------------------------------------------------------

    def set_context(self, **values) -> None:
        """Update the session's external context (see repro.core.context).

        Contextual preferences referenced in PREFERRING clauses apply only
        while the context satisfies their activation condition::

            session.set_context(company="alone", daytime="evening")
        """
        self.context.update(values)

    def clear_context(self) -> None:
        self.context.clear()

    # -- querying ----------------------------------------------------------------

    def compile(self, text: str) -> PreferentialQuery:
        """Parse + plan a preferential SQL query without running it."""
        return self.compiler.compile(text)

    def execute(
        self,
        query: str | PlanNode | PreferentialQuery,
        strategy: str | None = None,
        tracer=None,
        *,
        timeout: float | None = None,
        max_rows: int | None = None,
        guard: QueryGuard | None = None,
        faults=None,
        resilience: ResiliencePolicy | None = None,
        batch_scoring: bool | None = None,
        columnar: bool | None = None,
        partitions: int | None = None,
    ) -> QueryResult:
        """Run SQL text, a plan, or a compiled query; returns a QueryResult.

        Pass a :class:`repro.obs.Tracer` as *tracer* to collect a
        per-operator execution trace (``result.stats.trace``).

        *timeout* (seconds) and *max_rows* build a per-call
        :class:`~repro.resilience.QueryGuard`; pass *guard* directly for
        finer control (tuple budgets, cancellation tokens) — the two forms
        are mutually exclusive.  *resilience* overrides the session's
        degradation policy for this call; *faults* installs a chaos
        :class:`~repro.resilience.FaultPlan`.

        *batch_scoring* toggles fused batch preference scoring (default on;
        see :mod:`repro.pexec.batchscore`): ``False`` runs the sequential
        per-preference reference fold instead.

        *columnar* routes the query through the columnar executor and
        *partitions* > 1 splits it over the partition-parallel worker pool
        (see :mod:`repro.pexec.parallel`); results are byte-identical to the
        row engine, with automatic fallback when the plan shape is
        unsupported.  ``result.stats.mode`` says which executor answered.
        """
        if guard is not None and (timeout is not None or max_rows is not None):
            raise PreferenceError(
                "pass either guard= or timeout=/max_rows=, not both"
            )
        if guard is None and (timeout is not None or max_rows is not None):
            guard = QueryGuard(timeout=timeout, max_rows=max_rows)
        order_by = None
        aggregate_name = None
        if isinstance(query, str):
            query = self.compile(query)
        if isinstance(query, PreferentialQuery):
            order_by = query.order_by
            aggregate_name = query.aggregate
            plan = query.plan
        else:
            plan = query
        engine = self.engine
        if aggregate_name is not None:
            from ..core.aggregates import get_aggregate

            engine = ExecutionEngine(
                self.db,
                get_aggregate(aggregate_name),
                self.engine.optimizer.config,
                strict=self.strict,
                resilience=self.engine.resilience,
            )
        result = engine.run(
            plan,
            strategy or self.strategy,
            tracer=tracer,
            guard=guard,
            faults=faults,
            resilience=resilience,
            batch_scoring=batch_scoring,
            columnar=columnar,
            partitions=partitions,
        )
        if order_by:
            result.relation = ranked(result.relation, order_by)
        return result

    def verify(
        self,
        query: "str | PlanNode | PreferentialQuery",
        *,
        optimized: bool = False,
        columnar: bool = False,
        partitions: int | None = None,
    ):
        """Statically verify a query's plan; returns a list of diagnostics.

        The plan is compiled and prepared (preference qualification +
        projection widening) exactly as :meth:`execute` would, then run
        through the static plan verifier
        (:func:`repro.analysis_static.verify_plan`).  With ``optimized=True``
        the preference-aware optimizer runs first and the verifier
        additionally checks prefer-chain ordering (Property 4.3's
        cheapest-first heuristic) — user-written plans are exempt from that
        check because the paper lets users write chains in any order.

        ``columnar=True`` additionally audits the columnar selection
        pushdown rewrite (RWxxx findings, exactly like optimizer rules);
        *partitions* runs the PV3xx partition-split verifier for that
        partition count — the same checks the strict engine applies before
        fanning workers out.
        """
        from ..analysis_static import verify_plan

        if isinstance(query, str):
            query = self.compile(query)
        plan = query.plan if isinstance(query, PreferentialQuery) else query
        prepared = self.engine.prepare(plan)
        if optimized:
            prepared = self.engine.optimizer.optimize(prepared)
        findings = verify_plan(
            prepared,
            self.db.catalog,
            ordered_chains=optimized,
            default_aggregate=self.engine.aggregate,
        )
        if columnar or partitions:
            from ..analysis_static import RewriteAuditor
            from ..columnar import push_selections

            pushed = push_selections(prepared, self.db.catalog)
            if pushed != prepared:
                auditor = RewriteAuditor(
                    self.db.catalog, default_aggregate=self.engine.aggregate
                )
                findings.extend(
                    auditor.audit("columnar.push_selections", prepared, pushed)
                )
        if partitions:
            from ..analysis_static import verify_partition_plan

            findings.extend(
                verify_partition_plan(
                    prepared, self.db.catalog, partitions=partitions
                )
            )
        return findings

    def explain(self, query: "str | PlanNode | PreferentialQuery", strategy: str | None = None) -> str:
        """EXPLAIN: the parsed extended plan and the plan the strategy runs.

        For the optimizer-driven strategies (``gbu``/``bu``) the second tree
        is the output of the preference-aware optimizer; for the others it
        is the widened parser output they organize themselves.
        """
        from ..plan.printer import explain as render

        if isinstance(query, str):
            query = self.compile(query)
        plan = query.plan if isinstance(query, PreferentialQuery) else query
        strategy = strategy or self.strategy
        prepared = self.engine.prepare(plan)
        if strategy in ("gbu", "bu"):
            executed = self.engine.optimizer.optimize(prepared)
            label = f"optimized plan ({strategy})"
        else:
            executed = prepared
            label = f"prepared plan ({strategy})"
        return (
            "extended query plan:\n"
            + render(plan)
            + f"\n\n{label}:\n"
            + render(executed)
        )

    def explain_analyze(
        self, query: "str | PlanNode | PreferentialQuery", strategy: str | None = None
    ) -> str:
        """Execute under a collecting tracer and render the EXPLAIN ANALYZE view.

        The output is the executed plan followed by the per-operator trace
        (rows in/out, score-relation sizes, aggregate applications, wall
        time per operator) and the query's summary statistics.
        """
        from ..obs import Tracer
        from ..plan.printer import explain_analyze as render

        tracer = Tracer()
        result = self.execute(query, strategy=strategy, tracer=tracer)
        return (
            render(result.executed_plan, result.stats.trace)
            + "\n\n"
            + result.stats.summary()
        )

    def why(self, result: QueryResult, index: int = 0):
        """Explain one tuple of a result: which preferences contributed.

        Returns a :class:`repro.pexec.provenance.TupleExplanation`;
        ``.describe()`` renders it for end users ("because you love
        comedies...").
        """
        return self.engine.explain_result(result, index)

    def rows(self, query, strategy: str | None = None) -> list[tuple]:
        """Convenience: execute and return presented rows with (score, conf).

        Each returned tuple is ``(*user_columns, score, conf)``.
        """
        result = self.execute(query, strategy)
        presented = result.presented()
        return [row + (score, conf) for row, score, conf in presented.triples()]
