"""SQL dialect: lexer, AST and parser for preferential queries."""

from .ast import InlinePreference, SelectBlock, SetStatement, Statement, TableRef
from .lexer import Token, tokenize
from .parser import parse

__all__ = [
    "parse",
    "tokenize",
    "Token",
    "Statement",
    "SelectBlock",
    "SetStatement",
    "TableRef",
    "InlinePreference",
]
