"""Abstract syntax of the preferential SQL dialect.

A statement is one or more SELECT blocks combined with set operators.  Each
block may carry a ``PREFERRING`` clause (named or inline preferences) and a
``TOP k BY score|conf`` / ``ORDER BY score|conf`` suffix — the paper's
preference evaluation and filtering phases, surfaced in the query language.
"""

from __future__ import annotations

from dataclasses import dataclass
from ...engine.expressions import Expr


@dataclass(frozen=True)
class TableRef:
    """A FROM-list entry: base table, optional alias, optional join condition."""

    name: str
    alias: str | None = None
    join_condition: Expr | None = None  # None on the first entry
    natural: bool = False
    outer: bool = False  # LEFT [OUTER] JOIN


@dataclass(frozen=True)
class InlinePreference:
    """An inline ``PREFERRING (cond) SCORE expr CONFIDENCE c [ON rels]``."""

    condition: Expr
    score_expr: Expr
    confidence: float
    relations: tuple[str, ...]  # empty → inferred from the FROM list


@dataclass(frozen=True)
class SelectBlock:
    """One SELECT ... FROM ... WHERE ... PREFERRING ... block."""

    attrs: tuple[str, ...]  # empty tuple → SELECT *
    tables: tuple[TableRef, ...]
    where: Expr | None = None
    preferring: tuple[object, ...] = ()  # str (registered name) | InlinePreference
    aggregate: str | None = None  # USING F_S|F_max|F_min
    top_k: int | None = None
    top_by: str = "score"
    order_by: str | None = None  # 'score' | 'conf' | None


@dataclass(frozen=True)
class SetStatement:
    """``left (UNION|INTERSECT|EXCEPT) right``."""

    op: str  # 'union' | 'intersect' | 'except'
    left: "Statement"
    right: "Statement"


Statement = SelectBlock | SetStatement
