"""Tokenizer for the preferential SQL dialect."""

from __future__ import annotations

from dataclasses import dataclass

from ...errors import ParseError

KEYWORDS = frozenset(
    {
        "select", "from", "where", "and", "or", "not", "join", "on", "as",
        "natural", "left", "outer", "in", "between", "is", "null", "preferring", "score",
        "confidence", "top", "by", "using", "union", "intersect", "except", "true",
        "false", "abs", "min", "max", "order", "asc", "desc",
    }
)

SYMBOLS = ("<=", ">=", "!=", "<>", "=", "<", ">", "(", ")", ",", "*", "+", "-", "/", ".")


@dataclass(frozen=True)
class Token:
    kind: str  # 'keyword' | 'name' | 'number' | 'string' | 'symbol' | 'eof'
    value: str
    line: int
    column: int

    def __repr__(self) -> str:
        return f"{self.kind}:{self.value!r}"


def tokenize(text: str) -> list[Token]:
    """Split *text* into tokens; raises :class:`ParseError` on bad input."""
    tokens: list[Token] = []
    index = 0
    line = 1
    line_start = 0
    length = len(text)
    while index < length:
        ch = text[index]
        column = index - line_start + 1
        if ch == "\n":
            line += 1
            line_start = index + 1
            index += 1
            continue
        if ch.isspace():
            index += 1
            continue
        if ch == "-" and text[index : index + 2] == "--":  # line comment
            while index < length and text[index] != "\n":
                index += 1
            continue
        if ch == "'":
            end = index + 1
            parts: list[str] = []
            while True:
                if end >= length:
                    raise ParseError("unterminated string literal", line, column)
                if text[end] == "'":
                    if text[end : end + 2] == "''":  # escaped quote
                        parts.append("'")
                        end += 2
                        continue
                    break
                parts.append(text[end])
                end += 1
            tokens.append(Token("string", "".join(parts), line, column))
            index = end + 1
            continue
        if ch.isdigit() or (ch == "." and index + 1 < length and text[index + 1].isdigit()):
            end = index
            seen_dot = False
            while end < length and (text[end].isdigit() or (text[end] == "." and not seen_dot)):
                if text[end] == ".":
                    # Don't swallow a trailing qualifier dot like "t.1" (invalid anyway).
                    if end + 1 >= length or not text[end + 1].isdigit():
                        break
                    seen_dot = True
                end += 1
            tokens.append(Token("number", text[index:end], line, column))
            index = end
            continue
        if ch.isalpha() or ch == "_":
            end = index
            while end < length and (text[end].isalnum() or text[end] == "_"):
                end += 1
            word = text[index:end]
            kind = "keyword" if word.lower() in KEYWORDS else "name"
            tokens.append(Token(kind, word.lower() if kind == "keyword" else word, line, column))
            index = end
            continue
        matched = False
        for symbol in SYMBOLS:
            if text.startswith(symbol, index):
                value = "!=" if symbol == "<>" else symbol
                tokens.append(Token("symbol", value, line, column))
                index += len(symbol)
                matched = True
                break
        if not matched:
            raise ParseError(f"unexpected character {ch!r}", line, column)
    tokens.append(Token("eof", "", line, length - line_start + 1))
    return tokens
