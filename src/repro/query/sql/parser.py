"""Recursive-descent parser for the preferential SQL dialect.

Supported shape (case-insensitive keywords)::

    SELECT title, director FROM MOVIES
      JOIN DIRECTORS ON MOVIES.d_id = DIRECTORS.d_id
      NATURAL JOIN GENRES
    WHERE year = 2011 AND conf >= 0.5
    PREFERRING p1, p2,
               (genre = 'Comedy') SCORE 0.8 CONFIDENCE 0.9 ON GENRES
    [USING F_max]
    TOP 10 BY score

``USING`` selects the aggregate function F for the whole query (default
F_S); the same F applies to every operator, as Properties 4.3/4.4 require.

The ON relation list of an inline preference is whitespace-separated
(``ON MOVIES DIRECTORS``); a comma would be ambiguous with the
PREFERRING-entry separator.

    <query> UNION <query> / INTERSECT / EXCEPT

``PREFERRING`` entries are either names of registered preferences or inline
triples; ``score``/``conf`` in WHERE express post-preference filtering.
"""

from __future__ import annotations

from ...engine.expressions import (
    And,
    Arithmetic,
    Attr,
    Between,
    Comparison,
    Expr,
    Func,
    InList,
    IsNull,
    Literal,
    Not,
    Or,
)
from ...errors import ParseError
from .ast import InlinePreference, SelectBlock, SetStatement, Statement, TableRef
from .lexer import Token, tokenize

_COMPARISON_OPS = {"=", "!=", "<", "<=", ">", ">="}


def parse(text: str) -> Statement:
    """Parse *text* into a :class:`Statement` AST."""
    return _Parser(tokenize(text)).parse_statement()


class _Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.position = 0

    # -- token plumbing ------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.position]

    def advance(self) -> Token:
        token = self.current
        if token.kind != "eof":
            self.position += 1
        return token

    def at_keyword(self, *words: str) -> bool:
        return self.current.kind == "keyword" and self.current.value in words

    def at_symbol(self, *symbols: str) -> bool:
        return self.current.kind == "symbol" and self.current.value in symbols

    def expect_keyword(self, word: str) -> Token:
        if not self.at_keyword(word):
            self._fail(f"expected {word.upper()}")
        return self.advance()

    def expect_symbol(self, symbol: str) -> Token:
        if not self.at_symbol(symbol):
            self._fail(f"expected {symbol!r}")
        return self.advance()

    def expect_name(self) -> str:
        if self.current.kind != "name":
            self._fail("expected an identifier")
        return self.advance().value

    def _fail(self, message: str) -> None:
        token = self.current
        raise ParseError(f"{message}, found {token.value!r}", token.line, token.column)

    # -- statements -----------------------------------------------------------

    def parse_statement(self) -> Statement:
        left: Statement = self.parse_select_block()
        while self.at_keyword("union", "intersect", "except"):
            op = self.advance().value
            right = self.parse_select_block()
            left = SetStatement(op, left, right)
        if self.current.kind != "eof":
            self._fail("unexpected trailing input")
        return left

    def parse_select_block(self) -> SelectBlock:
        self.expect_keyword("select")
        attrs = self._select_list()
        self.expect_keyword("from")
        tables = self._table_refs()
        where = None
        if self.at_keyword("where"):
            self.advance()
            where = self._or_expr()
        preferring: list[object] = []
        if self.at_keyword("preferring"):
            self.advance()
            preferring.append(self._preference())
            while self.at_symbol(","):
                self.advance()
                preferring.append(self._preference())
        aggregate = None
        if self.at_keyword("using"):
            self.advance()
            aggregate = self.expect_name()
        top_k = None
        top_by = "score"
        if self.at_keyword("top"):
            self.advance()
            top_k = int(self._number())
            self.expect_keyword("by")
            top_by = self._rank_attr()
        order_by = None
        if self.at_keyword("order"):
            self.advance()
            self.expect_keyword("by")
            order_by = self._rank_attr()
            if self.at_keyword("desc", "asc"):
                self.advance()  # ranking is always best-first; tolerate the noise
        return SelectBlock(
            attrs=tuple(attrs),
            tables=tuple(tables),
            where=where,
            preferring=tuple(preferring),
            aggregate=aggregate,
            top_k=top_k,
            top_by=top_by,
            order_by=order_by,
        )

    def _rank_attr(self) -> str:
        if self.at_keyword("score", "confidence"):
            word = self.advance().value
            return "score" if word == "score" else "conf"
        name = self.expect_name().lower()
        if name not in ("score", "conf"):
            self._fail("TOP/ORDER BY ranks by SCORE or CONF")
        return name

    # -- select list and FROM ---------------------------------------------------

    def _select_list(self) -> list[str]:
        if self.at_symbol("*"):
            self.advance()
            return []
        attrs = [self._attr_name()]
        while self.at_symbol(","):
            self.advance()
            attrs.append(self._attr_name())
        return attrs

    def _attr_name(self) -> str:
        name = self.expect_name()
        if self.at_symbol("."):
            self.advance()
            name = f"{name}.{self.expect_name()}"
        return name

    def _table_refs(self) -> list[TableRef]:
        refs = [self._table_ref(first=True)]
        while True:
            if self.at_symbol(","):
                self.advance()
                refs.append(self._table_ref(first=False, natural=False))
            elif self.at_keyword("natural"):
                self.advance()
                self.expect_keyword("join")
                refs.append(self._table_ref(first=False, natural=True))
            elif self.at_keyword("join"):
                self.advance()
                ref = self._table_ref(first=False, natural=False)
                self.expect_keyword("on")
                condition = self._or_expr()
                refs.append(
                    TableRef(ref.name, ref.alias, join_condition=condition)
                )
            elif self.at_keyword("left"):
                self.advance()
                if self.at_keyword("outer"):
                    self.advance()
                self.expect_keyword("join")
                ref = self._table_ref(first=False, natural=False)
                self.expect_keyword("on")
                condition = self._or_expr()
                refs.append(
                    TableRef(ref.name, ref.alias, join_condition=condition, outer=True)
                )
            else:
                break
        return refs

    def _table_ref(self, first: bool, natural: bool = False) -> TableRef:
        name = self.expect_name()
        alias = None
        if self.at_keyword("as"):
            self.advance()
            alias = self.expect_name()
        elif self.current.kind == "name":
            alias = self.advance().value
        return TableRef(name, alias, natural=natural and not first)

    # -- preferences -----------------------------------------------------------

    def _preference(self) -> object:
        if self.current.kind == "name":
            return self.expect_name()
        self.expect_symbol("(")
        condition = self._or_expr()
        self.expect_symbol(")")
        self.expect_keyword("score")
        score_expr = self._add_expr()
        confidence = 1.0
        if self.at_keyword("confidence"):
            self.advance()
            confidence = self._number()
        relations: list[str] = []
        if self.at_keyword("on"):
            # Whitespace-separated relation list: a comma would be ambiguous
            # with the PREFERRING-entry separator (ON MOVIES DIRECTORS, p2).
            self.advance()
            relations.append(self.expect_name())
            while self.current.kind == "name":
                relations.append(self.advance().value)
        return InlinePreference(condition, score_expr, confidence, tuple(relations))

    def _number(self) -> float:
        if self.current.kind != "number":
            self._fail("expected a number")
        return float(self.advance().value)

    # -- expressions --------------------------------------------------------------

    def _or_expr(self) -> Expr:
        expr = self._and_expr()
        while self.at_keyword("or"):
            self.advance()
            expr = Or(expr, self._and_expr())
        return expr

    def _and_expr(self) -> Expr:
        expr = self._not_expr()
        while self.at_keyword("and"):
            self.advance()
            expr = And(expr, self._not_expr())
        return expr

    def _not_expr(self) -> Expr:
        if self.at_keyword("not"):
            self.advance()
            return Not(self._not_expr())
        return self._predicate()

    def _predicate(self) -> Expr:
        left = self._add_expr()
        if self.current.kind == "symbol" and self.current.value in _COMPARISON_OPS:
            op = self.advance().value
            right = self._add_expr()
            return Comparison(op, left, right)
        if self.at_keyword("in"):
            self.advance()
            self.expect_symbol("(")
            values = [self._literal_value()]
            while self.at_symbol(","):
                self.advance()
                values.append(self._literal_value())
            self.expect_symbol(")")
            return InList(left, values)
        if self.at_keyword("between"):
            self.advance()
            low = self._literal_value()
            self.expect_keyword("and")
            high = self._literal_value()
            return Between(left, low, high)
        if self.at_keyword("is"):
            self.advance()
            negated = False
            if self.at_keyword("not"):
                self.advance()
                negated = True
            self.expect_keyword("null")
            return IsNull(left, negated)
        return left

    def _literal_value(self):
        if self.current.kind == "number":
            return _numeric(self.advance().value)
        if self.current.kind == "string":
            return self.advance().value
        if self.at_keyword("true"):
            self.advance()
            return True
        if self.at_keyword("false"):
            self.advance()
            return False
        self._fail("expected a literal value")

    def _add_expr(self) -> Expr:
        expr = self._mul_expr()
        while self.at_symbol("+", "-"):
            op = self.advance().value
            expr = Arithmetic(op, expr, self._mul_expr())
        return expr

    def _mul_expr(self) -> Expr:
        expr = self._unary()
        while self.at_symbol("*", "/"):
            op = self.advance().value
            expr = Arithmetic(op, expr, self._unary())
        return expr

    def _unary(self) -> Expr:
        if self.at_symbol("-"):
            self.advance()
            return Arithmetic("-", Literal(0), self._unary())
        return self._primary()

    def _primary(self) -> Expr:
        token = self.current
        if token.kind == "number":
            self.advance()
            return Literal(_numeric(token.value))
        if token.kind == "string":
            self.advance()
            return Literal(token.value)
        if self.at_keyword("true"):
            self.advance()
            return Literal(True)
        if self.at_keyword("false"):
            self.advance()
            return Literal(False)
        if self.at_keyword("abs", "min", "max"):
            name = self.advance().value
            self.expect_symbol("(")
            args = [self._or_expr()]
            while self.at_symbol(","):
                self.advance()
                args.append(self._or_expr())
            self.expect_symbol(")")
            return Func(name, *args)
        if self.at_keyword("score", "confidence"):
            # score/conf pseudo-attributes in post-filter conditions.
            word = self.advance().value
            return Attr("score" if word == "score" else "conf")
        if token.kind == "name":
            return Attr(self._attr_name())
        if self.at_symbol("("):
            self.advance()
            expr = self._or_expr()
            self.expect_symbol(")")
            return expr
        self._fail("expected an expression")
        raise AssertionError("unreachable")


def _numeric(text: str) -> int | float:
    if "." in text:
        return float(text)
    return int(text)
