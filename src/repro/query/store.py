"""Per-user preference stores and cross-user blending.

The paper's application scenario (Section V) keeps a set of collected
preferences per user and composes them — Q3 blends Alice's mandatory
preferences with Bob's for social recommendations.  This module provides the
bookkeeping: a :class:`PreferenceStore` maps users to their (possibly
context-dependent) preferences and hands out ready-made sessions.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Mapping

from ..core.aggregates import F_S, AggregateFunction
from ..core.context import ContextualPreference
from ..core.preference import Preference
from ..engine.database import Database
from ..errors import PreferenceError
from ..serve.rwlock import RWLock
from .session import Session

StoredPreference = "Preference | ContextualPreference"


class PreferenceStore:
    """Preferences collected per user, with session and blending helpers.

    Thread safety: every mutation takes the exclusive side of an internal
    readers/writer lock and bumps :attr:`version`; readers take the shared
    side and always observe a complete bucket.  :meth:`snapshot` captures a
    frozen copy for running queries against (preference objects themselves
    are immutable, so copying the per-user dictionaries suffices).
    """

    def __init__(self, db: Database):
        self.db = db
        self._by_user: dict[str, dict[str, object]] = {}
        self._lock = RWLock()
        #: Monotonic mutation counter, copied into snapshots.
        self.version = 0
        self._frozen = False
        #: Per-user profile-digest memo; entries are dropped by every
        #: mutation touching that user, so a cached digest is always current.
        self._profile_digests: dict[str, str] = {}

    # -- snapshots --------------------------------------------------------------

    @property
    def is_snapshot(self) -> bool:
        return self._frozen

    def snapshot(self, db: "Database | None" = None) -> "PreferenceStore":
        """A frozen copy of every user's preferences as of this instant.

        *db* lets callers bind the snapshot to a matching
        :meth:`Database.snapshot` so sessions built from it see one
        consistent (data, preferences) pair.  Snapshotting a snapshot
        returns it unchanged (possibly rebound to *db*).
        """
        if self._frozen and db is None:
            return self
        with self._lock.read_locked():
            clone = PreferenceStore(db if db is not None else self.db)
            clone._by_user = {
                user: dict(bucket) for user, bucket in self._by_user.items()
            }
            clone.version = self.version
            clone._frozen = True
            clone._profile_digests = dict(self._profile_digests)
            return clone

    def _ensure_mutable(self) -> None:
        if self._frozen:
            raise PreferenceError(
                "preference-store snapshot is read-only; mutate the live store"
            )

    # -- bookkeeping -----------------------------------------------------------

    def add(self, user: str, preference: "Preference | ContextualPreference") -> None:
        """Store *preference* for *user* (names are unique per user)."""
        with self._lock.write_locked():
            self._ensure_mutable()
            self._add_locked(user, preference)
            self.version += 1
            self._profile_digests.pop(user, None)

    def _add_locked(
        self, user: str, preference: "Preference | ContextualPreference"
    ) -> None:
        bucket = self._by_user.setdefault(user, {})
        key = preference.name.lower()
        if key in bucket:
            raise PreferenceError(
                f"user {user!r} already has a preference named {preference.name!r}"
            )
        bucket[key] = preference

    def add_all(
        self, user: str, preferences: Iterable["Preference | ContextualPreference"]
    ) -> None:
        """Store several preferences atomically: all of them or none.

        A name collision anywhere in the batch — against the user's existing
        preferences or within the batch itself — raises
        :exc:`~repro.errors.PreferenceError` naming the offending preference
        and leaves the store exactly as it was (no partial bucket).
        """
        batch = list(preferences)
        with self._lock.write_locked():
            self._ensure_mutable()
            staged = dict(self._by_user.get(user, {}))
            for preference in batch:
                key = preference.name.lower()
                if key in staged:
                    raise PreferenceError(
                        f"add_all rolled back: user {user!r} would get a "
                        f"duplicate preference named {preference.name!r}"
                    )
                staged[key] = preference
            if staged:
                self._by_user[user] = staged
            self.version += 1
            self._profile_digests.pop(user, None)

    def remove(self, user: str, name: str) -> bool:
        """Drop one stored preference; False when the user didn't have it."""
        with self._lock.write_locked():
            self._ensure_mutable()
            removed = self._by_user.get(user, {}).pop(name.lower(), None)
            if removed is not None:
                self.version += 1
                self._profile_digests.pop(user, None)
            return removed is not None

    def clear(self, user: str) -> int:
        """Drop all of *user*'s preferences; returns how many were removed."""
        with self._lock.write_locked():
            self._ensure_mutable()
            dropped = len(self._by_user.pop(user, {}))
            if dropped:
                self.version += 1
                self._profile_digests.pop(user, None)
            return dropped

    def preferences_of(self, user: str) -> list[object]:
        with self._lock.read_locked():
            return list(self._by_user.get(user, {}).values())

    def profile_digest(self, user: str) -> str:
        """sha256 over the user's canonically serialized preferences.

        Order-insensitive (serializations are sorted before hashing): two
        profiles digest equal iff they hold the same preference *set*.  The
        digest is memoized per user and the memo entry is dropped by
        :meth:`add`/:meth:`add_all`/:meth:`remove`/:meth:`clear`, so cache
        keys and invalidation never re-serialize an unchanged profile.
        An unknown user digests as the empty profile.

        Raises :exc:`~repro.errors.PreferenceError` when a stored preference
        has no canonical serialization (``CallableScore``, predicate
        contexts) — such profiles have no stable identity to cache under.
        """
        # Imported here, not at module top: the serve package initializer is
        # deliberately import-light and this module loads before it.
        from ..serve.codec import canonical_json, preference_to_dict

        with self._lock.read_locked():
            cached = self._profile_digests.get(user)
            if cached is not None:
                return cached
            stored = list(self._by_user.get(user, {}).values())
            body = canonical_json(
                sorted((preference_to_dict(s) for s in stored), key=canonical_json)
            )
            digest = hashlib.sha256(body.encode("utf-8")).hexdigest()
            # Benign to race with another reader: both compute the same
            # value, and writers (which would change it) are excluded for
            # as long as we hold the shared side.
            self._profile_digests[user] = digest
            return digest

    def users(self) -> list[str]:
        with self._lock.read_locked():
            return sorted(self._by_user)

    # -- sessions ---------------------------------------------------------------

    def session_for(
        self,
        user: str,
        strategy: str = "gbu",
        aggregate: AggregateFunction = F_S,
        context: Mapping | None = None,
    ) -> Session:
        """A session with the user's preferences registered."""
        session = Session(self.db, strategy=strategy, aggregate=aggregate)
        session.register_all(self.preferences_of(user))
        if context:
            session.set_context(**context)
        return session

    def blended_session(
        self,
        users: Iterable[str],
        strategy: str = "gbu",
        aggregate: AggregateFunction = F_S,
    ) -> Session:
        """A session carrying several users' preferences at once (Example 11).

        Name clashes across users are disambiguated by prefixing the user
        name (``alice.p2``); preferences keep their scores and confidences —
        applications wanting to weight one user over another can register
        re-scaled copies instead.
        """
        session = Session(self.db, strategy=strategy, aggregate=aggregate)
        taken: set[str] = set()
        for user in users:
            for stored in self.preferences_of(user):
                name = stored.name.lower()
                if name in taken:
                    stored = _renamed(stored, f"{user}.{stored.name}")
                taken.add(stored.name.lower())
                session.register(stored)
        return session


def _renamed(stored, new_name: str):
    if isinstance(stored, ContextualPreference):
        inner = stored.preference
        return ContextualPreference(
            Preference(new_name, inner.relations, inner.condition, inner.scoring, inner.confidence),
            stored.when,
        )
    return Preference(
        new_name, stored.relations, stored.condition, stored.scoring, stored.confidence
    )
