"""Per-user preference stores and cross-user blending.

The paper's application scenario (Section V) keeps a set of collected
preferences per user and composes them — Q3 blends Alice's mandatory
preferences with Bob's for social recommendations.  This module provides the
bookkeeping: a :class:`PreferenceStore` maps users to their (possibly
context-dependent) preferences and hands out ready-made sessions.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from ..core.aggregates import F_S, AggregateFunction
from ..core.context import ContextualPreference
from ..core.preference import Preference
from ..engine.database import Database
from ..errors import PreferenceError
from .session import Session

StoredPreference = "Preference | ContextualPreference"


class PreferenceStore:
    """Preferences collected per user, with session and blending helpers."""

    def __init__(self, db: Database):
        self.db = db
        self._by_user: dict[str, dict[str, object]] = {}

    # -- bookkeeping -----------------------------------------------------------

    def add(self, user: str, preference: "Preference | ContextualPreference") -> None:
        """Store *preference* for *user* (names are unique per user)."""
        bucket = self._by_user.setdefault(user, {})
        key = preference.name.lower()
        if key in bucket:
            raise PreferenceError(
                f"user {user!r} already has a preference named {preference.name!r}"
            )
        bucket[key] = preference

    def add_all(
        self, user: str, preferences: Iterable["Preference | ContextualPreference"]
    ) -> None:
        for preference in preferences:
            self.add(user, preference)

    def remove(self, user: str, name: str) -> bool:
        """Drop one stored preference; False when the user didn't have it."""
        removed = self._by_user.get(user, {}).pop(name.lower(), None)
        return removed is not None

    def clear(self, user: str) -> int:
        """Drop all of *user*'s preferences; returns how many were removed."""
        return len(self._by_user.pop(user, {}))

    def preferences_of(self, user: str) -> list[object]:
        return list(self._by_user.get(user, {}).values())

    def users(self) -> list[str]:
        return sorted(self._by_user)

    # -- sessions ---------------------------------------------------------------

    def session_for(
        self,
        user: str,
        strategy: str = "gbu",
        aggregate: AggregateFunction = F_S,
        context: Mapping | None = None,
    ) -> Session:
        """A session with the user's preferences registered."""
        session = Session(self.db, strategy=strategy, aggregate=aggregate)
        session.register_all(self.preferences_of(user))
        if context:
            session.set_context(**context)
        return session

    def blended_session(
        self,
        users: Iterable[str],
        strategy: str = "gbu",
        aggregate: AggregateFunction = F_S,
    ) -> Session:
        """A session carrying several users' preferences at once (Example 11).

        Name clashes across users are disambiguated by prefixing the user
        name (``alice.p2``); preferences keep their scores and confidences —
        applications wanting to weight one user over another can register
        re-scaled copies instead.
        """
        session = Session(self.db, strategy=strategy, aggregate=aggregate)
        taken: set[str] = set()
        for user in users:
            for stored in self.preferences_of(user):
                name = stored.name.lower()
                if name in taken:
                    stored = _renamed(stored, f"{user}.{stored.name}")
                taken.add(stored.name.lower())
                session.register(stored)
        return session


def _renamed(stored, new_name: str):
    if isinstance(stored, ContextualPreference):
        inner = stored.preference
        return ContextualPreference(
            Preference(new_name, inner.relations, inner.condition, inner.scoring, inner.confidence),
            stored.when,
        )
    return Preference(
        new_name, stored.relations, stored.condition, stored.scoring, stored.confidence
    )
