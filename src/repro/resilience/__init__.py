"""Fault tolerance and resource governance for the execution stack.

Four cooperating pieces (see ``docs/RESILIENCE.md``):

* **Query guards** (:mod:`.guard`) — deadlines, row/tuple budgets and
  cooperative cancellation, checked at operator boundaries in every
  strategy and in the native engine.
* **Fault injection** (:mod:`.faults`) — seeded, deterministic fault plans
  that make robustness testable (``python -m repro chaos``).
* **Retry and circuit breaking** (:mod:`.retry`) — exponential backoff for
  transient faults, per-strategy health tracking.
* **Degradation policy** (:mod:`.policy`) — the fallback chain that re-runs
  a failed query on the next strategy and marks the result ``degraded``.
* **Durability VFS** (:mod:`.vfs`) — the pluggable file-system layer every
  durability module writes through; :class:`FaultyVFS` deterministically
  injects short writes, I/O errors, torn renames and power cuts for the
  crash-torture harness (``python -m repro crash-torture``).

The chaos runner lives in :mod:`repro.resilience.chaos` and the crash-torture
harness in :mod:`repro.resilience.crashtest`; both are imported lazily by the
CLI to keep this package free of execution-layer imports.
"""

from .faults import (
    NULL_FAULTS,
    FaultPlan,
    FaultSpec,
    Injection,
    current_faults,
    use_faults,
)
from .guard import (
    NULL_GUARD,
    CancellationToken,
    QueryGuard,
    capture_guard,
    current_guard,
    restore_guard,
    use_guard,
)
from .policy import DEFAULT_FALLBACK, ResiliencePolicy
from .retry import CircuitBreaker, RetryBudget, RetryPolicy
from .vfs import (
    FAULT_KINDS,
    REAL_VFS,
    FaultyVFS,
    RealVFS,
    VfsFault,
    current_vfs,
    use_vfs,
)

__all__ = [
    "QueryGuard",
    "CancellationToken",
    "NULL_GUARD",
    "current_guard",
    "capture_guard",
    "restore_guard",
    "use_guard",
    "FaultPlan",
    "FaultSpec",
    "Injection",
    "NULL_FAULTS",
    "current_faults",
    "use_faults",
    "RetryPolicy",
    "RetryBudget",
    "CircuitBreaker",
    "ResiliencePolicy",
    "DEFAULT_FALLBACK",
    "RealVFS",
    "FaultyVFS",
    "VfsFault",
    "REAL_VFS",
    "FAULT_KINDS",
    "current_vfs",
    "use_vfs",
]
