"""Seeded chaos conformance suite: ``python -m repro chaos``.

The resilience contract this suite enforces: under fault injection, every
execution strategy either produces **exactly** the answer the unfaulted
reference oracle produces, or fails with a **typed** resilience error — a
silently wrong answer is the one outcome that is never acceptable.  A
second pass re-runs every failing scenario under a
:class:`~repro.resilience.ResiliencePolicy` and checks that retry +
strategy fallback recover the oracle answer with ``degraded=True`` recorded
in the stats.

Everything is deterministic: the dataset generator, the workload queries
and the :class:`~repro.resilience.FaultPlan` are all seeded, so a failing
``(scenario, query, strategy, seed)`` cell reproduces exactly.

This module imports the execution stack and workloads, so it is *not*
re-exported from :mod:`repro.resilience` (which stays import-light); the
CLI imports it lazily.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..errors import QueryTimeout, ReproError, ResilienceError
from .faults import FaultPlan, FaultSpec
from .guard import QueryGuard
from .policy import ResiliencePolicy
from .retry import RetryPolicy


def _no_sleep(_seconds: float) -> None:
    """Backoff sleep replacement so chaos runs take milliseconds."""


@dataclass(frozen=True)
class ChaosScenario:
    """One named fault schedule to subject every (query, strategy) cell to.

    ``build(seed)`` returns a fresh :class:`FaultPlan` — fresh per cell,
    because plans carry injection bookkeeping.  ``benign`` scenarios (pure
    latency) must not change the answer at all; the others are expected to
    fail typed without a policy and recover degraded with one.
    """

    name: str
    description: str
    build: Callable[[int], FaultPlan]
    benign: bool = False


def builtin_scenarios() -> list[ChaosScenario]:
    """The built-in fault schedules, covering every instrumented site."""
    return [
        ChaosScenario(
            "transient-io",
            "one transient failure on the first simulated page read",
            lambda seed: FaultPlan.transient("iosim.scan", times=1, seed=seed),
        ),
        ChaosScenario(
            "transient-dispatch",
            "one transient failure in native-engine operator dispatch",
            lambda seed: FaultPlan.transient("native.dispatch", times=1, seed=seed),
        ),
        ChaosScenario(
            "strategy-crash",
            "one transient failure at a strategy operator boundary",
            lambda seed: FaultPlan.transient("strategy.*", times=1, seed=seed),
        ),
        ChaosScenario(
            "slow-io",
            "2ms of injected latency spread over early page reads (benign)",
            lambda seed: FaultPlan(
                [FaultSpec("iosim.scan", "latency", delay=0.0005, times=4)], seed=seed
            ),
            benign=True,
        ),
        ChaosScenario(
            "score-corruption",
            "one score pair corrupted in the result; the integrity gate "
            "must turn it into DataCorruption",
            lambda seed: FaultPlan.corrupting("pexec.scores", times=1, seed=seed),
        ),
        ChaosScenario(
            "flaky-mix",
            "30%-probability transient page-read failures (max 3) plus "
            "occasional latency",
            lambda seed: FaultPlan(
                [
                    FaultSpec("iosim.scan", "transient", probability=0.3, times=3),
                    FaultSpec("iosim.scan", "latency", delay=0.0002, times=2, after=1),
                ],
                seed=seed,
            ),
        ),
    ]


@dataclass
class ChaosCell:
    """Outcome of one (scenario, query, strategy, mode) execution."""

    scenario: str
    query: str
    strategy: str
    mode: str  # 'strict' (no policy) | 'fallback'
    outcome: str
    ok: bool
    detail: str = ""


@dataclass
class ChaosReport:
    """All cells of a chaos run plus the verdict."""

    seed: int
    scale: float
    cells: list[ChaosCell] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(cell.ok for cell in self.cells)

    @property
    def failures(self) -> list[ChaosCell]:
        return [cell for cell in self.cells if not cell.ok]

    def describe(self) -> str:
        lines = [f"chaos run: seed={self.seed} scale={self.scale}"]
        by_scenario: dict[str, list[ChaosCell]] = {}
        for cell in self.cells:
            by_scenario.setdefault(cell.scenario, []).append(cell)
        for scenario, cells in by_scenario.items():
            good = sum(1 for c in cells if c.ok)
            verdict = "PASS" if good == len(cells) else "FAIL"
            outcomes = sorted({c.outcome for c in cells if c.ok})
            lines.append(
                f"  {scenario:<20} {good}/{len(cells)} cells ok  [{verdict}]"
                + (f"  ({', '.join(outcomes)})" if outcomes else "")
            )
        for cell in self.failures:
            lines.append(
                f"  FAIL {cell.scenario} / {cell.query} / {cell.strategy} "
                f"[{cell.mode}]: {cell.outcome} — {cell.detail}"
            )
        total_ok = sum(1 for c in self.cells if c.ok)
        lines.append(
            f"chaos: {total_ok}/{len(self.cells)} cells conformant — "
            + ("OK" if self.ok else "FAILED")
        )
        return "\n".join(lines)


def _triples(result) -> list[tuple]:
    """A result's presented rows as a canonical, order-independent set."""
    presented = result.presented()
    rounded = []
    for row, score, conf in presented.triples():
        rounded.append(
            (
                row,
                None if score is None else round(score, 9),
                round(conf, 9),
            )
        )
    return sorted(rounded, key=repr)


def run_chaos(
    seed: int = 42,
    scale: float = 0.001,
    scenarios: list[ChaosScenario] | None = None,
    strategies=None,
    sanitize: bool | None = None,
) -> ChaosReport:
    """Run every scenario × workload query × strategy; return the report.

    Two modes per cell:

    * **strict** — no resilience policy.  Conformant when the faulted run
      matches the unfaulted oracle exactly, or raises a typed
      :exc:`~repro.errors.ReproError` (a resilience error or the integrity
      gate's :exc:`~repro.errors.DataCorruption`).
    * **fallback** — same plan under a ``ResiliencePolicy`` (instant
      backoff).  Conformant when the answer matches the oracle and, if any
      failure was actually injected, the stats say ``degraded=True``.

    *sanitize* runs the whole sweep under a fresh concurrency sanitizer
    (:mod:`repro.analysis_static.sanitizer`); any SANxxx finding becomes a
    failing ``sanitizer`` cell.  Defaults to the ``REPRO_SANITIZE``
    environment switch, so the CI sanitize job needs no code changes here.
    """
    from ..analysis_static.sanitizer import env_sanitize_enabled, use_sanitizer
    from ..pexec.engine import STRATEGIES
    from ..workloads.imdb import generate_imdb

    if scenarios is None:
        scenarios = builtin_scenarios()
    if strategies is None:
        strategies = STRATEGIES
    db = generate_imdb(scale=scale, seed=seed)
    report = ChaosReport(seed=seed, scale=scale)
    if sanitize is None:
        sanitize = env_sanitize_enabled()
    if sanitize:
        with use_sanitizer() as sanitizer:
            _run_all_cells(report, db, scenarios, strategies, seed)
        for diagnostic in sanitizer.findings:
            report.cells.append(
                ChaosCell(
                    "sanitizer",
                    "-",
                    "-",
                    "strict",
                    f"sanitizer:{diagnostic.code}",
                    ok=False,
                    detail=str(diagnostic),
                )
            )
    else:
        _run_all_cells(report, db, scenarios, strategies, seed)
    return report


def _run_all_cells(report, db, scenarios, strategies, seed) -> None:
    from ..workloads.queries import imdb_queries

    for query in imdb_queries():
        session = query.session(db)
        oracle = _triples(session.execute(query.sql, strategy="reference"))
        for scenario in scenarios:
            for strategy in strategies:
                report.cells.append(
                    _strict_cell(session, query, strategy, scenario, seed, oracle)
                )
                report.cells.append(
                    _fallback_cell(session, query, strategy, scenario, seed, oracle)
                )


def _strict_cell(session, query, strategy, scenario, seed, oracle) -> ChaosCell:
    plan = scenario.build(seed)
    cell = ChaosCell(scenario.name, query.name, strategy, "strict", "", ok=False)
    try:
        result = session.execute(query.sql, strategy=strategy, faults=plan)
    except ReproError as err:
        cell.outcome = f"typed-error:{type(err).__name__}"
        # A benign (latency-only) scenario must not fail at all.
        cell.ok = not scenario.benign
        cell.detail = "" if cell.ok else f"benign scenario raised {err!r}"
        return cell
    except Exception as err:  # noqa: BLE001 - untyped escape is the bug we hunt
        cell.outcome = f"untyped-error:{type(err).__name__}"
        cell.detail = repr(err)
        return cell
    if _triples(result) == oracle:
        cell.outcome = "match"
        cell.ok = True
    else:
        cell.outcome = "silent-mismatch"
        cell.detail = (
            f"faulted answer differs from oracle ({len(plan.injections)} "
            "injections performed) without any error"
        )
    return cell


def _fallback_cell(session, query, strategy, scenario, seed, oracle) -> ChaosCell:
    plan = scenario.build(seed)
    policy = ResiliencePolicy(
        retry=RetryPolicy(attempts=3, base_delay=0.0, sleep=_no_sleep)
    )
    cell = ChaosCell(scenario.name, query.name, strategy, "fallback", "", ok=False)
    try:
        result = session.execute(
            query.sql, strategy=strategy, faults=plan, resilience=policy
        )
    except Exception as err:  # noqa: BLE001 - fallback must recover these plans
        cell.outcome = f"unrecovered:{type(err).__name__}"
        cell.detail = repr(err)
        return cell
    if _triples(result) != oracle:
        cell.outcome = "silent-mismatch"
        cell.detail = "fallback answer differs from oracle"
        return cell
    injected_failures = [i for i in plan.injections if i.kind != "latency"]
    if injected_failures and not result.stats.degraded:
        cell.outcome = "undeclared-degradation"
        cell.detail = (
            f"{len(injected_failures)} failure(s) injected but stats.degraded "
            "is False"
        )
        return cell
    cell.outcome = "recovered-degraded" if injected_failures else "match"
    cell.ok = True
    return cell


@dataclass
class SmokeOutcome:
    """Result of the timeout smoke test."""

    ok: bool
    message: str


def timeout_smoke(scale: float = 0.001, timeout: float = 0.001) -> SmokeOutcome:
    """A query with a 1ms deadline must raise QueryTimeout, not hang.

    Injected page-read latency (10 × 1ms) guarantees the deadline expires
    mid-query regardless of machine speed, so the assertion is about the
    guard firing, not about the query being slow.
    """
    from ..workloads.imdb import generate_imdb
    from ..workloads.queries import imdb_1

    query = imdb_1()
    session = query.session(generate_imdb(scale=scale, seed=7))
    guard = QueryGuard(timeout=timeout)
    slow = FaultPlan(
        [FaultSpec("iosim.scan", "latency", delay=timeout, times=10)], seed=7
    )
    try:
        session.execute(query.sql, strategy="gbu", guard=guard, faults=slow)
    except QueryTimeout as err:
        return SmokeOutcome(True, f"timeout smoke: OK ({err})")
    except Exception as err:  # noqa: BLE001 - anything else fails the smoke
        return SmokeOutcome(
            False, f"timeout smoke: FAILED — raised {type(err).__name__} ({err})"
        )
    return SmokeOutcome(
        False,
        "timeout smoke: FAILED — query completed despite the expired deadline",
    )
