"""Concurrent chaos: writers mutate state while readers must stay exact.

Two fixtures extend the single-threaded conformance suite in
:mod:`repro.resilience.chaos` to the serving layer
(``python -m repro chaos --scenario concurrent``):

* :func:`run_concurrent_chaos` — N writer threads stream preference
  mutations and row inserts through a live
  :class:`~repro.serve.server.PreferenceServer` while M reader tasks,
  admitted through a :class:`~repro.serve.executor.ServeExecutor`, each
  capture a snapshot and run a preferential IMDB query under seeded fault
  injection.  The contract is the snapshot-isolation analogue of the chaos
  contract: every query must **exactly** match the reference oracle
  evaluated *on its own snapshot* — whatever preference set and row set the
  snapshot captured — or fail with a typed resilience error; fallback-mode
  cells must additionally recover the oracle answer.  A sampled
  digest-before/digest-after check proves no writer mutated a captured
  snapshot in place.
* :func:`wal_recovery_check` — builds a durable server, records the state
  digest at every LSN, then simulates a crash at a spread of byte offsets
  in the WAL (record boundaries and mid-record).  Re-opening the truncated
  directory must recover **exactly** the state whose digest was recorded
  after the last record surviving below the cut — i.e. recovery equals
  replaying the surviving prefix, verified by sha256.

Verdicts are deterministic even though thread interleavings are not: each
cell is judged against the snapshot it actually captured, so *every*
interleaving must pass.
"""

from __future__ import annotations

import os
import random
import shutil
import threading
from dataclasses import dataclass, field

from ..core.preference import Preference
from ..core.scoring import recency_score
from ..engine.expressions import cmp, eq
from ..errors import ReproError
from .chaos import _no_sleep, _triples
from .faults import FaultPlan, FaultSpec
from .guard import QueryGuard
from .policy import ResiliencePolicy
from .retry import RetryPolicy

#: The query template readers run; the PREFERRING list is whatever the
#: captured snapshot holds for the chosen user.
READER_SQL = """
    SELECT title, director, year FROM MOVIES
      NATURAL JOIN GENRES
      NATURAL JOIN DIRECTORS
    WHERE year >= 1980
    PREFERRING {names}
    TOP 10 BY score
"""


def preference_pool() -> list[Preference]:
    """The WAL-loggable preferences writers shuffle in and out of buckets."""
    pool: list[Preference] = []
    for genre in ("Comedy", "Drama", "Action", "Thriller"):
        pool.append(
            Preference(f"g_{genre.lower()}", "GENRES", eq("genre", genre), 0.8, 0.9)
        )
    for d_id in (1, 2, 3, 5, 8):
        pool.append(Preference(f"d_{d_id}", "DIRECTORS", eq("d_id", d_id), 0.9, 0.8))
    for year in (1990, 2000, 2005):
        pool.append(
            Preference(
                f"y_{year}",
                "MOVIES",
                cmp("year", ">=", year),
                recency_score("year", 2011),
                0.7,
            )
        )
    return pool


def _base_preference() -> Preference:
    """The per-user preference writers never remove, so PREFERRING is never empty."""
    return Preference(
        "base", "MOVIES", cmp("year", ">=", 1900), recency_score("year", 2011), 1.0
    )


def _fault_plan(index: int, seed: int) -> "FaultPlan | None":
    """Deterministic rotation over the fault kinds (every 4th pair unfaulted).

    Paired with the strict/fallback mode alternation on ``index % 2``, the
    ``index // 2`` rotation gives every fault kind to both modes.
    """
    kind = (index // 2) % 4
    cell_seed = seed * 7919 + index
    if kind == 0:
        return FaultPlan.transient("strategy.*", times=1, seed=cell_seed)
    if kind == 1:
        return FaultPlan(
            [FaultSpec("iosim.scan", "latency", delay=0.0002, times=2)], seed=cell_seed
        )
    if kind == 2:
        return FaultPlan.corrupting("pexec.scores", times=1, seed=cell_seed)
    return None


@dataclass
class ConcurrentCell:
    """Outcome of one reader query: who ran what against which snapshot."""

    reader: int
    index: int
    user: str
    strategy: str
    mode: str  # 'strict' | 'fallback'
    outcome: str
    ok: bool
    detail: str = ""


@dataclass
class ConcurrentChaosReport:
    """Everything a concurrent chaos run observed, plus the verdict."""

    seed: int
    scale: float
    writers: int
    readers: int
    cells: list[ConcurrentCell] = field(default_factory=list)
    writer_ops: int = 0
    snapshot_checks: int = 0
    latency: dict = field(default_factory=dict)
    errors: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors and all(cell.ok for cell in self.cells)

    @property
    def failures(self) -> list[ConcurrentCell]:
        return [cell for cell in self.cells if not cell.ok]

    def describe(self) -> str:
        lines = [
            f"concurrent chaos: seed={self.seed} scale={self.scale} "
            f"writers={self.writers} readers={self.readers}"
        ]
        by_outcome: dict[str, int] = {}
        for cell in self.cells:
            by_outcome[cell.outcome] = by_outcome.get(cell.outcome, 0) + 1
        for outcome in sorted(by_outcome):
            lines.append(f"  {outcome:<24} {by_outcome[outcome]}")
        lines.append(
            f"  writer mutations applied: {self.writer_ops}; "
            f"snapshot immutability checks: {self.snapshot_checks}"
        )
        if self.latency:
            lines.append(
                "  admission: admitted={admitted} shed={shed}  "
                "p50={p50_ms}ms p95={p95_ms}ms p99={p99_ms}ms".format(**self.latency)
            )
        for cell in self.failures:
            lines.append(
                f"  FAIL reader{cell.reader}#{cell.index} user={cell.user} "
                f"{cell.strategy} [{cell.mode}]: {cell.outcome} — {cell.detail}"
            )
        for error in self.errors:
            lines.append(f"  ERROR {error}")
        good = sum(1 for c in self.cells if c.ok)
        lines.append(
            f"concurrent chaos: {good}/{len(self.cells)} cells conformant — "
            + ("OK" if self.ok else "FAILED")
        )
        return "\n".join(lines)


def run_concurrent_chaos(
    seed: int = 42,
    scale: float = 0.001,
    writers: int = 4,
    readers: int = 4,
    queries_per_reader: int = 8,
    strategies=None,
    sanitize: bool | None = None,
) -> ConcurrentChaosReport:
    """N writers mutate the live server while M readers must stay exact.

    Writers stream preference add/remove/clear (plus movie inserts from
    writer 0) through the single server write path; each reader task
    captures a fresh :class:`~repro.serve.server.ServerSnapshot`, computes
    the reference oracle *on that snapshot*, then re-runs the query under a
    seeded fault plan — strict cells must match or fail typed, fallback
    cells must recover the oracle answer.  Reader tasks are admitted
    through a :class:`~repro.serve.executor.ServeExecutor`, so the run also
    exercises admission accounting and cross-thread guard/tracer capture.

    *sanitize* (default: the ``REPRO_SANITIZE`` environment switch) runs
    the whole scenario under a fresh concurrency sanitizer — this is the
    run where lock-order and COW findings would actually appear, since all
    threads hammer one server; any SANxxx finding lands in
    ``report.errors`` and fails the run.
    """
    from ..analysis_static.sanitizer import env_sanitize_enabled, use_sanitizer
    from ..pexec.engine import STRATEGIES

    if sanitize is None:
        sanitize = env_sanitize_enabled()
    if sanitize:
        with use_sanitizer() as sanitizer:
            report = run_concurrent_chaos(
                seed=seed,
                scale=scale,
                writers=writers,
                readers=readers,
                queries_per_reader=queries_per_reader,
                strategies=strategies,
                sanitize=False,
            )
        for diagnostic in sanitizer.findings:
            report.errors.append(f"sanitizer: {diagnostic}")
        return report
    from ..serve.executor import ServeExecutor
    from ..serve.server import PreferenceServer
    from ..workloads.imdb import generate_imdb

    if strategies is None:
        strategies = [s for s in STRATEGIES if s != "reference"]
    report = ConcurrentChaosReport(
        seed=seed, scale=scale, writers=writers, readers=readers
    )
    server = PreferenceServer(generate_imdb(scale=scale, seed=seed))
    users = [f"u{i}" for i in range(max(1, writers))]
    for user in users:
        server.add_preference(user, _base_preference())
    pool = preference_pool()

    stop_writers = threading.Event()
    ops_lock = threading.Lock()

    def writer_loop(writer_id: int) -> None:
        rng = random.Random(seed * 1009 + writer_id)
        applied = 0
        next_m_id = 10_000_000 + writer_id * 100_000
        while not stop_writers.is_set():
            user = rng.choice(users)
            roll = rng.random()
            try:
                if roll < 0.55:
                    server.add_preference(user, rng.choice(pool))
                elif roll < 0.80:
                    server.remove_preference(user, rng.choice(pool).name)
                elif roll < 0.90:
                    server.clear_preferences(user)
                    server.add_preference(user, _base_preference())
                elif writer_id == 0:
                    next_m_id += 1
                    year = 1980 + rng.randrange(30)
                    server.insert(
                        "MOVIES",
                        (next_m_id, f"chaos movie {next_m_id}", year, 100, 1),
                    )
                    server.insert("GENRES", (next_m_id, rng.choice(("Comedy", "Drama"))))
                applied += 1
            except ReproError as err:
                # Duplicate adds / races on remove are expected churn; anything
                # else is a real serving-layer bug and fails the run.
                if "duplicate" not in str(err) and "already" not in str(err):
                    report.errors.append(f"writer{writer_id}: {err!r}")
                    return
            except Exception as err:  # noqa: BLE001 - untyped writer crash fails the run
                report.errors.append(f"writer{writer_id} crashed untyped: {err!r}")
                return
        with ops_lock:
            report.writer_ops += applied

    def reader_cell(reader_id: int, index: int) -> ConcurrentCell:
        rng = random.Random(seed * 31 + reader_id * 1000 + index)
        user = rng.choice(users)
        strategy = strategies[(reader_id + index) % len(strategies)]
        mode = "strict" if index % 2 == 0 else "fallback"
        cell = ConcurrentCell(reader_id, index, user, strategy, mode, "", ok=False)
        snapshot = server.snapshot()
        names = sorted(p.name for p in snapshot.store.preferences_of(user))
        if not names:
            # A reader can land between clear() and the base re-add; that
            # snapshot simply has nothing to prefer.
            cell.outcome, cell.ok = "empty-bucket", True
            return cell
        sql = READER_SQL.format(names=", ".join(names))
        check_digest = index % 3 == 0
        digest_before = snapshot.digest() if check_digest else None

        def judge() -> None:
            oracle = _triples(
                snapshot.session_for(user).execute(sql, strategy="reference")
            )
            plan = _fault_plan(index, seed)
            session = snapshot.session_for(user)
            guard = QueryGuard(timeout=60.0)
            try:
                if mode == "strict":
                    result = session.execute(
                        sql, strategy=strategy, faults=plan, guard=guard
                    )
                else:
                    policy = ResiliencePolicy(
                        retry=RetryPolicy(attempts=3, base_delay=0.0, sleep=_no_sleep)
                    )
                    result = session.execute(
                        sql, strategy=strategy, faults=plan, guard=guard,
                        resilience=policy,
                    )
            except ReproError as err:
                if mode == "strict":
                    cell.outcome, cell.ok = f"typed-error:{type(err).__name__}", True
                else:
                    cell.outcome = f"unrecovered:{type(err).__name__}"
                    cell.detail = repr(err)
                return
            except Exception as err:  # noqa: BLE001 - untyped escape is the bug we hunt
                cell.outcome = f"untyped-error:{type(err).__name__}"
                cell.detail = repr(err)
                return
            answer = _triples(result)
            if answer != oracle:
                cell.outcome = "silent-mismatch"
                dump = os.environ.get("REPRO_CHAOS_DUMP")
                if dump:  # debugging aid: preserve the failing snapshot
                    from ..engine.persist import save_database
                    from ..serve.server import _save_preferences

                    target = os.path.join(dump, f"cell-{reader_id}-{index}")
                    save_database(snapshot.db, os.path.join(target, "db"))
                    _save_preferences(os.path.join(target, "prefs.json"), snapshot.store)
                # A clean re-run on the same snapshot pins the blame: if it
                # matches the oracle, the faulted execution itself was wrong;
                # if it differs too, the snapshot's query-visible state moved.
                rerun = _triples(snapshot.session_for(user).execute(sql, strategy=strategy))
                cell.detail = (
                    f"answer differs from the oracle computed on this snapshot "
                    f"(prefs={names}, |oracle|={len(oracle)}, |answer|={len(answer)}, "
                    f"clean-rerun-{'matches' if rerun == oracle else 'differs'})"
                )
                return
            injected = [] if plan is None else [
                i for i in plan.injections if i.kind != "latency"
            ]
            if mode == "fallback" and injected and not result.stats.degraded:
                cell.outcome = "undeclared-degradation"
                cell.detail = f"{len(injected)} failure(s) injected, degraded not set"
                return
            cell.outcome = (
                "recovered-degraded" if (injected and result.stats.degraded) else "match"
            )
            cell.ok = True

        judge()
        if check_digest:
            # Runs whatever the verdict was: a snapshot must stay bit-identical
            # through oracle runs, faulted runs, and concurrent writer churn.
            with ops_lock:
                report.snapshot_checks += 1
            if snapshot.digest() != digest_before:
                cell.outcome = "torn-snapshot"
                cell.detail = "snapshot digest changed while the query ran"
                cell.ok = False
        return cell

    writer_threads = [
        threading.Thread(target=writer_loop, args=(i,), name=f"chaos-writer-{i}")
        for i in range(writers)
    ]
    for thread in writer_threads:
        thread.start()
    executor = ServeExecutor(
        workers=max(1, readers),
        queue_limit=readers * queries_per_reader,
        name="chaos-readers",
    )
    try:
        futures = [
            executor.submit(reader_cell, reader, index, session=f"reader-{reader}")
            for reader in range(readers)
            for index in range(queries_per_reader)
        ]
        for future in futures:
            try:
                report.cells.append(future.result(timeout=600))
            except Exception as err:  # noqa: BLE001 - a lost cell fails the run
                report.errors.append(f"reader task died: {err!r}")
    finally:
        stop_writers.set()
        for thread in writer_threads:
            thread.join()
        executor.shutdown()
    report.latency = executor.stats.snapshot()
    return report


# ---------------------------------------------------------------------------
# Crash-at-arbitrary-WAL-offset recovery
# ---------------------------------------------------------------------------


@dataclass
class WalRecoveryReport:
    """Outcome of the crash-at-offset sweep."""

    seed: int
    wal_bytes: int
    offsets_checked: int = 0
    mismatches: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.offsets_checked > 0 and not self.mismatches

    def describe(self) -> str:
        lines = [
            f"wal recovery sweep: seed={self.seed} wal={self.wal_bytes}B "
            f"offsets={self.offsets_checked}"
        ]
        lines.extend(f"  FAIL {m}" for m in self.mismatches)
        lines.append(
            "wal recovery: "
            + ("OK — every crash offset recovered the surviving prefix" if self.ok else "FAILED")
        )
        return "\n".join(lines)


def _scripted_mutations(server, seed: int, count: int) -> None:
    """A deterministic mutation stream mixing every WAL op kind."""
    rng = random.Random(seed)
    pool = preference_pool()
    users = ["alice", "bob", "carol"]
    for user in users:
        server.add_preference(user, _base_preference())
    next_id = 500_000
    for index in range(count):
        user = users[index % len(users)]
        roll = rng.random()
        try:
            if roll < 0.5:
                server.add_preference(user, rng.choice(pool))
            elif roll < 0.7:
                server.remove_preference(user, rng.choice(pool).name)
            elif roll < 0.8:
                server.clear_preferences(user)
                server.add_preference(user, _base_preference())
            else:
                next_id += 1
                server.insert("MOVIES", (next_id, f"wal movie {next_id}", 2001, 95, 1))
        except ReproError:
            pass  # duplicate add: no WAL record, no state change


def wal_recovery_check(
    directory: str,
    seed: int = 42,
    mutations: int = 40,
    max_offsets: int = 24,
) -> WalRecoveryReport:
    """Crash the WAL at a spread of byte offsets; recovery must equal the prefix.

    Builds a durable server under ``directory/origin`` while recording the
    live state digest at every LSN.  Then, for a deterministic sample of
    byte offsets (every record boundary plus seeded mid-record cuts, capped
    at *max_offsets*), copies the directory, truncates the WAL copy at the
    offset — the simulated crash — reopens it, and asserts the recovered
    digest equals the digest recorded after the last record wholly below
    the cut.  sha256 equality means recovery restored *exactly* the state
    of replaying the surviving prefix: nothing lost, nothing invented.
    """
    from ..engine.database import Database
    from ..engine.types import DataType
    from ..serve.server import PreferenceServer
    from ..serve.wal import WAL_FILE

    origin = os.path.join(directory, "origin")
    db = Database()
    db.create_table(
        "MOVIES",
        [
            ("m_id", DataType.INT),
            ("title", DataType.TEXT),
            ("year", DataType.INT),
            ("duration", DataType.INT),
            ("d_id", DataType.INT),
        ],
        primary_key=["m_id"],
    )
    db.insert_many("MOVIES", [(1, "seed one", 1999, 100, 1), (2, "seed two", 2004, 110, 2)])
    server, _ = PreferenceServer.open(origin, initial=db, sync=False)
    digests = {server.wal.lsn: server.state_digest()}
    rng = random.Random(seed)

    class _Recorder:
        """Wrap the server so every applied mutation records its digest."""

        def __getattr__(self, name):
            method = getattr(server, name)

            def recorded(*args, **kwargs):
                outcome = method(*args, **kwargs)
                digests[server.wal.lsn] = server.state_digest()
                return outcome

            return recorded

    _scripted_mutations(_Recorder(), seed, mutations)
    server.close()

    wal_path = os.path.join(origin, WAL_FILE)
    with open(wal_path, "rb") as handle:
        raw = handle.read()
    report = WalRecoveryReport(seed=seed, wal_bytes=len(raw))
    if not raw:
        report.mismatches.append("mutation script produced an empty WAL")
        return report
    boundaries = [i + 1 for i, byte in enumerate(raw) if byte == 0x0A]
    candidates = {0, len(raw)}
    candidates.update(boundaries)
    for boundary in boundaries:
        candidates.add(max(0, boundary - 3))  # mid-record: torn tail
        candidates.add(min(len(raw), boundary + 2))  # cuts into the next record
    candidates.update(rng.randrange(len(raw)) for _ in range(8))
    offsets = sorted(candidates)
    if len(offsets) > max_offsets:
        step = len(offsets) / max_offsets
        offsets = sorted({offsets[int(i * step)] for i in range(max_offsets)} | {0, len(raw)})

    for offset in offsets:
        surviving = sum(1 for boundary in boundaries if boundary <= offset)
        expected = digests[surviving]
        crashed = os.path.join(directory, f"crash-{offset}")
        shutil.copytree(origin, crashed)
        crash_wal = os.path.join(crashed, WAL_FILE)
        with open(crash_wal, "rb+") as handle:
            handle.truncate(offset)
        recovered, replay = PreferenceServer.open(crashed, sync=False)
        try:
            actual = recovered.state_digest()
            if actual != expected:
                report.mismatches.append(
                    f"offset {offset}: recovered digest {actual[:12]}… != "
                    f"expected {expected[:12]}… (surviving records: {surviving})"
                )
            if replay.last_lsn != surviving:
                report.mismatches.append(
                    f"offset {offset}: replay reports lsn {replay.last_lsn}, "
                    f"expected {surviving}"
                )
        finally:
            recovered.close()
            shutil.rmtree(crashed, ignore_errors=True)
        report.offsets_checked += 1
    return report
