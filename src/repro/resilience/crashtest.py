"""Crash-torture: prove recovery under adversarial storage failures.

Two complementary harnesses, both digest-verified against the same oracle
(``python -m repro crash-torture --seed S --rounds N``):

* **In-process torture** (:func:`run_crash_torture`'s main loop) — a seeded,
  always-valid workload of preference mutations, row inserts and
  checkpoints runs against a :class:`~repro.resilience.vfs.FaultyVFS`.
  A probe run first enumerates every *injectable point* (each write, fsync,
  rename and directory fsync the workload performs); then, for every point,
  a fresh run injects one fault kind there (rotating through the kinds
  applicable at that op), the "machine loses power"
  (:meth:`~repro.resilience.vfs.FaultyVFS.power_cut` drops everything not
  durably on disk), and the directory is reopened under the real VFS.

* **Subprocess SIGKILL rounds** (:func:`sigkill_round`) — a real child
  process (``python -m repro.resilience.crashtest --child``) runs the same
  workload with genuine fsyncs, printing a flushed ``ACK i`` line after
  each durably acknowledged op.  The parent SIGKILLs it after a seeded
  number of acks, drains the pipe (an ack written before death is never
  lost, so the count is exact), and reopens the directory.

Both assert the two recovery invariants:

1. **Acknowledged ops survive** — the recovered state digest is at least
   the prefix of every op whose call returned (``acked``).
2. **Recovery equals a prefix** — the digest equals *some* prefix of the
   issued sequence: at most the one op in flight at the crash may be
   included, and nothing out of order or invented.

Concretely: ``digest(recovered) ∈ {oracle[acked], …, oracle[issued]}``
where ``oracle[i]`` is the state digest after the first ``i`` ops, applied
to an ephemeral oracle server, and ``issued ≤ acked + 1`` (writes are
serial).  sha256 equality over the full logical state means nothing was
lost, duplicated, or invented.

A harness that cannot fail proves nothing: :func:`mutation_self_check`
deliberately breaks the WAL-replay path (drops every redone row) and runs
one torture round, which must then report failures.
"""

from __future__ import annotations

import os
import random
import shutil
import signal
import subprocess
import sys
import tempfile
from dataclasses import dataclass, field

from ..core.preference import Preference
from ..core.scoring import recency_score
from ..engine.database import Database
from ..engine.expressions import cmp, eq
from ..engine.types import DataType
from ..errors import ResilienceError
from .vfs import FAULT_KINDS, KINDS_BY_OP, FaultyVFS, VfsFault, use_vfs

#: Users the scripted workload mutates preferences for.
USERS = ("alice", "bob", "carol")


def base_db() -> Database:
    """The small seed database every torture run starts from."""
    db = Database()
    db.create_table(
        "MOVIES",
        [
            ("m_id", DataType.INT),
            ("title", DataType.TEXT),
            ("year", DataType.INT),
            ("duration", DataType.INT),
            ("d_id", DataType.INT),
        ],
        primary_key=["m_id"],
    )
    db.insert_many(
        "MOVIES",
        [(1, "seed one", 1999, 100, 1), (2, "seed two", 2004, 110, 2)],
    )
    return db


def _pool() -> dict[str, Preference]:
    """Deterministic, WAL-loggable preferences, addressable by name."""
    prefs: list[Preference] = []
    for d_id in (1, 2, 3):
        prefs.append(Preference(f"d{d_id}", "MOVIES", eq("d_id", d_id), 0.9, 0.8))
    for year in (1990, 2000, 2005):
        prefs.append(
            Preference(
                f"y{year}",
                "MOVIES",
                cmp("year", ">=", year),
                recency_score("year", 2011),
                0.7,
            )
        )
    return {p.name: p for p in prefs}


def scripted_ops(seed: int, count: int) -> list[tuple]:
    """A seeded workload of *count* always-valid ops.

    The generator tracks which preference names are active per user, so
    every ``pref.add`` is new, every ``pref.remove``/``pref.clear`` removes
    something, and every ``row.insert`` uses a fresh primary key — each op
    both mutates state and appends exactly one WAL record (``checkpoint``
    appends none), which lets the harness equate op index and oracle
    prefix.
    """
    rng = random.Random(seed)
    pool_names = sorted(_pool())
    active: dict[str, set[str]] = {user: set() for user in USERS}
    ops: list[tuple] = []
    next_id = 900_000
    for index in range(count):
        user = USERS[index % len(USERS)]
        roll = rng.random()
        if roll < 0.40:
            candidates = [n for n in pool_names if n not in active[user]]
            if candidates:
                name = rng.choice(candidates)
                active[user].add(name)
                ops.append(("pref.add", user, name))
                continue
            roll = 0.9  # pool exhausted for this user: insert instead
        if roll < 0.55 and active[user]:
            name = rng.choice(sorted(active[user]))
            active[user].remove(name)
            ops.append(("pref.remove", user, name))
        elif roll < 0.62 and active[user]:
            active[user].clear()
            ops.append(("pref.clear", user))
        elif roll < 0.70 and index > 0:
            ops.append(("checkpoint",))
        else:
            next_id += 1
            ops.append(("row.insert", next_id))
    return ops


def apply_op(server, op: tuple) -> None:
    """Apply one scripted op to a live :class:`PreferenceServer`."""
    kind = op[0]
    if kind == "pref.add":
        server.add_preference(op[1], _pool()[op[2]])
    elif kind == "pref.remove":
        server.remove_preference(op[1], op[2])
    elif kind == "pref.clear":
        server.clear_preferences(op[1])
    elif kind == "row.insert":
        m_id = op[1]
        server.insert("MOVIES", (m_id, f"crash movie {m_id}", 2008, 95, 1))
    elif kind == "checkpoint":
        if server.directory is not None:  # the oracle is ephemeral
            server.checkpoint()
    else:  # pragma: no cover - generator and applier move together
        raise ValueError(f"unknown scripted op {kind!r}")


def oracle_digests(ops: list[tuple]) -> list[str]:
    """``oracle[i]`` = state digest after the first *i* ops (ephemeral)."""
    from ..serve.server import PreferenceServer

    oracle = PreferenceServer(base_db())
    digests = [oracle.state_digest()]
    for op in ops:
        apply_op(oracle, op)
        digests.append(oracle.state_digest())
    return digests


# ---------------------------------------------------------------------------
# The report
# ---------------------------------------------------------------------------


@dataclass
class TortureReport:
    """Outcome of one :func:`run_crash_torture` invocation."""

    seed: int
    rounds: int
    #: In-process crash points injected (sum over rounds).
    crash_points: int = 0
    #: Fault kind -> number of injections that fired as that kind.
    kind_counts: dict[str, int] = field(default_factory=dict)
    sigkill_rounds: int = 0
    sigkill_kills: int = 0
    #: ``True`` when the deliberately broken recovery path was caught;
    #: ``None`` when the self-check was skipped.
    mutation_detected: bool | None = None
    failures: list[str] = field(default_factory=list)

    @property
    def missing_kinds(self) -> list[str]:
        return [k for k in FAULT_KINDS if not self.kind_counts.get(k)]

    @property
    def ok(self) -> bool:
        if self.failures:
            return False
        if self.mutation_detected is False:
            return False
        if self.crash_points and self.missing_kinds:
            return False
        return True

    def describe(self) -> str:
        lines = [
            f"crash-torture: seed={self.seed} rounds={self.rounds} "
            f"crash-points={self.crash_points} "
            f"sigkill={self.sigkill_kills}/{self.sigkill_rounds}"
        ]
        kinds = " ".join(
            f"{kind}={self.kind_counts.get(kind, 0)}" for kind in FAULT_KINDS
        )
        lines.append(f"  kinds: {kinds}")
        if self.missing_kinds and self.crash_points:
            lines.append(f"  FAIL never exercised: {', '.join(self.missing_kinds)}")
        if self.mutation_detected is not None:
            verdict = "caught" if self.mutation_detected else "MISSED"
            lines.append(f"  mutation self-check (lossy replay): {verdict}")
        shown = self.failures[:20]
        lines.extend(f"  FAIL {failure}" for failure in shown)
        if len(self.failures) > len(shown):
            lines.append(f"  ... and {len(self.failures) - len(shown)} more")
        lines.append(
            "crash-torture: "
            + (
                "OK — every crash point recovered a digest-verified prefix"
                if self.ok
                else "FAILED"
            )
        )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# In-process torture
# ---------------------------------------------------------------------------


def _run_workload(directory: str, ops: list[tuple], vfs) -> tuple[int, int]:
    """Run the workload under *vfs* until done or crashed: ``(acked, issued)``.

    ``acked`` counts ops whose call returned (their durability was
    acknowledged); ``issued`` additionally counts the op in flight when the
    injected fault fired, whose record may or may not be on disk.
    """
    from ..serve.server import PreferenceServer

    acked = issued = 0
    with use_vfs(vfs):
        server = None
        try:
            server, _ = PreferenceServer.open(directory, initial=base_db(), sync=True)
            for op in ops:
                issued = acked + 1
                apply_op(server, op)
                acked = issued
        except (ResilienceError, OSError):
            pass  # the injected crash; state on disk is whatever survived
        finally:
            if server is not None:
                try:
                    server.close()
                except (ResilienceError, OSError):  # pragma: no cover
                    pass
    return acked, issued


def _verify_recovery(
    directory: str,
    digests: list[str],
    acked: int,
    issued: int,
    context: str,
    report: TortureReport,
) -> None:
    """Reopen *directory* under the real VFS and check both invariants."""
    from ..serve.server import PreferenceServer

    try:
        recovered, _ = PreferenceServer.open(directory, initial=base_db(), sync=True)
    except Exception as err:  # noqa: BLE001 - any exception is a failed recovery
        report.failures.append(
            f"{context}: recovery raised {type(err).__name__}: {err}"
        )
        return
    try:
        digest = recovered.state_digest()
    finally:
        recovered.close()
    issued = min(issued, len(digests) - 1)
    if digest in digests[acked : issued + 1]:
        return
    try:
        prefix = digests.index(digest)
    except ValueError:
        prefix = None
    if prefix is None:
        report.failures.append(
            f"{context}: recovered state matches no prefix of the issued "
            f"sequence (acked={acked}, issued={issued})"
        )
    elif prefix < acked:
        report.failures.append(
            f"{context}: acknowledged op lost — recovered prefix {prefix} "
            f"< acked {acked}"
        )
    else:
        report.failures.append(
            f"{context}: recovered prefix {prefix} is beyond issued {issued} "
            "(recovery invented state)"
        )


def _fresh_dir(base_dir: str, name: str) -> str:
    path = os.path.join(base_dir, name)
    shutil.rmtree(path, ignore_errors=True)
    return path


def inprocess_round(
    base_dir: str, seed: int, round_index: int, ops_count: int, report: TortureReport
) -> None:
    """One full sweep: inject a fault at *every* point of one seeded workload."""
    ops = scripted_ops(seed + round_index, ops_count)
    digests = oracle_digests(ops)

    probe = FaultyVFS()
    probe_dir = _fresh_dir(base_dir, f"probe-{round_index}")
    acked, _ = _run_workload(probe_dir, ops, probe)
    shutil.rmtree(probe_dir, ignore_errors=True)
    if acked != len(ops):
        report.failures.append(
            f"round {round_index}: probe run crashed without injection "
            f"({acked}/{len(ops)} ops)"
        )
        return

    for step, (op_type, _path) in enumerate(probe.ops):
        kinds = KINDS_BY_OP[op_type]
        kind = kinds[(round_index + step) % len(kinds)]
        vfs = FaultyVFS(VfsFault(step, kind))
        crash_dir = _fresh_dir(base_dir, f"crash-{round_index}-{step}")
        acked, issued = _run_workload(crash_dir, ops, vfs)
        context = f"round {round_index} step {step} ({kind} at {op_type})"
        if not vfs.fired:
            report.failures.append(f"{context}: scripted fault never fired")
        else:
            vfs.power_cut()
            report.crash_points += 1
            report.kind_counts[kind] = report.kind_counts.get(kind, 0) + 1
            _verify_recovery(crash_dir, digests, acked, issued, context, report)
        shutil.rmtree(crash_dir, ignore_errors=True)


# ---------------------------------------------------------------------------
# Subprocess SIGKILL rounds
# ---------------------------------------------------------------------------


def _child_main(argv: list[str]) -> int:
    """``--child`` entry: run the workload durably, acking each op on stdout."""
    from ..serve.server import PreferenceServer

    options = dict(zip(argv[::2], argv[1::2]))
    directory = options["--dir"]
    seed = int(options["--seed"])
    count = int(options["--count"])
    ops = scripted_ops(seed, count)
    server, _ = PreferenceServer.open(directory, initial=base_db(), sync=True)
    print("READY", flush=True)
    for index, op in enumerate(ops):
        apply_op(server, op)
        # Flushed *after* the op's durability point: an ACK in the pipe is
        # a promise the op survives any kill from now on.
        print(f"ACK {index + 1}", flush=True)
    print("DONE", flush=True)
    server.close()
    return 0


def sigkill_round(
    base_dir: str, seed: int, round_index: int, ops_count: int, report: TortureReport
) -> None:
    """SIGKILL a real child mid-workload; recovery must keep every acked op."""
    ops = scripted_ops(seed + round_index, ops_count)
    digests = oracle_digests(ops)
    child_dir = _fresh_dir(base_dir, f"sigkill-{round_index}")
    rng = random.Random(seed * 1_000_003 + round_index)
    kill_after = rng.randrange(1, max(2, ops_count))

    env = dict(os.environ)
    package_root = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    env["PYTHONPATH"] = package_root + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.resilience.crashtest",
            "--child",
            "--dir",
            child_dir,
            "--seed",
            str(seed + round_index),
            "--count",
            str(ops_count),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    acked = 0
    killed = done = False
    noise: list[str] = []
    assert proc.stdout is not None
    while True:
        line = proc.stdout.readline()
        if not line:
            break  # EOF: the child exited (or died); the pipe is drained
        line = line.strip()
        if line.startswith("ACK "):
            acked = int(line[4:])
            if not killed and acked >= kill_after:
                os.kill(proc.pid, signal.SIGKILL)
                killed = True
        elif line == "DONE":
            done = True
        elif line and line != "READY":
            noise.append(line)
    proc.wait()
    report.sigkill_rounds += 1
    context = f"sigkill round {round_index} (killed after {acked} acks)"
    if killed:
        report.sigkill_kills += 1
    elif not done:
        report.failures.append(
            f"{context}: child died on its own: "
            + ("; ".join(noise[-3:]) if noise else f"exit {proc.returncode}")
        )
        shutil.rmtree(child_dir, ignore_errors=True)
        return
    issued = acked + 1 if killed else acked
    _verify_recovery(child_dir, digests, acked, issued, context, report)
    shutil.rmtree(child_dir, ignore_errors=True)


# ---------------------------------------------------------------------------
# Mutation self-check and the top-level loop
# ---------------------------------------------------------------------------

#: Workload guaranteed to put row inserts in the WAL, so a lossy replay
#: path must lose acknowledged data at some crash point.
_MUTATION_OPS = [
    ("pref.add", "alice", "d1"),
    ("row.insert", 900_901),
    ("row.insert", 900_902),
    ("pref.add", "bob", "y2000"),
]


def mutation_self_check(base_dir: str) -> bool:
    """Break replay on purpose; ``True`` when the harness caught it.

    Temporarily replaces the server's ``row.insert`` redo with a no-op —
    exactly the "silent row loss" bug the narrowed replay handler guards
    against — and sweeps every crash point of a small workload.  A harness
    that still reports success would prove nothing; this keeps it honest.
    """
    from ..serve.server import PreferenceServer

    digests = oracle_digests(_MUTATION_OPS)
    probe = FaultyVFS()
    probe_dir = _fresh_dir(base_dir, "mutation-probe")
    _run_workload(probe_dir, _MUTATION_OPS, probe)
    shutil.rmtree(probe_dir, ignore_errors=True)

    original = PreferenceServer._replay_row_insert

    def lossy(self, payload):  # drops every redone row on the floor
        return None

    shadow = TortureReport(seed=0, rounds=1)
    PreferenceServer._replay_row_insert = lossy
    try:
        for step, (op_type, _path) in enumerate(probe.ops):
            kind = KINDS_BY_OP[op_type][step % len(KINDS_BY_OP[op_type])]
            vfs = FaultyVFS(VfsFault(step, kind))
            crash_dir = _fresh_dir(base_dir, f"mutation-{step}")
            acked, issued = _run_workload(crash_dir, _MUTATION_OPS, vfs)
            vfs.power_cut()
            _verify_recovery(
                crash_dir, digests, acked, issued, f"mutation step {step}", shadow
            )
            shutil.rmtree(crash_dir, ignore_errors=True)
    finally:
        PreferenceServer._replay_row_insert = original
    return bool(shadow.failures)


def run_crash_torture(
    seed: int = 0,
    rounds: int = 10,
    *,
    ops: int = 18,
    sigkill_rounds: int | None = None,
    mutation_check: bool = True,
    directory: str | None = None,
) -> TortureReport:
    """The full torture suite: in-process sweeps + SIGKILL rounds + self-check.

    Each of the *rounds* in-process rounds generates a fresh seeded workload
    of *ops* mutations and injects one fault at **every** injectable point
    it performs (fault kinds rotate so all of :data:`FAULT_KINDS` are
    exercised).  *sigkill_rounds* (default ``max(1, rounds // 5)``) real
    child processes are SIGKILLed mid-workload.  Every crash must recover a
    digest-verified prefix; see the module docstring for the invariants.
    """
    report = TortureReport(seed=seed, rounds=rounds)
    if sigkill_rounds is None:
        sigkill_rounds = max(1, rounds // 5)
    own_dir = directory is None
    base_dir = directory or tempfile.mkdtemp(prefix="repro-crash-torture-")
    try:
        for round_index in range(rounds):
            inprocess_round(base_dir, seed, round_index, ops, report)
        for round_index in range(sigkill_rounds):
            sigkill_round(base_dir, seed, round_index, ops, report)
        if mutation_check:
            report.mutation_detected = mutation_self_check(base_dir)
    finally:
        if own_dir:
            shutil.rmtree(base_dir, ignore_errors=True)
    return report


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    if len(sys.argv) > 1 and sys.argv[1] == "--child":
        sys.exit(_child_main(sys.argv[2:]))
    sys.exit(0 if run_crash_torture().ok else 1)
