"""Deterministic fault injection for chaos testing.

A :class:`FaultPlan` is a seeded schedule of failures the execution stack
volunteers to suffer: the instrumented *sites* call into the ambient plan
and the plan decides — reproducibly, from its seed — whether to raise a
:exc:`~repro.errors.TransientFault`, inject latency, or corrupt a score
pair.  Robustness claims then become testable: the chaos conformance suite
(:mod:`repro.resilience.chaos`) runs every strategy under seeded plans and
asserts each either matches the reference oracle exactly or raises a typed
resilience error — never a silently wrong answer.

Instrumented sites:

======================  ======================================================
``iosim.scan``          Simulated page reads (:meth:`CostModel.scan`).
``native.dispatch``     Native-engine operator dispatch (one hit/operator).
``strategy.<name>``     Strategy operator boundaries (``strategy.gbu``,
                        ``strategy.bu``, ``strategy.ftp``,
                        ``strategy.plugin``, ``strategy.reference``).
``pexec.scores``        The engine's result gate: a ``corrupt`` fault here
                        flips one score pair to an invalid value, which the
                        engine's integrity check must catch.
``strategy.columnar``   Columnar evaluator operator boundaries (fires once
                        per plan node, driver- or worker-side).
``pexec.partition``     One partition of a partition-parallel run; fires
                        inside the worker, and a ``corrupt`` fault flips a
                        pair in that partition's result, which the driver's
                        per-partition integrity gate must catch.
``net.accept``          The network front end accepting one connection
                        (:mod:`repro.serve.net`): ``transient`` drops the
                        connection before any frame is served.
``net.read``            One inbound frame read: ``transient`` drops the
                        connection mid-request, ``latency`` stalls the read,
                        ``corrupt`` tears the inbound frame.
``net.write``           One outbound frame write: ``transient`` drops the
                        connection before the response, ``latency`` stalls
                        it, ``corrupt`` sends a torn (truncated) frame and
                        then drops the connection.
``net.close``           Connection teardown: ``transient`` skips the
                        graceful close (abrupt reset instead of FIN).
======================  ======================================================

Site patterns may end in ``*`` to match a prefix (``strategy.*``).  Like the
tracer and guard, the ambient plan defaults to :data:`NULL_FAULTS`, a no-op
behind one ``enabled`` attribute check.
"""

from __future__ import annotations

import random
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field

from ..errors import TransientFault

KINDS = ("transient", "latency", "corrupt")

#: Every fault site the source tree instruments, by exact name.  The static
#: lint's LN302 rule validates fault-site string literals (constructor args,
#: ``site=`` keywords, ``*_SITE`` constants) against this registry: a typo'd
#: site name silently never fires, which is exactly the class of bug a
#: passing chaos suite cannot distinguish from genuine robustness.  A
#: ``prefix*`` pattern is valid when it matches at least one entry.
KNOWN_SITES = (
    "iosim.scan",
    "native.dispatch",
    "strategy.gbu",
    "strategy.bu",
    "strategy.ftp",
    "strategy.plugin",
    "strategy.reference",
    "strategy.columnar",
    "pexec.scores",
    "pexec.partition",
    "net.accept",
    "net.read",
    "net.write",
    "net.close",
)


@dataclass(frozen=True)
class FaultSpec:
    """One fault rule: where, what, how often.

    ``site`` is an exact site name or a ``prefix*`` pattern.  ``times``
    bounds how many injections the rule performs over the plan's lifetime
    (``None`` = unbounded); ``after`` skips the first N matching hits;
    ``probability`` gates each eligible hit through the plan's seeded RNG.
    ``delay`` is the sleep, in seconds, for ``latency`` faults.
    """

    site: str
    kind: str = "transient"
    probability: float = 1.0
    times: int | None = 1
    after: int = 0
    delay: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; choose {KINDS}")

    def matches(self, site: str) -> bool:
        if self.site.endswith("*"):
            return site.startswith(self.site[:-1])
        return site == self.site


@dataclass
class Injection:
    """Record of one performed injection (for reports and assertions)."""

    site: str
    kind: str
    spec: FaultSpec
    hit: int


class FaultPlan:
    """A seeded, deterministic schedule of fault injections.

    The same ``(specs, seed)`` pair always injects at the same hits — the
    RNG is consulted only for rules with ``probability < 1`` and draws in
    site-call order, which is itself deterministic for a given query.
    """

    enabled = True

    def __init__(self, specs=(), seed: int = 0, sleep=time.sleep):
        self.specs: list[FaultSpec] = list(specs)
        self.seed = seed
        self._rng = random.Random(seed)
        self._sleep = sleep
        self._hits: dict[int, int] = {}
        self._fired: dict[int, int] = {}
        self.injections: list[Injection] = []

    # -- construction helpers --------------------------------------------------

    @classmethod
    def transient(cls, site: str, times: int | None = 1, seed: int = 0, **kw) -> "FaultPlan":
        return cls([FaultSpec(site, "transient", times=times, **kw)], seed=seed)

    @classmethod
    def latency(cls, site: str, delay: float, times: int | None = 1, seed: int = 0, **kw) -> "FaultPlan":
        return cls([FaultSpec(site, "latency", delay=delay, times=times, **kw)], seed=seed)

    @classmethod
    def corrupting(cls, site: str = "pexec.scores", times: int | None = 1, seed: int = 0, **kw) -> "FaultPlan":
        return cls([FaultSpec(site, "corrupt", times=times, **kw)], seed=seed)

    # -- the injection protocol ------------------------------------------------

    def at(self, site: str) -> None:
        """Visit *site*: may sleep (latency) or raise :exc:`TransientFault`."""
        for index, spec in enumerate(self.specs):
            if spec.kind == "corrupt" or not spec.matches(site):
                continue
            if not self._eligible(index, spec):
                continue
            self._record(site, spec, index)
            if spec.kind == "latency":
                self._sleep(spec.delay)
            else:
                raise TransientFault(site)

    def corrupts(self, site: str = "pexec.scores") -> bool:
        """True when a ``corrupt`` rule fires for this visit of *site*."""
        for index, spec in enumerate(self.specs):
            if spec.kind != "corrupt" or not spec.matches(site):
                continue
            if not self._eligible(index, spec):
                continue
            self._record(site, spec, index)
            return True
        return False

    def pick(self, n: int) -> int:
        """Deterministic index choice in ``[0, n)`` (used to pick the victim pair)."""
        return self._rng.randrange(n) if n > 0 else 0

    # -- bookkeeping -----------------------------------------------------------

    def _eligible(self, index: int, spec: FaultSpec) -> bool:
        hit = self._hits.get(index, 0)
        self._hits[index] = hit + 1
        if hit < spec.after:
            return False
        fired = self._fired.get(index, 0)
        if spec.times is not None and fired >= spec.times:
            return False
        if spec.probability < 1.0 and self._rng.random() >= spec.probability:
            return False
        return True

    def _record(self, site: str, spec: FaultSpec, index: int) -> None:
        self._fired[index] = self._fired.get(index, 0) + 1
        self.injections.append(Injection(site, spec.kind, spec, self._hits[index]))

    def reset(self) -> None:
        """Rewind the plan to its initial state (same seed, zero hits)."""
        self._rng = random.Random(self.seed)
        self._hits = {}
        self._fired = {}
        self.injections = []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        rules = ", ".join(f"{s.kind}@{s.site}" for s in self.specs)
        return f"FaultPlan(seed={self.seed}, [{rules}])"


class _NullFaults:
    """The always-installed default: no faults, near-zero cost."""

    __slots__ = ()

    enabled = False
    specs: list = []
    injections: list = []

    def at(self, site: str) -> None:
        pass

    def corrupts(self, site: str = "pexec.scores") -> bool:
        return False

    def pick(self, n: int) -> int:
        return 0

    def reset(self) -> None:
        pass


NULL_FAULTS = _NullFaults()

#: The ambient fault plan; NULL_FAULTS unless :func:`use_faults` installed one.
_CURRENT: ContextVar["FaultPlan | _NullFaults"] = ContextVar(
    "repro_faults", default=NULL_FAULTS
)


def current_faults() -> "FaultPlan | _NullFaults":
    """The fault plan installed for the current context (no-op by default)."""
    return _CURRENT.get()


@contextmanager
def use_faults(plan: "FaultPlan | _NullFaults | None"):
    """Install *plan* as the ambient fault plan for the enclosed block."""
    token = _CURRENT.set(plan if plan is not None else NULL_FAULTS)
    try:
        yield plan
    finally:
        # Mirror guard/tracer: tolerate a token from another Context rather
        # than leaking a fault plan into the next query on this thread.
        try:
            _CURRENT.reset(token)
        except ValueError:  # pragma: no cover - cross-context teardown
            _CURRENT.set(NULL_FAULTS)
