"""Query guards: deadlines, budgets and cooperative cancellation.

A :class:`QueryGuard` is a per-query resource governor.  The execution stack
checks it at operator boundaries (all six strategies and the native engine)
and the simulated-I/O accountant (:class:`repro.engine.iosim.CostModel`)
reports every materialized tuple into it, so a runaway query is stopped by
whichever trips first:

* **deadline** — wall-clock budget for the whole query, including retries
  and fallback strategies (:exc:`~repro.errors.QueryTimeout`);
* **max_tuples** — ceiling on tuples materialized while executing
  (:exc:`~repro.errors.ResourceExhausted` with ``kind="tuples"``);
* **max_rows** — ceiling on the final result size, enforced by the
  execution engine (:exc:`~repro.errors.ResourceExhausted`, ``kind="rows"``);
* **cancellation** — a cooperative :class:`CancellationToken` another thread
  may trip at any time (:exc:`~repro.errors.QueryCancelled`).

Mirroring the tracer (:mod:`repro.obs`), the ambient guard travels through a
``ContextVar`` and defaults to :data:`NULL_GUARD`, whose every operation is
a no-op behind a single ``guard.enabled`` attribute check — production hot
paths pay nothing when no guard is installed.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from threading import Event

from ..errors import QueryCancelled, QueryTimeout, ResourceExhausted


class CancellationToken:
    """Thread-safe cooperative cancellation flag.

    Hand the token to a :class:`QueryGuard`, run the query on one thread,
    and call :meth:`cancel` from any other; the query raises
    :exc:`~repro.errors.QueryCancelled` at its next operator boundary.
    """

    __slots__ = ("_event",)

    def __init__(self) -> None:
        self._event = Event()

    def cancel(self) -> None:
        self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()


class QueryGuard:
    """Deadline, budget and cancellation checks for one query execution.

    A guard is single-use: it captures its deadline at construction, so the
    deadline spans every retry and fallback attempt of the query it guards.
    ``clock`` is injectable for deterministic tests.
    """

    enabled = True

    __slots__ = (
        "timeout",
        "deadline",
        "max_rows",
        "max_tuples",
        "token",
        "clock",
        "tuples",
        "_started",
    )

    def __init__(
        self,
        *,
        timeout: float | None = None,
        max_rows: int | None = None,
        max_tuples: int | None = None,
        token: CancellationToken | None = None,
        clock=time.monotonic,
    ):
        self.timeout = timeout
        self.max_rows = max_rows
        self.max_tuples = max_tuples
        self.token = token
        self.clock = clock
        self.tuples = 0
        self._started = clock()
        self.deadline = None if timeout is None else self._started + timeout

    # -- checks ----------------------------------------------------------------

    def check(self) -> None:
        """Raise if the query is cancelled or past its deadline.

        This is the operator-boundary checkpoint: cheap enough to call per
        operator (one or two attribute reads plus a clock read when a
        deadline is set).
        """
        token = self.token
        if token is not None and token.cancelled:
            raise QueryCancelled()
        deadline = self.deadline
        if deadline is not None and self.clock() > deadline:
            raise QueryTimeout(self.timeout, self.clock() - self._started)

    def note_tuples(self, count: int) -> None:
        """Account for *count* materialized/scanned tuples; enforce the budget."""
        self.tuples += count
        limit = self.max_tuples
        if limit is not None and self.tuples > limit:
            raise ResourceExhausted("tuples", limit, self.tuples)
        self.check()

    def note_rows(self, rows: int) -> None:
        """Enforce the final-result row ceiling (called by the engine)."""
        limit = self.max_rows
        if limit is not None and rows > limit:
            raise ResourceExhausted("rows", limit, rows)

    def remaining(self) -> float | None:
        """Seconds left until the deadline; ``None`` when unbounded."""
        if self.deadline is None:
            return None
        return max(0.0, self.deadline - self.clock())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = []
        if self.timeout is not None:
            parts.append(f"timeout={self.timeout}")
        if self.max_rows is not None:
            parts.append(f"max_rows={self.max_rows}")
        if self.max_tuples is not None:
            parts.append(f"max_tuples={self.max_tuples}")
        if self.token is not None:
            parts.append("cancellable")
        return f"QueryGuard({', '.join(parts)})"


class _NullGuard:
    """The always-installed default: every operation is a free no-op."""

    __slots__ = ()

    enabled = False
    deadline = None
    max_rows = None
    max_tuples = None
    token = None
    tuples = 0

    def check(self) -> None:
        pass

    def note_tuples(self, count: int) -> None:
        pass

    def note_rows(self, rows: int) -> None:
        pass

    def remaining(self) -> None:
        return None


NULL_GUARD = _NullGuard()

#: The ambient guard; NULL_GUARD unless :func:`use_guard` installed one.
_CURRENT: ContextVar["QueryGuard | _NullGuard"] = ContextVar(
    "repro_guard", default=NULL_GUARD
)


def current_guard() -> "QueryGuard | _NullGuard":
    """The guard installed for the current context (no-op by default)."""
    return _CURRENT.get()


def capture() -> "QueryGuard | _NullGuard":
    """Capture the ambient guard for explicit hand-off to a worker thread.

    ``ContextVar`` values do **not** cross thread boundaries: a worker
    thread that merely calls :func:`current_guard` silently gets
    :data:`NULL_GUARD` and runs unguarded.  Capture on the submitting
    thread, then :func:`restore` (or :func:`use_guard`) inside the worker::

        guard = capture()
        pool.submit(lambda: restore(guard).__enter__() and work())

    (The serving layer's :class:`~repro.serve.executor.ServeExecutor` does
    this automatically via ``contextvars.copy_context``.)
    """
    return _CURRENT.get()


def restore(guard: "QueryGuard | _NullGuard | None"):
    """Install a guard captured with :func:`capture` in this thread.

    Returns the same context manager as :func:`use_guard`; use it in a
    ``with`` block so the worker's ambient state is cleaned up even when
    the query raises.
    """
    return use_guard(guard)


#: Package-level aliases (``repro.resilience.capture_guard``) mirroring
#: ``repro.obs.capture_tracer``.
capture_guard = capture
restore_guard = restore


@contextmanager
def use_guard(guard: "QueryGuard | _NullGuard | None"):
    """Install *guard* as the ambient guard for the enclosed block."""
    token = _CURRENT.set(guard if guard is not None else NULL_GUARD)
    try:
        yield guard
    finally:
        # Exception-safe restore: a token minted in another Context (e.g. a
        # generator finalized on a different worker thread) makes reset()
        # raise ValueError; fall back to reinstalling the no-op default so
        # a stale guard can never leak into the next query on this thread.
        try:
            _CURRENT.reset(token)
        except ValueError:  # pragma: no cover - cross-context teardown
            _CURRENT.set(NULL_GUARD)
