"""Graceful degradation policy: retry × circuit breaker × strategy fallback.

A :class:`ResiliencePolicy` tells the execution engine how to keep
answering when a strategy fails: retry transient faults with exponential
backoff, track per-strategy health in circuit breakers, and fall back along
a configurable strategy chain (default ``gbu → bu → ftp → reference``),
re-running the query on the next strategy.  A result produced after any
failure is marked ``degraded=True`` in its :class:`ExecutionStats` and the
failure cause is recorded on the query's tracer span — degradation is
observable, never silent (cf. Chomicki's argument for engines that degrade
incrementally rather than recompute-or-die).
"""

from __future__ import annotations

from .retry import CircuitBreaker, RetryPolicy

#: Default fallback order: fastest strategy first, the always-correct
#: reference oracle as the last resort.
DEFAULT_FALLBACK = ("gbu", "bu", "ftp", "reference")


class ResiliencePolicy:
    """How the engine degrades: retry, breakers, and the fallback chain.

    ``fallback`` lists strategies in preference order; :meth:`chain_for`
    starts at the requested strategy and continues *down* the list (a
    request for a strategy outside the list prepends it).  Pass
    ``fallback=()`` for retry-only behavior, or ``breaker_threshold=None``
    to disable circuit breaking.
    """

    def __init__(
        self,
        retry: RetryPolicy | None = None,
        fallback=DEFAULT_FALLBACK,
        breaker_threshold: int | None = 3,
        breaker_cooldown: float = 30.0,
    ):
        self.retry = retry if retry is not None else RetryPolicy()
        self.fallback = tuple(fallback)
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown = breaker_cooldown
        self._breakers: dict[str, CircuitBreaker] = {}

    def chain_for(self, strategy: str) -> list[str]:
        """The strategies to try, in order, for a query requesting *strategy*."""
        if strategy in self.fallback:
            position = self.fallback.index(strategy)
            return list(self.fallback[position:])
        return [strategy, *self.fallback]

    def breaker(self, strategy: str) -> CircuitBreaker | None:
        """The (lazily created) breaker for *strategy*; ``None`` when disabled."""
        if self.breaker_threshold is None:
            return None
        breaker = self._breakers.get(strategy)
        if breaker is None:
            breaker = CircuitBreaker(self.breaker_threshold, self.breaker_cooldown)
            self._breakers[strategy] = breaker
        return breaker

    def breaker_states(self) -> dict[str, str]:
        """Current breaker state per strategy (for dashboards and tests)."""
        return {name: b.state for name, b in sorted(self._breakers.items())}
