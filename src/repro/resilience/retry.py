"""Retry with exponential backoff, retry budgets and circuit breakers.

All pieces are deterministic and clock-injectable so the test suite can
exercise open/half-open transitions and backoff schedules without sleeping.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field


@dataclass
class RetryPolicy:
    """Exponential backoff for transient faults.

    ``attempts`` is the total number of tries per strategy (1 = no retry);
    the pause before retry *k* (1-based) is
    ``min(base_delay * multiplier**(k-1), max_delay)``.  ``jitter`` spreads
    that pause uniformly over ``[(1-jitter)·d, (1+jitter)·d]`` through a
    seeded RNG, so a fleet of clients that failed together does not retry
    in lockstep (the synchronized re-arrival that turns one overload blip
    into a standing retry storm).  ``sleep`` is injectable; tests pass a
    no-op.
    """

    attempts: int = 3
    base_delay: float = 0.01
    multiplier: float = 2.0
    max_delay: float = 1.0
    jitter: float = 0.0
    seed: int = 0
    sleep: object = time.sleep
    _rng: random.Random = field(init=False, repr=False, compare=False, default=None)

    def __post_init__(self) -> None:
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be within [0, 1]")
        self._rng = random.Random(self.seed)

    def jittered(self, delay: float) -> float:
        """Spread *delay* over ``[(1-jitter)·d, (1+jitter)·d]`` (seeded RNG).

        Also applied by clients to server-supplied ``retry_after`` hints, so
        a fleet shed at the same instant with the same hint still re-arrives
        spread out.
        """
        if self.jitter:
            delay *= 1.0 + self.jitter * (2.0 * self._rng.random() - 1.0)
        return delay

    def backoff(self, attempt: int) -> float:
        """Pause, in seconds, after failed attempt number *attempt* (1-based)."""
        return self.jittered(
            min(self.base_delay * self.multiplier ** (attempt - 1), self.max_delay)
        )

    def pause(self, attempt: int, guard=None) -> None:
        """Sleep the backoff for *attempt*, clamped to the guard's deadline.

        When the guard's remaining time is already spent the pause is
        skipped — the next operator-boundary check will raise the timeout,
        keeping the failure typed instead of sleeping past the deadline.
        """
        delay = self.backoff(attempt)
        if guard is not None and guard.enabled:
            remaining = guard.remaining()
            if remaining is not None:
                delay = min(delay, remaining)
        if delay > 0:
            self.sleep(delay)


class RetryBudget:
    """A token bucket that bounds how much of a client's traffic is retries.

    Blind per-request retry policies multiply load exactly when the server
    can least afford it: every shed request comes back ``attempts`` times,
    so a brief overload becomes a standing retry storm.  A budget caps the
    *ratio* instead: each retry spends one token, each success earns back
    ``refill`` tokens (capped at ``capacity``), so sustained failure drains
    the bucket and retries stop — the client fails fast and sheds load —
    while occasional blips retry freely.  With ``refill=0.1`` at most ~10%
    of steady-state traffic can be retries.

    Thread-safe: one budget is meant to be shared by all of a process's
    client connections, since the storm it prevents is per-process, not
    per-connection.
    """

    def __init__(self, capacity: float = 10.0, refill: float = 0.1):
        if capacity <= 0:
            raise ValueError("capacity must be > 0")
        if refill < 0:
            raise ValueError("refill must be >= 0")
        self.capacity = capacity
        self.refill = refill
        self._tokens = capacity
        self._lock = threading.Lock()
        self.spent = 0
        self.denied = 0

    @property
    def tokens(self) -> float:
        with self._lock:
            return self._tokens

    def try_spend(self) -> bool:
        """Take one retry token; False means the budget is exhausted."""
        with self._lock:
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                self.spent += 1
                return True
            self.denied += 1
            return False

    def record_success(self) -> None:
        """A request succeeded: earn back ``refill`` tokens."""
        with self._lock:
            self._tokens = min(self.capacity, self._tokens + self.refill)


@dataclass
class CircuitBreaker:
    """Per-strategy failure breaker: closed → open → half-open.

    After ``threshold`` consecutive failures the circuit opens and
    :meth:`allow` returns ``False`` until ``cooldown`` seconds pass, at
    which point one probe attempt is allowed (half-open); success closes the
    circuit, failure re-opens it.
    """

    threshold: int = 3
    cooldown: float = 30.0
    clock: object = time.monotonic
    failures: int = 0
    opened_at: float | None = field(default=None)

    @property
    def state(self) -> str:
        if self.opened_at is None:
            return "closed"
        if self.clock() - self.opened_at >= self.cooldown:
            return "half-open"
        return "open"

    def allow(self) -> bool:
        """Whether an attempt may proceed right now."""
        return self.state != "open"

    def record_failure(self) -> None:
        self.failures += 1
        if self.failures >= self.threshold:
            self.opened_at = self.clock()

    def record_success(self) -> None:
        self.failures = 0
        self.opened_at = None
