"""Retry with exponential backoff and per-strategy circuit breakers.

Both pieces are deterministic and clock-injectable so the test suite can
exercise open/half-open transitions and backoff schedules without sleeping.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


@dataclass
class RetryPolicy:
    """Exponential backoff for transient faults.

    ``attempts`` is the total number of tries per strategy (1 = no retry);
    the pause before retry *k* (1-based) is
    ``min(base_delay * multiplier**(k-1), max_delay)``.  ``sleep`` is
    injectable; tests pass a no-op.
    """

    attempts: int = 3
    base_delay: float = 0.01
    multiplier: float = 2.0
    max_delay: float = 1.0
    sleep: object = time.sleep

    def backoff(self, attempt: int) -> float:
        """Pause, in seconds, after failed attempt number *attempt* (1-based)."""
        return min(self.base_delay * self.multiplier ** (attempt - 1), self.max_delay)

    def pause(self, attempt: int, guard=None) -> None:
        """Sleep the backoff for *attempt*, clamped to the guard's deadline.

        When the guard's remaining time is already spent the pause is
        skipped — the next operator-boundary check will raise the timeout,
        keeping the failure typed instead of sleeping past the deadline.
        """
        delay = self.backoff(attempt)
        if guard is not None and guard.enabled:
            remaining = guard.remaining()
            if remaining is not None:
                delay = min(delay, remaining)
        if delay > 0:
            self.sleep(delay)


@dataclass
class CircuitBreaker:
    """Per-strategy failure breaker: closed → open → half-open.

    After ``threshold`` consecutive failures the circuit opens and
    :meth:`allow` returns ``False`` until ``cooldown`` seconds pass, at
    which point one probe attempt is allowed (half-open); success closes the
    circuit, failure re-opens it.
    """

    threshold: int = 3
    cooldown: float = 30.0
    clock: object = time.monotonic
    failures: int = 0
    opened_at: float | None = field(default=None)

    @property
    def state(self) -> str:
        if self.opened_at is None:
            return "closed"
        if self.clock() - self.opened_at >= self.cooldown:
            return "half-open"
        return "open"

    def allow(self) -> bool:
        """Whether an attempt may proceed right now."""
        return self.state != "open"

    def record_failure(self) -> None:
        self.failures += 1
        if self.failures >= self.threshold:
            self.opened_at = self.clock()

    def record_success(self) -> None:
        self.failures = 0
        self.opened_at = None
