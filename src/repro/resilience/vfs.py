"""Pluggable virtual file system for durability I/O, with fault injection.

Every byte the durability layers put on disk — checkpoint files written by
:mod:`repro.engine.persist`, WAL appends in :mod:`repro.serve.wal`, the
preference checkpoint in :mod:`repro.serve.server` — flows through the
ambient VFS installed here.  Like the guard, fault-plan and sanitizer
ambients, the default is a zero-overhead pass-through (:class:`RealVFS`,
one ContextVar read per durability call); tests install a seeded
:class:`FaultyVFS` with :func:`use_vfs` to make adversarial storage
testable (lint rule LN305 flags durability code that bypasses the VFS).

:class:`FaultyVFS` does two independent jobs:

* **Deterministic fault injection.**  Each faultable primitive — a file
  ``write``, an ``fsync``, a ``replace`` (rename), a directory fsync —
  consumes one *step*.  A :class:`VfsFault` script names the step at which
  to inject and the fault kind; the same script always fails at the same
  instant, so every crash point of a workload can be enumerated (probe
  with no script, then sweep ``step`` over ``range(len(vfs.ops))``).

* **ALICE-style power-cut modelling.**  The VFS tracks, per file, the
  *durable image*: the bytes guaranteed on disk.  Writes change only the
  live file; a successful ``fsync`` promotes the live content to durable;
  a ``replace`` stays *pending* — reverted by a power cut — until the
  parent directory is fsync'd.  :meth:`FaultyVFS.power_cut` restores every
  tracked file to its durable image: buffered-but-unsynced data vanishes,
  un-fsync'd renames roll back, un-fsync'd unlinks resurrect their file —
  the worst legal outcome of yanking the plug.

Fault kinds (:data:`FAULT_KINDS`, applicability per op in
:data:`KINDS_BY_OP`):

==================  ========================================================
``short-write``     Half the buffer reaches the file, then ``EIO``.
``eio-write``       The write fails with ``EIO``; nothing lands.
``enospc``          The write fails with ``ENOSPC`` (disk full).
``eio-fsync``       The fsync fails with ``EIO`` **and the dirty pages are
                    dropped** — the post-2018 "fsyncgate" semantics: after
                    a failed fsync the kernel may mark pages clean without
                    persisting them, so the caller must fail-stop.
``torn-rename``     The rename lands in the live namespace, then the power
                    fails before the directory entry is durable — recovery
                    sees the *old* name mapping.
``power-cut``       The power fails at this step; the op does not happen.
==================  ========================================================

The real ``os.fsync`` is **not** issued by :class:`FaultyVFS`: durability
is modelled by the image map instead of delegated to the kernel, which
makes a full crash-point sweep run in milliseconds.  The subprocess
SIGKILL harness (:mod:`repro.resilience.crashtest`) complements this with
genuine fsyncs against the real VFS.
"""

from __future__ import annotations

import errno
import os
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass

from ..errors import PowerCut

#: Every fault kind :class:`FaultyVFS` can inject.
FAULT_KINDS = (
    "short-write",
    "eio-write",
    "enospc",
    "eio-fsync",
    "torn-rename",
    "power-cut",
)

#: Which fault kinds are meaningful at which faultable op.  The torture
#: loop uses this to pick a kind that actually bites at each step.
KINDS_BY_OP = {
    "write": ("short-write", "eio-write", "enospc", "power-cut"),
    "fsync": ("eio-fsync", "power-cut"),
    "replace": ("torn-rename", "power-cut"),
    "fsync_dir": ("eio-fsync", "power-cut"),
}


@dataclass(frozen=True)
class VfsFault:
    """One scripted injection: at faultable-op number *step*, fail as *kind*."""

    step: int
    kind: str

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown VFS fault kind {self.kind!r}; choose {FAULT_KINDS}")


class RealVFS:
    """The pass-through default: every primitive goes straight to the OS."""

    faulty = False

    def open(self, path: str, mode: str = "r", *, encoding=None, newline=None):
        return open(path, mode, encoding=encoding, newline=newline)

    def fsync(self, handle) -> None:
        """Flush *handle* (opened through this VFS) and fsync it to disk."""
        handle.flush()
        os.fsync(handle.fileno())

    def fsync_dir(self, directory: str) -> None:
        """Persist directory-entry changes (renames, unlinks) under *directory*.

        Failure to *open* the directory, or an fsync rejection such as
        ``EINVAL``, is a platform limitation and is swallowed; a genuine
        I/O failure (``EIO``/``ENOSPC``) propagates so callers can refuse
        to build on renames that never became durable.
        """
        try:
            dir_fd = os.open(directory or ".", os.O_RDONLY)
        except OSError:  # pragma: no cover - platform-dependent
            return
        try:
            os.fsync(dir_fd)
        except OSError as err:  # pragma: no cover - platform-dependent
            if err.errno in (errno.EIO, errno.ENOSPC):
                raise
        finally:
            os.close(dir_fd)

    def replace(self, src: str, dst: str) -> None:
        os.replace(src, dst)

    def remove(self, path: str) -> None:
        os.remove(path)

    def exists(self, path: str) -> bool:
        return os.path.exists(path)

    def makedirs(self, path: str) -> None:
        os.makedirs(path, exist_ok=True)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "RealVFS()"


#: Sentinel durable image for "this file does not durably exist".
_ABSENT = object()


class _FaultyFile:
    """A writable handle whose writes pass through the owning FaultyVFS."""

    def __init__(self, vfs: "FaultyVFS", raw, path: str):
        self._vfs = vfs
        self._raw = raw
        self.path = path

    def write(self, data):
        return self._vfs._file_write(self, data)

    def flush(self) -> None:
        self._raw.flush()

    def truncate(self, size=None):
        # Not a faultable step of its own: truncation is only issued by
        # recovery (torn-tail cleanup), which the torture loop runs clean.
        self._raw.flush()
        return self._raw.truncate(size if size is not None else self._raw.tell())

    def fileno(self) -> int:
        return self._raw.fileno()

    def close(self) -> None:
        self._raw.close()

    def __enter__(self) -> "_FaultyFile":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __getattr__(self, name):
        return getattr(self._raw, name)


class FaultyVFS:
    """A VFS that injects scripted storage failures and models power cuts.

    With ``script=None`` it is a recorder: every faultable op is appended
    to :attr:`ops` as ``(op, path)`` and nothing fails — the probe run the
    torture loop uses to enumerate a workload's crash points.  With a
    :class:`VfsFault` script, the op whose zero-based index equals
    ``script.step`` fails as ``script.kind``.
    """

    faulty = True

    def __init__(self, script: VfsFault | None = None):
        self.script = script
        #: Every faultable op seen, in order: ``(op, path)`` pairs.
        self.ops: list[tuple[str, str]] = []
        #: Whether the scripted fault actually fired.
        self.fired = False
        self._durable: dict[str, object] = {}
        #: Renames/unlinks applied live but not yet directory-fsync'd.
        self._pending: list[tuple] = []

    # -- durable-image bookkeeping -------------------------------------------

    def _ensure_tracked(self, path: str) -> None:
        path = os.path.abspath(path)
        if path in self._durable:
            return
        if os.path.exists(path):
            with open(path, "rb") as handle:
                self._durable[path] = handle.read()
        else:
            self._durable[path] = _ABSENT

    def _commit(self, path: str, image) -> None:
        self._durable[os.path.abspath(path)] = image

    def _image(self, path: str):
        return self._durable.get(os.path.abspath(path), _ABSENT)

    def unsynced_paths(self) -> list[str]:
        """Tracked files whose live content differs from their durable image."""
        out = []
        for path, image in sorted(self._durable.items()):
            live = None
            if os.path.exists(path):
                with open(path, "rb") as handle:
                    live = handle.read()
            durable = None if image is _ABSENT else image
            if live != durable:
                out.append(path)
        return out

    def power_cut(self) -> None:
        """Simulate the plug being pulled: revert every file to its durable image.

        Unsynced writes vanish, pending (un-dir-fsync'd) renames roll back,
        pending unlinks resurrect their file.  After this the directory is
        exactly what a remounted disk would show; reopen and recover.
        """
        for path, image in self._durable.items():
            if image is _ABSENT:
                if os.path.exists(path):
                    os.remove(path)
            else:
                # The parent may have been garbage-collected since the image
                # was taken (checkpoint GC); resurrect it — extra files in an
                # unreferenced directory are invisible to recovery.
                os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
                with open(path, "wb") as handle:
                    handle.write(image)  # type: ignore[arg-type]
        self._pending.clear()

    # -- the injection protocol ----------------------------------------------

    def _step(self, op: str, path: str) -> str | None:
        """Record one faultable op; returns the fault kind to inject, if any."""
        index = len(self.ops)
        self.ops.append((op, path))
        if self.script is not None and index == self.script.step:
            self.fired = True
            return self.script.kind
        return None

    def _os_error(self, code: int, op: str, path: str) -> OSError:
        return OSError(code, f"injected {os.strerror(code)}", path)

    # -- primitives -----------------------------------------------------------

    def open(self, path: str, mode: str = "r", *, encoding=None, newline=None):
        writable = any(flag in mode for flag in ("w", "a", "+", "x"))
        if writable:
            self._ensure_tracked(path)
        raw = open(path, mode, encoding=encoding, newline=newline)
        if not writable:
            return raw
        return _FaultyFile(self, raw, os.path.abspath(path))

    def _file_write(self, handle: _FaultyFile, data):
        kind = self._step("write", handle.path)
        if kind == "power-cut":
            raise PowerCut("write", handle.path)
        if kind == "short-write":
            handle._raw.write(data[: max(1, len(data) // 2)])
            raise self._os_error(errno.EIO, "write", handle.path)
        if kind == "eio-write":
            raise self._os_error(errno.EIO, "write", handle.path)
        if kind == "enospc":
            raise self._os_error(errno.ENOSPC, "write", handle.path)
        return handle._raw.write(data)

    def fsync(self, handle) -> None:
        if not isinstance(handle, _FaultyFile):  # opened through another VFS
            handle.flush()
            os.fsync(handle.fileno())
            return
        handle._raw.flush()
        kind = self._step("fsync", handle.path)
        if kind == "power-cut":
            raise PowerCut("fsync", handle.path)
        if kind is not None:  # eio-fsync: dirty pages are dropped, then EIO
            self._drop_dirty(handle.path)
            raise self._os_error(errno.EIO, "fsync", handle.path)
        # Durability is modelled, not delegated: no real os.fsync here.
        with open(handle.path, "rb") as current:
            self._commit(handle.path, current.read())

    def _drop_dirty(self, path: str) -> None:
        """fsyncgate: a failed fsync loses the pages it was asked to persist."""
        image = self._image(path)
        if image is _ABSENT:
            if os.path.exists(path):
                os.remove(path)
        else:
            with open(path, "wb") as handle:
                handle.write(image)  # type: ignore[arg-type]

    def replace(self, src: str, dst: str) -> None:
        self._ensure_tracked(src)
        self._ensure_tracked(dst)
        kind = self._step("replace", dst)
        if kind == "power-cut":
            raise PowerCut("replace", dst)
        if kind == "torn-rename":
            # The rename lands live, the power fails before the directory
            # entry does: recovery must see the pre-rename mapping.
            os.replace(src, dst)
            self._pending.append(("rename", src, dst, self._image(src)))
            raise PowerCut("replace", dst)
        if kind is not None:
            raise self._os_error(errno.EIO, "replace", dst)
        os.replace(src, dst)
        self._pending.append(("rename", src, dst, self._image(src)))

    def remove(self, path: str) -> None:
        self._ensure_tracked(path)
        os.remove(path)
        self._pending.append(("remove", path))

    def fsync_dir(self, directory: str) -> None:
        kind = self._step("fsync_dir", directory)
        if kind == "power-cut":
            raise PowerCut("fsync_dir", directory)
        if kind is not None:
            raise self._os_error(errno.EIO, "fsync_dir", directory)
        directory = os.path.abspath(directory)
        kept: list[tuple] = []
        for entry in self._pending:
            target = entry[2] if entry[0] == "rename" else entry[1]
            if os.path.dirname(os.path.abspath(target)) != directory:
                kept.append(entry)
            elif entry[0] == "rename":
                _, src, dst, src_image = entry
                self._commit(dst, src_image)
                self._commit(src, _ABSENT)
            else:
                self._commit(entry[1], _ABSENT)
        self._pending = kept

    def exists(self, path: str) -> bool:
        return os.path.exists(path)

    def makedirs(self, path: str) -> None:
        os.makedirs(path, exist_ok=True)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultyVFS(script={self.script}, ops={len(self.ops)})"


#: The always-installed default VFS.
REAL_VFS = RealVFS()

_CURRENT: ContextVar["RealVFS | FaultyVFS"] = ContextVar("repro_vfs", default=REAL_VFS)


def current_vfs() -> "RealVFS | FaultyVFS":
    """The VFS installed for the current context (:data:`REAL_VFS` by default)."""
    return _CURRENT.get()


@contextmanager
def use_vfs(vfs: "RealVFS | FaultyVFS | None"):
    """Install *vfs* as the ambient VFS for the enclosed block."""
    token = _CURRENT.set(vfs if vfs is not None else REAL_VFS)
    try:
        yield vfs
    finally:
        # Mirror guard/faults: tolerate a token from another Context rather
        # than leaking a faulty VFS into the next operation on this thread.
        try:
            _CURRENT.reset(token)
        except ValueError:  # pragma: no cover - cross-context teardown
            _CURRENT.set(REAL_VFS)
