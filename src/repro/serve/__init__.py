"""The concurrent serving layer: snapshots, WAL durability, admission control.

Three pillars (see ``docs/SERVING.md``):

* **Snapshot isolation** — :meth:`repro.engine.database.Database.snapshot`
  and :meth:`repro.query.store.PreferenceStore.snapshot` hand every query a
  consistent, immutable copy-on-write view; writers proceed concurrently.
* **Preference WAL + crash recovery** — :class:`~repro.serve.wal.PreferenceWAL`
  is an append-only, fsync'd, checksummed log of preference and table
  mutations; :class:`~repro.serve.server.PreferenceServer` checkpoints it
  and replays it on open, truncating a torn tail and surfacing real
  corruption as typed :exc:`~repro.errors.DataCorruption`.
* **Admission control** — :class:`~repro.serve.executor.ServeExecutor` is a
  bounded worker pool with queue limits, per-session concurrency caps, load
  shedding via typed :exc:`~repro.errors.Overloaded`, graceful drain and
  p50/p95/p99 latency accounting.

This package initializer is deliberately import-light: ``engine.database``
imports :mod:`repro.serve.rwlock`, so everything touching the execution
stack loads lazily through module ``__getattr__``.
"""

from __future__ import annotations

from .rwlock import RWLock

__all__ = [
    "RWLock",
    "PreferenceWAL",
    "WalRecord",
    "WalReplay",
    "PreferenceServer",
    "ServerSnapshot",
    "ServeExecutor",
    "LatencyStats",
]

_LAZY = {
    "PreferenceWAL": ("repro.serve.wal", "PreferenceWAL"),
    "WalRecord": ("repro.serve.wal", "WalRecord"),
    "WalReplay": ("repro.serve.wal", "WalReplay"),
    "PreferenceServer": ("repro.serve.server", "PreferenceServer"),
    "ServerSnapshot": ("repro.serve.server", "ServerSnapshot"),
    "ServeExecutor": ("repro.serve.executor", "ServeExecutor"),
    "LatencyStats": ("repro.serve.executor", "LatencyStats"),
}


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)
