"""``python -m repro serve-bench``: throughput and tail latency under load.

A closed-loop serving benchmark: *threads* client threads each submit one
preferential IMDB query at a time through a :class:`ServeExecutor` sized to
the same thread count, against a fresh :class:`ServerSnapshot` per query —
exactly the per-request path a concurrent deployment runs.  A background
writer thread keeps mutating preferences through the server write path the
whole time, so the numbers include snapshot capture under writer churn, not
an idle read-only fast path.

Reported: sustained throughput (queries/s) plus the p50/p95/p99 of the
admit→finish latency and the p95 queue wait, straight from the executor's
:class:`~repro.serve.executor.LatencyStats`.  The same stats render to a
``serve.latency`` span for the obs sinks (``--trace-out``), giving serving
telemetry the same JSONL artifact path as query traces.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from ..errors import Overloaded, ReproError
from .executor import ServeExecutor

#: Preferences every benchmark user starts with (loggable, multi-relation).
BENCH_SQL = """
    SELECT title, director, year FROM MOVIES
      NATURAL JOIN GENRES
      NATURAL JOIN DIRECTORS
    WHERE year >= 1980
    PREFERRING {names}
    TOP 10 BY score
"""


@dataclass
class ServeBenchReport:
    """Outcome of one serve-bench run."""

    threads: int
    duration: float
    strategy: str
    scale: float
    completed: int = 0
    failed: int = 0
    shed: int = 0
    writer_ops: int = 0
    elapsed: float = 0.0
    latency: dict = field(default_factory=dict)
    errors: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors and self.failed == 0 and self.completed > 0

    @property
    def qps(self) -> float:
        return self.completed / self.elapsed if self.elapsed > 0 else 0.0

    def describe(self) -> str:
        lines = [
            f"serve-bench: threads={self.threads} duration={self.duration}s "
            f"strategy={self.strategy} scale={self.scale}",
            f"  completed {self.completed} queries in {self.elapsed:.2f}s "
            f"→ {self.qps:.1f} q/s  (failed={self.failed} shed={self.shed})",
            "  latency: p50={p50_ms}ms p95={p95_ms}ms p99={p99_ms}ms "
            "queue-p95={queue_p95_ms}ms".format(**self.latency),
            f"  writer mutations during run: {self.writer_ops}",
        ]
        lines.extend(f"  ERROR {error}" for error in self.errors)
        lines.append("serve-bench: " + ("OK" if self.ok else "FAILED"))
        return "\n".join(lines)


def serve_bench(
    threads: int = 4,
    duration: float = 2.0,
    *,
    strategy: str = "gbu",
    scale: float = 0.001,
    seed: int = 42,
    queue_limit: int | None = None,
    session_limit: int | None = None,
    trace_sink=None,
    columnar: bool = False,
    partitions: int | None = None,
) -> ServeBenchReport:
    """Run the closed-loop serving benchmark; returns the report.

    Everything is in-memory (ephemeral server): the benchmark measures the
    snapshot/execute/admission path, not disk.  ``queue_limit`` defaults to
    ``2 × threads``; sheds are counted, not errors — closed-loop clients
    retry immediately.  ``columnar``/``partitions`` route every served
    query through the columnar (partition-parallel) engine, measuring its
    behaviour under concurrent snapshot load.
    """
    from ..resilience.chaos_concurrent import _base_preference, preference_pool
    from ..serve.server import PreferenceServer
    from ..workloads.imdb import generate_imdb

    import random

    report = ServeBenchReport(
        threads=threads, duration=duration, strategy=strategy, scale=scale
    )
    server = PreferenceServer(generate_imdb(scale=scale, seed=seed))
    users = [f"bench{i}" for i in range(threads)]
    pool = preference_pool()
    for index, user in enumerate(users):
        server.add_preference(user, _base_preference())
        server.add_preference(user, pool[index % len(pool)])

    stop = threading.Event()

    def writer_loop() -> None:
        rng = random.Random(seed)
        ops = 0
        while not stop.is_set():
            user = rng.choice(users)
            preference = rng.choice(pool)
            try:
                if rng.random() < 0.5:
                    server.add_preference(user, preference)
                else:
                    server.remove_preference(user, preference.name)
                ops += 1
            except ReproError:
                pass  # duplicate add: expected churn
            time.sleep(0.001)  # steady background write rate, not a write storm
        report.writer_ops = ops

    def one_query(user: str):
        snapshot = server.snapshot()
        names = sorted(p.name for p in snapshot.store.preferences_of(user))
        session = snapshot.session_for(user)
        return session.execute(
            BENCH_SQL.format(names=", ".join(names)),
            strategy=strategy,
            columnar=columnar,
            partitions=partitions,
        )

    executor = ServeExecutor(
        workers=threads,
        queue_limit=2 * threads if queue_limit is None else queue_limit,
        session_limit=session_limit,
        name="serve-bench",
    )
    deadline = time.perf_counter() + duration

    def client_loop(client_id: int) -> None:
        user = users[client_id % len(users)]
        while time.perf_counter() < deadline:
            try:
                executor.run(one_query, user, session=user)
            except Overloaded:
                continue  # shed: already counted by the executor
            except ReproError as err:
                report.errors.append(f"client{client_id}: {err!r}")
                return
            except Exception as err:  # noqa: BLE001 - untyped failure fails the bench
                report.errors.append(f"client{client_id} untyped: {err!r}")
                return

    writer = threading.Thread(target=writer_loop, name="serve-bench-writer")
    clients = [
        threading.Thread(target=client_loop, args=(i,), name=f"serve-bench-client-{i}")
        for i in range(threads)
    ]
    started = time.perf_counter()
    writer.start()
    for client in clients:
        client.start()
    for client in clients:
        client.join()
    stop.set()
    writer.join()
    executor.shutdown()
    report.elapsed = time.perf_counter() - started
    stats = executor.stats.snapshot()
    report.completed = stats["completed"]
    report.failed = stats["failed"]
    report.shed = stats["shed"]
    report.latency = stats
    if trace_sink is not None:
        executor.report_to(
            trace_sink,
            meta={
                "benchmark": "serve-bench",
                "threads": threads,
                "duration_s": duration,
                "strategy": strategy,
                "scale": scale,
                "qps": round(report.qps, 2),
            },
        )
    return report
