"""JSON codec for preferences, used by the WAL and the checkpoint files.

Expression trees (:mod:`repro.engine.expressions`) and the expression-based
scoring functions are closed sets, so they round-trip through plain JSON —
no pickling, which keeps WAL records human-readable, diffable, and safe to
checksum byte-for-byte.  Two things are *not* loggable and raise a typed
:exc:`~repro.errors.PreferenceError` at write time (before anything hits
the log):

* :class:`~repro.core.scoring.CallableScore` — an arbitrary Python callable
  has no faithful serialized form;
* :class:`~repro.core.context.ContextualPreference` with a *predicate*
  activation condition (mapping conditions round-trip fine).

``canonical_json`` is the byte form both the WAL checksums and the
recovery-equivalence digests (:func:`repro.serve.server.state_digest`) are
computed over: sorted keys, no whitespace, so equal states hash equal.
"""

from __future__ import annotations

import json
from typing import Any

from ..core.context import ContextualPreference
from ..core.preference import Preference
from ..core.scoring import CallableScore, ConstantScore, ExprScore, ScoringFunction
from ..engine import expressions as ex
from ..errors import DataCorruption, PreferenceError


def canonical_json(payload: Any) -> str:
    """Deterministic JSON text: sorted keys, compact separators."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


def expr_to_dict(expr: ex.Expr) -> dict:
    """Serialize an expression tree to a JSON-compatible dictionary."""
    if isinstance(expr, ex.Literal):
        return {"t": "lit", "v": expr.value}
    if isinstance(expr, ex.Attr):
        return {"t": "attr", "name": expr.name}
    if isinstance(expr, ex.Comparison):
        return {
            "t": "cmp",
            "op": expr.op,
            "l": expr_to_dict(expr.left),
            "r": expr_to_dict(expr.right),
        }
    if isinstance(expr, ex.InList):
        return {
            "t": "in",
            "e": expr_to_dict(expr.expr),
            "vs": sorted(expr.values, key=repr),
        }
    if isinstance(expr, ex.Between):
        return {
            "t": "between",
            "e": expr_to_dict(expr.expr),
            "lo": expr.low,
            "hi": expr.high,
        }
    if isinstance(expr, ex.IsNull):
        return {"t": "isnull", "e": expr_to_dict(expr.expr), "neg": expr.negated}
    if isinstance(expr, ex.And):
        return {"t": "and", "ops": [expr_to_dict(op) for op in expr.operands]}
    if isinstance(expr, ex.Or):
        return {"t": "or", "ops": [expr_to_dict(op) for op in expr.operands]}
    if isinstance(expr, ex.Not):
        return {"t": "not", "e": expr_to_dict(expr.operand)}
    if isinstance(expr, ex.Arithmetic):
        return {
            "t": "arith",
            "op": expr.op,
            "l": expr_to_dict(expr.left),
            "r": expr_to_dict(expr.right),
        }
    if isinstance(expr, ex.Func):
        return {
            "t": "func",
            "name": expr.name,
            "args": [expr_to_dict(arg) for arg in expr.args],
        }
    raise PreferenceError(f"cannot serialize expression node {expr!r} for the WAL")


def expr_from_dict(data: dict) -> ex.Expr:
    """Rebuild an expression tree serialized by :func:`expr_to_dict`."""
    try:
        kind = data["t"]
        if kind == "lit":
            return ex.Literal(data["v"])
        if kind == "attr":
            return ex.Attr(data["name"])
        if kind == "cmp":
            return ex.Comparison(
                data["op"], expr_from_dict(data["l"]), expr_from_dict(data["r"])
            )
        if kind == "in":
            return ex.InList(expr_from_dict(data["e"]), data["vs"])
        if kind == "between":
            return ex.Between(expr_from_dict(data["e"]), data["lo"], data["hi"])
        if kind == "isnull":
            return ex.IsNull(expr_from_dict(data["e"]), data["neg"])
        if kind == "and":
            return ex.And(*(expr_from_dict(op) for op in data["ops"]))
        if kind == "or":
            return ex.Or(*(expr_from_dict(op) for op in data["ops"]))
        if kind == "not":
            return ex.Not(expr_from_dict(data["e"]))
        if kind == "arith":
            return ex.Arithmetic(
                data["op"], expr_from_dict(data["l"]), expr_from_dict(data["r"])
            )
        if kind == "func":
            return ex.Func(data["name"], *(expr_from_dict(arg) for arg in data["args"]))
    except (KeyError, TypeError) as err:
        raise DataCorruption(f"malformed expression record: {err}") from err
    raise DataCorruption(f"unknown expression node kind {kind!r} in WAL record")


# ---------------------------------------------------------------------------
# Scoring functions
# ---------------------------------------------------------------------------


def scoring_to_dict(scoring: ScoringFunction) -> dict:
    if isinstance(scoring, ConstantScore):
        return {"t": "const", "v": scoring.value}
    if isinstance(scoring, ExprScore):
        return {"t": "expr", "e": expr_to_dict(scoring.expr), "label": scoring.label}
    if isinstance(scoring, CallableScore):
        raise PreferenceError(
            f"CallableScore {scoring.describe()!r} cannot be written to the "
            "WAL: arbitrary Python callables have no faithful serialized "
            "form — use ExprScore or register it outside the durable store"
        )
    raise PreferenceError(f"cannot serialize scoring function {scoring!r} for the WAL")


def scoring_from_dict(data: dict) -> ScoringFunction:
    try:
        kind = data["t"]
        if kind == "const":
            return ConstantScore(data["v"])
        if kind == "expr":
            return ExprScore(expr_from_dict(data["e"]), data.get("label"))
    except (KeyError, TypeError) as err:
        raise DataCorruption(f"malformed scoring record: {err}") from err
    raise DataCorruption(f"unknown scoring kind {kind!r} in WAL record")


# ---------------------------------------------------------------------------
# Preferences
# ---------------------------------------------------------------------------


def preference_to_dict(stored: "Preference | ContextualPreference") -> dict:
    """Serialize a stored preference (plain or contextual)."""
    if isinstance(stored, ContextualPreference):
        if callable(stored.when):
            raise PreferenceError(
                f"contextual preference {stored.name!r} uses a predicate "
                "callable activation condition, which cannot be written to "
                "the WAL — use a mapping condition for durable preferences"
            )
        return {
            "t": "contextual",
            "pref": preference_to_dict(stored.preference),
            "when": dict(stored.when),
        }
    if not isinstance(stored, Preference):
        raise PreferenceError(f"cannot serialize {stored!r} as a preference")
    return {
        "t": "pref",
        "name": stored.name,
        "relations": list(stored.relations),
        "condition": expr_to_dict(stored.condition),
        "scoring": scoring_to_dict(stored.scoring),
        "confidence": stored.confidence,
    }


def preference_from_dict(data: dict) -> "Preference | ContextualPreference":
    try:
        kind = data["t"]
        if kind == "contextual":
            inner = preference_from_dict(data["pref"])
            return ContextualPreference(inner, data["when"])
        if kind == "pref":
            return Preference(
                data["name"],
                data["relations"],
                expr_from_dict(data["condition"]),
                scoring_from_dict(data["scoring"]),
                data["confidence"],
            )
    except DataCorruption:
        raise
    except (KeyError, TypeError) as err:
        raise DataCorruption(f"malformed preference record: {err}") from err
    raise DataCorruption(f"unknown preference kind {kind!r} in WAL record")
