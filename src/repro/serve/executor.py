"""Admission control: a bounded worker pool with load shedding.

The serving layer admits work through a :class:`ServeExecutor` — a fixed
pool of worker threads in front of a bounded queue.  Three admission checks
run *before* a request is accepted, each shedding with a typed
:exc:`~repro.errors.Overloaded` naming the tripped limit:

* **queue-full** — the bounded request queue is at ``queue_limit``.  Under
  sustained overload the server answers "try later" in microseconds instead
  of building an unbounded backlog whose tail latency grows without bound.
* **session-limit** — one session already has ``session_limit`` requests
  queued or running; a single aggressive client cannot monopolize the pool.
* **shutting-down** — :meth:`drain`/:meth:`shutdown` was called; nothing
  new is admitted while queued work finishes.

Ambient context (the resilience :class:`~repro.resilience.QueryGuard`, the
:class:`~repro.obs.Tracer`, an installed fault plan) is captured with
``contextvars.copy_context()`` at submission and restored inside the worker
thread, so a guard armed by the submitting thread still cancels the query
when it runs on a worker — the hazard the ``capture()/restore()`` helpers
in :mod:`repro.resilience.guard` and :mod:`repro.obs.tracer` document.

Every completed request feeds :class:`LatencyStats` (p50/p95/p99 over the
admit→finish wall time, plus queue-wait percentiles), which renders to a
trace :class:`~repro.obs.Span` so ``repro serve-bench`` and the bench
harness can write serving telemetry through the ordinary obs sinks.
"""

from __future__ import annotations

import contextvars
import threading
import time
from collections import deque
from concurrent.futures import Future

from ..errors import Overloaded
from ..obs.tracer import Span

_RUNNING = "running"
_DRAINING = "draining"
_STOPPED = "stopped"


def percentile(samples: list[float], fraction: float) -> float:
    """Nearest-rank percentile of *samples* (0 for an empty list).

    Nearest-rank (not interpolated) so the reported p99 is a latency some
    request actually experienced.
    """
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1)))))
    return ordered[rank]


class LatencyStats:
    """Thread-safe latency and admission accounting for one executor.

    ``observe`` records one finished request (admit→finish wall ms and the
    portion spent queued); ``shed`` counts a rejected one.  Percentiles are
    computed over every recorded sample — serving benchmarks run seconds,
    not days, so an exact (unsampled) record is affordable and keeps the
    tail honest.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._total_ms: list[float] = []
        self._queue_ms: list[float] = []
        self.completed = 0
        self.failed = 0
        self.shed = 0

    # -- recording ---------------------------------------------------------------

    def observe(self, total_ms: float, queue_ms: float, ok: bool) -> None:
        with self._lock:
            self._total_ms.append(total_ms)
            self._queue_ms.append(queue_ms)
            if ok:
                self.completed += 1
            else:
                self.failed += 1

    def count_shed(self) -> None:
        with self._lock:
            self.shed += 1

    # -- reading -----------------------------------------------------------------

    @property
    def admitted(self) -> int:
        return self.completed + self.failed

    def percentile_ms(self, fraction: float) -> float:
        with self._lock:
            return percentile(self._total_ms, fraction)

    @property
    def p50_ms(self) -> float:
        return self.percentile_ms(0.50)

    @property
    def p95_ms(self) -> float:
        return self.percentile_ms(0.95)

    @property
    def p99_ms(self) -> float:
        return self.percentile_ms(0.99)

    def queue_percentile_ms(self, fraction: float) -> float:
        with self._lock:
            return percentile(self._queue_ms, fraction)

    def retry_after_hint(
        self, backlog: int, workers: int, default: float = 0.05
    ) -> float:
        """Estimated seconds until a shed request stands a chance of admission.

        Derived from the observed median service time and the backlog the
        retry would queue behind: ``p50 · (backlog+1) / workers``, clamped
        to [10ms, 5s].  Before any sample exists, *default* stands in for
        the median.  The point is not precision — it is giving every shed
        client a load-derived pause so retries re-arrive spread out instead
        of on a synchronized backoff schedule.
        """
        with self._lock:
            service = percentile(self._total_ms, 0.50) / 1e3
        if service <= 0.0:
            service = default
        return min(5.0, max(0.01, service * (backlog + 1) / max(1, workers)))

    def snapshot(self) -> dict:
        """One consistent dictionary of counters and percentiles."""
        with self._lock:
            totals = list(self._total_ms)
            queues = list(self._queue_ms)
            completed, failed, shed = self.completed, self.failed, self.shed
        return {
            "admitted": completed + failed,
            "completed": completed,
            "failed": failed,
            "shed": shed,
            "p50_ms": round(percentile(totals, 0.50), 3),
            "p95_ms": round(percentile(totals, 0.95), 3),
            "p99_ms": round(percentile(totals, 0.99), 3),
            "queue_p95_ms": round(percentile(queues, 0.95), 3),
        }

    def to_span(self, label: str = "") -> Span:
        """Render the accounting as a finished trace span for the obs sinks."""
        span = Span("serve.latency", label=label)
        snap = self.snapshot()
        for counter in ("admitted", "completed", "failed", "shed"):
            if snap[counter]:
                span.add(counter, snap[counter])
        for key in ("p50_ms", "p95_ms", "p99_ms", "queue_p95_ms"):
            span.set(key, snap[key])
        span.finish()
        return span

    def describe(self) -> str:
        snap = self.snapshot()
        return (
            f"admitted={snap['admitted']} completed={snap['completed']} "
            f"failed={snap['failed']} shed={snap['shed']}  "
            f"p50={snap['p50_ms']:.2f}ms p95={snap['p95_ms']:.2f}ms "
            f"p99={snap['p99_ms']:.2f}ms"
        )


class _Job:
    __slots__ = ("future", "context", "fn", "args", "kwargs", "session", "enqueued")

    def __init__(self, fn, args, kwargs, session):
        self.future: Future = Future()
        # The admission boundary is where ambient ContextVars would silently
        # drop to their defaults; copying the submitter's context here is
        # what carries guard/tracer/fault-plan into the worker.
        self.context = contextvars.copy_context()
        self.fn = fn
        self.args = args
        self.kwargs = kwargs
        self.session = session
        self.enqueued = time.perf_counter()


class ServeExecutor:
    """Bounded worker pool with typed load shedding and graceful drain.

    :param workers: worker-thread count (the concurrency ceiling).
    :param queue_limit: requests allowed to *wait*; an arrival beyond it is
        shed with ``Overloaded("queue-full")``.  0 means no waiting room —
        a request is admitted only when a worker is free.
    :param session_limit: per-session cap on queued+running requests
        (``None``: uncapped).
    :param stats: share a :class:`LatencyStats` across executors if desired.
    """

    def __init__(
        self,
        workers: int = 4,
        *,
        queue_limit: int = 32,
        session_limit: int | None = None,
        stats: LatencyStats | None = None,
        name: str = "serve",
    ) -> None:
        if workers < 1:
            raise ValueError("ServeExecutor needs at least one worker")
        if queue_limit < 0:
            raise ValueError("queue_limit must be >= 0")
        if session_limit is not None and session_limit < 1:
            raise ValueError("session_limit must be >= 1 (or None)")
        self.queue_limit = queue_limit
        self.session_limit = session_limit
        self.stats = stats if stats is not None else LatencyStats()
        self.name = name
        self._lock = threading.Lock()
        self._has_work = threading.Condition(self._lock)
        self._idle = threading.Condition(self._lock)
        self._queue: deque[_Job] = deque()
        self._in_flight: dict[str, int] = {}
        self._running = 0
        self._state = _RUNNING
        self._threads = [
            threading.Thread(
                target=self._worker_loop, name=f"{name}-worker-{i}", daemon=True
            )
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # -- admission ---------------------------------------------------------------

    def submit(self, fn, /, *args, session: str | None = None, **kwargs) -> Future:
        """Admit one request, or shed it with :exc:`~repro.errors.Overloaded`.

        Returns a :class:`concurrent.futures.Future`; the callable runs on a
        worker thread inside a copy of the submitter's context.
        """
        job = _Job(fn, args, kwargs, session)
        with self._lock:
            if self._state != _RUNNING:
                self.stats.count_shed()
                raise Overloaded("shutting-down")
            # In-flight capacity = one request per worker plus queue_limit
            # of waiting room, so queue_limit=0 still admits up to
            # ``workers`` concurrent requests (none of them waiting).
            if len(self._queue) + self._running >= len(self._threads) + self.queue_limit:
                self.stats.count_shed()
                raise Overloaded(
                    "queue-full",
                    limit=self.queue_limit,
                    retry_after=self.stats.retry_after_hint(
                        len(self._queue) + self._running, len(self._threads)
                    ),
                )
            if session is not None and self.session_limit is not None:
                if self._in_flight.get(session, 0) >= self.session_limit:
                    self.stats.count_shed()
                    raise Overloaded(
                        "session-limit",
                        limit=self.session_limit,
                        session=session,
                        # One of the session's own requests must finish first.
                        retry_after=self.stats.retry_after_hint(
                            self._in_flight.get(session, 0), len(self._threads)
                        ),
                    )
            if session is not None:
                self._in_flight[session] = self._in_flight.get(session, 0) + 1
            self._queue.append(job)
            self._has_work.notify()
        return job.future

    def run(self, fn, /, *args, session: str | None = None, timeout=None, **kwargs):
        """Admit, wait, and return the result (or raise what the job raised)."""
        return self.submit(fn, *args, session=session, **kwargs).result(timeout)

    # -- the workers -------------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            with self._lock:
                while not self._queue and self._state != _STOPPED:
                    self._has_work.wait()
                if not self._queue and self._state == _STOPPED:
                    return
                job = self._queue.popleft()
                self._running += 1
            try:
                self._execute(job)
            finally:
                with self._lock:
                    self._running -= 1
                    if job.session is not None:
                        remaining = self._in_flight.get(job.session, 1) - 1
                        if remaining > 0:
                            self._in_flight[job.session] = remaining
                        else:
                            self._in_flight.pop(job.session, None)
                    if not self._queue and self._running == 0:
                        self._idle.notify_all()

    def _execute(self, job: _Job) -> None:
        if not job.future.set_running_or_notify_cancel():
            return  # cancelled while queued: nothing ran, nothing to record
        started = time.perf_counter()
        queue_ms = (started - job.enqueued) * 1e3
        result, error = None, None
        try:
            result = job.context.run(job.fn, *job.args, **job.kwargs)
        except BaseException as err:  # noqa: BLE001 - relayed through the future
            error = err
        # Record the observation *before* publishing the result: the waiter
        # wakes the instant set_result runs, and a fast client could read a
        # stats snapshot that does not yet count its own completed request.
        total_ms = (time.perf_counter() - started) * 1e3 + queue_ms
        self.stats.observe(total_ms, queue_ms, error is None)
        if error is None:
            job.future.set_result(result)
        else:
            job.future.set_exception(error)

    # -- lifecycle ---------------------------------------------------------------

    @property
    def draining(self) -> bool:
        with self._lock:
            return self._state != _RUNNING

    @property
    def workers(self) -> int:
        """The worker-thread count (the concurrency ceiling)."""
        return len(self._threads)

    def pending(self) -> int:
        """Requests admitted but not yet finished (queued + running)."""
        with self._lock:
            return len(self._queue) + self._running

    def drain(self, timeout: float | None = None) -> bool:
        """Stop admitting and wait for all admitted work to finish.

        Returns False if *timeout* elapsed first (the executor stays in the
        draining state; admitted work keeps running).
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            if self._state == _RUNNING:
                self._state = _DRAINING
            while self._queue or self._running:
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return False
                self._idle.wait(remaining)
        return True

    def shutdown(self, *, wait: bool = True, timeout: float | None = None) -> None:
        """Drain (when *wait*) then stop the workers.

        With ``wait=False`` every still-queued request is cancelled (its
        future raises :exc:`concurrent.futures.CancelledError`); running
        requests always finish — workers are cooperative, never killed.
        """
        if wait:
            self.drain(timeout)
        with self._lock:
            self._state = _STOPPED
            dropped = list(self._queue)
            self._queue.clear()
            self._has_work.notify_all()
        for job in dropped:
            job.future.cancel()
            if job.session is not None:
                with self._lock:
                    remaining = self._in_flight.get(job.session, 1) - 1
                    if remaining > 0:
                        self._in_flight[job.session] = remaining
                    else:
                        self._in_flight.pop(job.session, None)
        for thread in self._threads:
            thread.join()

    def __enter__(self) -> "ServeExecutor":
        return self

    def __exit__(self, *exc) -> bool:
        self.shutdown(wait=exc == (None, None, None))
        return False

    # -- observability -----------------------------------------------------------

    def report_to(self, sink, meta: dict | None = None) -> None:
        """Write the latency accounting to an obs sink as a ``serve.latency`` span."""
        record = {"executor": self.name, "workers": len(self._threads)}
        record.update(meta or {})
        sink.write(self.stats.to_span(label=self.name), meta=record)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ServeExecutor({self.name!r}, workers={len(self._threads)}, "
            f"pending={self.pending()}, state={self._state})"
        )
