"""The network serving layer: an asyncio TCP front end over PreferenceServer.

Four modules (see ``docs/SERVING.md``, "The network front end"):

* :mod:`.protocol` — the length-prefixed JSON wire format (4-byte
  big-endian length + canonical JSON), request/response shapes, and the
  typed-error codec that carries :class:`~repro.errors.ReproError`
  subclasses (with their structured fields — ``Overloaded.retry_after``,
  ``TransientFault.site`` ...) across the wire.
* :mod:`.server` — :class:`NetServer`, the asyncio front end: per-tenant
  namespaces and quota admission, end-to-end deadline propagation into
  :class:`~repro.resilience.QueryGuard`, graceful drain on SIGTERM,
  health/readiness ops, per-connection ``serve.net`` spans, and the
  ``net.accept`` / ``net.read`` / ``net.write`` / ``net.close`` fault
  sites for seeded network chaos.
* :mod:`.client` — :class:`PreferenceClient`, the blocking client SDK:
  jittered :class:`~repro.resilience.RetryPolicy` backoff bounded by a
  :class:`~repro.resilience.RetryBudget`, server ``retry_after`` hints
  honored over blind backoff, client-side deadlines propagated per
  attempt, and end-to-end result-digest verification.
* :mod:`.load` — the zipfian multi-tenant load generator behind
  ``python -m repro serve-load`` (``results/BENCH_serve_load.json``).

The chaos suite for all of it is :mod:`repro.serve.net.chaos`
(``python -m repro chaos --scenario network``).

Import-light like :mod:`repro.serve`: everything loads lazily.
"""

from __future__ import annotations

__all__ = [
    "NetServer",
    "NetServerHandle",
    "PreferenceClient",
    "encode_frame",
    "read_frame",
    "write_frame",
    "error_to_dict",
    "error_from_dict",
    "triples_digest",
]

_LAZY = {
    "NetServer": ("repro.serve.net.server", "NetServer"),
    "NetServerHandle": ("repro.serve.net.server", "NetServerHandle"),
    "PreferenceClient": ("repro.serve.net.client", "PreferenceClient"),
    "encode_frame": ("repro.serve.net.protocol", "encode_frame"),
    "read_frame": ("repro.serve.net.protocol", "read_frame"),
    "write_frame": ("repro.serve.net.protocol", "write_frame"),
    "error_to_dict": ("repro.serve.net.protocol", "error_to_dict"),
    "error_from_dict": ("repro.serve.net.protocol", "error_from_dict"),
    "triples_digest": ("repro.serve.net.protocol", "triples_digest"),
}


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)
