"""Network chaos: the serving stack must stay exact across a hostile wire.

``python -m repro chaos --scenario network`` runs three phases against a
real :class:`~repro.serve.net.server.NetServer` (real sockets, real event
loop), all seeded and deterministic:

* **Conformance cells** (:func:`run_network_chaos`, phase 1) — each cell
  connects a fresh :class:`~repro.serve.net.client.PreferenceClient` whose
  *first* connection suffers one seeded network fault (connection dropped
  at accept, dropped or stalled or torn mid-read, response dropped or torn
  mid-write, abrupt close) while the server's preference state churns
  between cells.  The contract: a query that completes must digest-match
  the **reference oracle evaluated server-side on the same snapshot**
  (``oracle=True``) *and* survive the client-side digest recomputation; a
  query that cannot complete must fail with a typed resilience error.
  Silently wrong rows — a torn frame decoding into plausible JSON — are
  the one forbidden outcome.
* **Kill + recovery** (phase 2) — clients write preferences over the wire
  to a durable server and record every acknowledged write; the server is
  then killed with no drain, no flush, no close (the event-loop analogue
  of SIGKILL) and recovered with
  :meth:`~repro.serve.server.PreferenceServer.open`.  Every acknowledged
  write must be present — the WAL append is the commit point, so an ack
  that did not survive is data loss.
* **Overload shedding** (phase 3) — more concurrent slow requests than a
  tiny server can hold.  Some must complete, the rest must shed *quickly*
  with typed :exc:`~repro.errors.Overloaded` carrying a positive
  ``retry_after`` hint; nothing may hang past its deadline or escape
  untyped.  A final budgeted client must then succeed by honoring the
  hints — the retry path proving the hint is actionable, not decorative.

Like the other chaos fixtures, verdicts are deterministic even though the
socket interleavings are not: each cell is judged against the snapshot its
own query actually served.
"""

from __future__ import annotations

import os
import random
import threading
from dataclasses import dataclass, field

from ...core.preference import Preference
from ...engine.expressions import eq
from ...errors import NetworkFault, Overloaded, ReproError, ResilienceError
from ...resilience.faults import FaultPlan, FaultSpec
from ...resilience.retry import RetryBudget, RetryPolicy
from .client import PreferenceClient
from .server import NetServer, serve_in_thread

#: The seeded fault rotation: every cell index maps to one wire failure
#: mode on the cell's first connection (retries get clean connections).
FAULT_KINDS = (
    "none",
    "accept-drop",
    "read-drop",
    "read-stall",
    "read-tear",
    "write-drop",
    "write-tear",
    "close-drop",
)


def _fault_plan(kind: str, seed: int) -> "FaultPlan | None":
    if kind == "none":
        return None
    if kind == "accept-drop":
        return FaultPlan.transient("net.accept", times=1, seed=seed)
    if kind == "read-drop":
        return FaultPlan.transient("net.read", times=1, seed=seed)
    if kind == "read-stall":
        return FaultPlan(
            [FaultSpec("net.read", "latency", delay=0.05, times=1)], seed=seed
        )
    if kind == "read-tear":
        return FaultPlan.corrupting("net.read", times=1, seed=seed)
    if kind == "write-drop":
        return FaultPlan.transient("net.write", times=1, seed=seed)
    if kind == "write-tear":
        return FaultPlan.corrupting("net.write", times=1, seed=seed)
    return FaultPlan.transient("net.close", times=1, seed=seed)


@dataclass
class NetworkCell:
    """Outcome of one faulted query cell."""

    index: int
    user: str
    fault: str
    outcome: str  # 'exact' | 'typed-<Error>' | failure description
    ok: bool
    retries: int = 0
    detail: str = ""


@dataclass
class NetworkChaosReport:
    """Everything the network chaos run observed, plus the verdict."""

    seed: int
    scale: float
    cells: list[NetworkCell] = field(default_factory=list)
    write_acks: int = 0
    writes_recovered: int = 0
    overload_served: int = 0
    overload_shed: int = 0
    errors: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors and all(cell.ok for cell in self.cells)

    @property
    def failures(self) -> list[NetworkCell]:
        return [cell for cell in self.cells if not cell.ok]

    def describe(self) -> str:
        lines = [f"network chaos: seed={self.seed} scale={self.scale}"]
        by_outcome: dict[str, int] = {}
        for cell in self.cells:
            key = f"{cell.fault} → {cell.outcome}"
            by_outcome[key] = by_outcome.get(key, 0) + 1
        for key in sorted(by_outcome):
            lines.append(f"  {key:<40} {by_outcome[key]}")
        lines.append(
            f"  kill+recovery: {self.writes_recovered}/{self.write_acks} "
            "acknowledged writes survived"
        )
        lines.append(
            f"  overload: {self.overload_served} served, "
            f"{self.overload_shed} shed typed"
        )
        for cell in self.failures:
            lines.append(
                f"  FAIL cell#{cell.index} user={cell.user} fault={cell.fault}: "
                f"{cell.outcome} — {cell.detail}"
            )
        for error in self.errors:
            lines.append(f"  ERROR {error}")
        good = sum(1 for c in self.cells if c.ok)
        lines.append(
            f"network chaos: {good}/{len(self.cells)} cells conformant — "
            + ("OK" if self.ok else "FAILED")
        )
        return "\n".join(lines)


def _pool() -> list[Preference]:
    """WAL-loggable preferences the churn rotates through user buckets."""
    return [
        Preference(f"g_{genre.lower()}", "GENRES", eq("genre", genre), w, 0.9)
        for genre, w in (
            ("Comedy", 0.8), ("Drama", 0.7), ("Action", 0.9), ("Thriller", 0.6)
        )
    ]


class _OneShotFaults:
    """Connection fault factory: arm one plan, first connection takes it.

    Retry connections (and the churn writer's) get no plan, so every cell's
    designated fault lands exactly once and its label stays honest.
    """

    def __init__(self) -> None:
        self._plan: FaultPlan | None = None
        self._lock = threading.Lock()

    def arm(self, plan: "FaultPlan | None") -> None:
        with self._lock:
            self._plan = plan

    def __call__(self, index: int) -> "FaultPlan | None":
        with self._lock:
            plan, self._plan = self._plan, None
            return plan


def run_network_chaos(
    seed: int = 42,
    scale: float = 0.0005,
    cells: int = 24,
    kill_writes: int = 16,
    overload_clients: int = 8,
    directory: str | None = None,
) -> NetworkChaosReport:
    """Run all three network chaos phases; see the module docstring."""
    report = NetworkChaosReport(seed=seed, scale=scale)
    _conformance_phase(report, cells)
    _kill_recovery_phase(report, kill_writes, directory)
    _overload_phase(report, overload_clients)
    return report


# ---------------------------------------------------------------------------
# Phase 1: conformance under wire faults
# ---------------------------------------------------------------------------


def _conformance_phase(report: NetworkChaosReport, cells: int) -> None:
    from ...workloads.imdb import generate_imdb
    from ..server import PreferenceServer

    rng = random.Random(report.seed)
    server = PreferenceServer(generate_imdb(scale=report.scale, seed=report.seed))
    users = [f"u{i}" for i in range(4)]
    pool = _pool()
    for user in users:
        # Every user keeps one base preference so PREFERRING is never empty.
        server.add_preference(f"public::{user}", pool[0])
    faults = _OneShotFaults()
    net = NetServer(server, fault_factory=faults, tenant_quota=None)
    handle = serve_in_thread(net)
    try:
        for index in range(cells):
            user = users[index % len(users)]
            fault = FAULT_KINDS[index % len(FAULT_KINDS)]
            faults.arm(_fault_plan(fault, report.seed * 7919 + index))
            client = PreferenceClient(
                "127.0.0.1",
                handle.port,
                timeout=10.0,
                deadline_s=30.0,
                retry=RetryPolicy(attempts=4, base_delay=0.002, jitter=0.5, seed=index),
            )
            try:
                result = client.query(user, oracle=True)
            except (NetworkFault, ResilienceError) as err:
                # Typed failure after retries: degraded but within contract.
                report.cells.append(
                    NetworkCell(
                        index, user, fault,
                        outcome=f"typed-{type(err).__name__}",
                        ok=True,
                        retries=client.retries,
                        detail=str(err),
                    )
                )
                continue
            except Exception as err:  # noqa: BLE001 - untyped escape fails the run
                report.cells.append(
                    NetworkCell(
                        index, user, fault,
                        outcome="untyped-escape", ok=False,
                        retries=client.retries, detail=repr(err),
                    )
                )
                continue
            finally:
                client.close()
                faults.arm(None)
                # Churn between cells so later snapshots genuinely differ.
                _churn(server, rng, users, pool)
            if result.get("oracle_digest") != result.get("digest"):
                report.cells.append(
                    NetworkCell(
                        index, user, fault,
                        outcome="oracle-mismatch", ok=False,
                        retries=client.retries,
                        detail=(
                            f"served digest {result.get('digest', '')[:12]} != "
                            f"oracle {result.get('oracle_digest', '')[:12]} "
                            "on the same snapshot"
                        ),
                    )
                )
            else:
                report.cells.append(
                    NetworkCell(
                        index, user, fault,
                        outcome="exact", ok=True, retries=client.retries,
                    )
                )
    finally:
        handle.stop()


def _churn(server, rng: random.Random, users: list[str], pool: list[Preference]) -> None:
    user = f"public::{rng.choice(users)}"
    pref = rng.choice(pool[1:])
    try:
        if rng.random() < 0.5:
            server.add_preference(user, pref)
        else:
            server.remove_preference(user, pref.name)
    except ReproError as err:
        if "duplicate" not in str(err) and "already" not in str(err):
            raise


# ---------------------------------------------------------------------------
# Phase 2: kill + recovery of acknowledged writes
# ---------------------------------------------------------------------------


def _kill_recovery_phase(
    report: NetworkChaosReport, writes: int, directory: str | None
) -> None:
    import tempfile

    from ...workloads.imdb import generate_imdb
    from ..server import PreferenceServer

    with tempfile.TemporaryDirectory(prefix="repro-net-kill-", dir=directory) as tmp:
        origin = os.path.join(tmp, "origin")
        server, _ = PreferenceServer.open(
            origin,
            initial=generate_imdb(scale=report.scale, seed=report.seed),
            sync=True,
        )
        net = NetServer(server, tenant_quota=None)
        handle = serve_in_thread(net)
        acked: list[tuple[str, str]] = []
        try:
            client = PreferenceClient("127.0.0.1", handle.port, deadline_s=30.0)
            genres = ("Comedy", "Drama", "Action", "Thriller")
            for i in range(writes):
                user = f"w{i % 4}"
                name = f"net_{i}"
                pref = Preference(name, "GENRES", eq("genre", genres[i % 4]), 0.8, 0.9)
                outcome = client.add_preference(user, pref)
                if outcome.get("added"):
                    # The response frame arrived: this write is acknowledged
                    # and must survive any crash from this instant on.
                    acked.append((user, name))
            client.close()
        finally:
            # The kill: no drain, no WAL close, no checkpoint — recovery
            # gets whatever the commit discipline made durable.
            handle.abort()
        report.write_acks = len(acked)
        recovered, _replay = PreferenceServer.open(origin)
        try:
            for user, name in acked:
                names = {
                    p.name for p in recovered.store.preferences_of(f"public::{user}")
                }
                if name in names:
                    report.writes_recovered += 1
                else:
                    report.errors.append(
                        f"kill+recovery lost acknowledged write {name!r} "
                        f"for user {user!r}"
                    )
        finally:
            recovered.close()
        if not acked:
            report.errors.append("kill+recovery phase acknowledged no writes")


# ---------------------------------------------------------------------------
# Phase 3: overload sheds typed, hints are actionable
# ---------------------------------------------------------------------------


def _overload_phase(report: NetworkChaosReport, clients: int) -> None:
    from ...workloads.imdb import generate_imdb
    from ..server import PreferenceServer

    server = PreferenceServer(generate_imdb(scale=report.scale, seed=report.seed))
    net = NetServer(
        server,
        workers=2,
        queue_limit=0,
        tenant_quota=None,
        test_ops=True,
    )
    handle = serve_in_thread(net)
    outcomes: list[str] = []
    lock = threading.Lock()

    def slam() -> None:
        client = PreferenceClient(
            "127.0.0.1",
            handle.port,
            deadline_s=10.0,
            retry=RetryPolicy(attempts=1),
        )
        try:
            client.ping(delay_ms=120)
            verdict = "served"
        except Overloaded as err:
            if err.retry_after is None or err.retry_after <= 0:
                verdict = f"shed-without-hint({err.reason})"
            else:
                verdict = "shed"
        except ResilienceError as err:
            verdict = f"typed-{type(err).__name__}"
        except Exception as err:  # noqa: BLE001 - untyped escape fails the run
            verdict = f"untyped:{err!r}"
        finally:
            client.close()
        with lock:
            outcomes.append(verdict)

    try:
        threads = [
            threading.Thread(target=slam, daemon=True) for _ in range(clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
            if thread.is_alive():
                report.errors.append("overload client hung past its deadline")
        report.overload_served = outcomes.count("served")
        report.overload_shed = outcomes.count("shed")
        for verdict in outcomes:
            if verdict.startswith("untyped:") or verdict.startswith("shed-without-hint"):
                report.errors.append(f"overload outcome: {verdict}")
        if report.overload_served == 0:
            report.errors.append("overload phase served nothing")
        if report.overload_shed == 0:
            report.errors.append(
                "overload phase shed nothing (not actually overloaded?)"
            )
        # The hint must be actionable: a budgeted client that *honors*
        # retry_after gets through once the burst passes.
        patient = PreferenceClient(
            "127.0.0.1",
            handle.port,
            deadline_s=30.0,
            retry=RetryPolicy(attempts=8, base_delay=0.01, jitter=0.5, seed=1),
            budget=RetryBudget(capacity=10.0, refill=0.5),
        )
        try:
            patient.ping(delay_ms=20)
        except ReproError as err:
            report.errors.append(f"hint-honoring client never got through: {err!r}")
        finally:
            patient.close()
    finally:
        handle.stop()
