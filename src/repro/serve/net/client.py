"""The blocking client SDK for the network serving layer.

:class:`PreferenceClient` wraps one TCP connection (re-established as
needed) in the robustness protocol the server expects of well-behaved
clients:

* **Typed failures** — error responses come back as the same
  :class:`~repro.errors.ReproError` subclasses an in-process caller would
  see (``except Overloaded`` works across the wire); transport problems
  (dropped connections, torn frames, stalls) are
  :exc:`~repro.errors.NetworkFault`.
* **Bounded, jittered retries** — transport faults and sheds retry under a
  :class:`~repro.resilience.RetryPolicy` whose jitter de-synchronizes a
  fleet, and the shared :class:`~repro.resilience.RetryBudget` caps the
  *ratio* of retries to successes so a server-side brownout cannot be
  amplified into a retry storm.
* **Server hints over blind backoff** — a shed carrying ``retry_after``
  (the server's load-derived estimate) replaces the exponential schedule
  for that pause; jitter still applies so hinted clients spread out too.
* **Deadline propagation** — a per-call (or client-default) deadline is
  the budget for *all* attempts; each attempt tells the server how much
  remains (``deadline_ms``), the server enforces it through its
  :class:`~repro.resilience.QueryGuard`, and the client refuses to sleep
  a backoff it can no longer afford.
* **End-to-end integrity** — query responses carry an order-independent
  digest computed server-side; the client recomputes it over the decoded
  triples, so bytes mangled anywhere between the two digests surface as a
  typed :exc:`~repro.errors.NetworkFault` instead of silently wrong rows.

Write semantics under retry are **at-least-once**: a connection that dies
between the server committing a write and the client reading the ack is
indistinguishable from one that died before admission, so a retried write
may be applied twice.  Preference mutations are naturally idempotent-
checkable (re-adding a name raises a typed ``PreferenceError``; re-removing
returns ``removed: false``); callers that need exactly-once must key on
that, as the chaos harness does.
"""

from __future__ import annotations

import socket
import time

from ...errors import NetworkFault, Overloaded, QueryTimeout, TransientFault
from ..codec import preference_to_dict
from .protocol import error_from_dict, read_frame, triples_digest, write_frame


class PreferenceClient:
    """Client for a :class:`~repro.serve.net.server.NetServer`.

    :param tenant: namespace for every user id and quota this client acts
        under.
    :param timeout: per-socket-operation timeout (stall detection); the
        end-to-end budget is *deadline_s*.
    :param retry: backoff schedule for retryable failures (``attempts=1``
        disables retry).
    :param budget: shared retry budget; ``None`` retries on schedule alone.
    :param deadline_s: default end-to-end deadline per call, spanning all
        retry attempts (``None``: unbounded).
    :param verify_digests: recompute each query's result digest client-side
        and fail typed on mismatch.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        tenant: str = "public",
        timeout: float = 10.0,
        retry=None,
        budget=None,
        deadline_s: float | None = None,
        verify_digests: bool = True,
    ) -> None:
        from ...resilience.retry import RetryPolicy

        self.host = host
        self.port = port
        self.tenant = tenant
        self.timeout = timeout
        self.retry = retry if retry is not None else RetryPolicy(
            attempts=3, base_delay=0.02, jitter=0.5
        )
        self.budget = budget
        self.deadline_s = deadline_s
        self.verify_digests = verify_digests
        self._sock: socket.socket | None = None
        self._next_id = 0
        #: Counters a harness can assert on.
        self.retries = 0
        self.sheds_seen = 0
        self.network_faults = 0

    # -- connection management ---------------------------------------------------

    def _connect(self, remaining: float | None) -> socket.socket:
        if self._sock is not None:
            return self._sock
        budget = self.timeout if remaining is None else min(self.timeout, remaining)
        try:
            sock = socket.create_connection((self.host, self.port), timeout=budget)
        except OSError as err:
            raise NetworkFault("net.accept", f"connect failed: {err}") from err
        sock.settimeout(budget)
        self._sock = sock
        return sock

    def _drop_connection(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover - close on a dead socket
                pass
            self._sock = None

    def close(self) -> None:
        self._drop_connection()

    def __enter__(self) -> "PreferenceClient":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    # -- the call loop -----------------------------------------------------------

    def call(self, payload: dict, deadline_s: float | None = None) -> dict:
        """One request/response exchange with retry, budget and deadline.

        *payload* is the op-specific body; tenant, request id and the
        remaining ``deadline_ms`` are filled in per attempt.  Retryable
        failures (transport faults, sheds) follow the retry policy; every
        other typed error raises immediately.
        """
        deadline_s = deadline_s if deadline_s is not None else self.deadline_s
        deadline = None if deadline_s is None else time.monotonic() + deadline_s
        attempt = 0
        while True:
            attempt += 1
            remaining = None if deadline is None else deadline - time.monotonic()
            if remaining is not None and remaining <= 0:
                raise QueryTimeout(deadline_s, deadline_s)
            try:
                return self._attempt(payload, remaining)
            except (NetworkFault, TransientFault, Overloaded) as err:
                retryable = err
            self._handle_failure(retryable, attempt, deadline)

    def _attempt(self, payload: dict, remaining: float | None) -> dict:
        self._next_id += 1
        request = dict(payload)
        request["id"] = self._next_id
        request.setdefault("tenant", self.tenant)
        # An explicit per-payload deadline_ms wins; otherwise each attempt
        # tells the server how much of the end-to-end budget remains.
        if remaining is not None and "deadline_ms" not in payload:
            request["deadline_ms"] = remaining * 1e3
        sock = self._connect(remaining)
        if remaining is not None:
            sock.settimeout(min(self.timeout, remaining))
        try:
            write_frame(sock, request)
            response = read_frame(sock)
        except NetworkFault:
            self._drop_connection()
            raise
        if response is None:
            # EOF where a response belongs: the server dropped us (or a
            # drain raced the request) — a transport fault, retry elsewhere.
            self._drop_connection()
            raise NetworkFault("net.read", "connection closed before response")
        if response.get("ok"):
            if self.budget is not None:
                self.budget.record_success()
            return response.get("result", {})
        raise error_from_dict(response.get("error", {}))

    def _handle_failure(self, err, attempt: int, deadline) -> None:
        """Count, budget and sleep one retryable failure — or re-raise it."""
        if isinstance(err, Overloaded):
            self.sheds_seen += 1
        else:
            self.network_faults += 1
            self._drop_connection()
        if attempt >= self.retry.attempts:
            raise err
        if self.budget is not None and not self.budget.try_spend():
            # Budget dry: the fleet is already retrying as much as the
            # server can absorb — fail fast instead of feeding the storm.
            raise err
        if isinstance(err, Overloaded) and err.retry_after is not None:
            # The server's load-derived hint beats the blind schedule;
            # jitter still applies so hinted clients spread out.
            delay = self.retry.jittered(err.retry_after)
        else:
            delay = self.retry.backoff(attempt)
        if deadline is not None:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise err
            delay = min(delay, remaining)
        if delay > 0:
            self.retry.sleep(delay)
        self.retries += 1

    # -- ops ---------------------------------------------------------------------

    def ping(self, delay_ms: float | None = None, **kw) -> dict:
        payload: dict = {"op": "ping"}
        if delay_ms is not None:
            payload["delay_ms"] = delay_ms
        return self.call(payload, **kw)

    def health(self, **kw) -> dict:
        return self.call({"op": "health"}, **kw)

    def ready(self, **kw) -> dict:
        return self.call({"op": "ready"}, **kw)

    def stats(self, **kw) -> dict:
        return self.call({"op": "stats"}, **kw)

    def query(
        self,
        user: str,
        sql: str | None = None,
        *,
        strategy: str | None = None,
        oracle: bool = False,
        deadline_s: float | None = None,
    ) -> dict:
        """Run *user*'s preferential query; returns the result dictionary.

        The result carries ``triples`` (row, score, confidence), ``columns``,
        ``prefs`` (the preference names the snapshot served), ``digest`` and
        — with ``oracle=True`` — ``oracle_digest``, the reference-strategy
        digest of the same snapshot.
        """
        payload: dict = {"op": "query", "user": user}
        if sql is not None:
            payload["sql"] = sql
        if strategy is not None:
            payload["strategy"] = strategy
        if oracle:
            payload["oracle"] = True
        result = self.call(payload, deadline_s=deadline_s)
        if self.verify_digests and "digest" in result:
            recomputed = triples_digest(
                [(row, score, conf) for row, score, conf in result.get("triples", [])]
            )
            if recomputed != result["digest"]:
                raise NetworkFault(
                    "net.read",
                    f"result digest mismatch: server {result['digest'][:12]}…, "
                    f"client {recomputed[:12]}…",
                )
        return result

    def add_preference(self, user: str, preference, **kw) -> dict:
        pref = preference if isinstance(preference, dict) else preference_to_dict(preference)
        return self.call({"op": "add_preference", "user": user, "pref": pref}, **kw)

    def remove_preference(self, user: str, name: str, **kw) -> dict:
        return self.call({"op": "remove_preference", "user": user, "name": name}, **kw)

    def clear_preferences(self, user: str, **kw) -> dict:
        return self.call({"op": "clear_preferences", "user": user}, **kw)

    def insert(self, table: str, values, **kw) -> dict:
        return self.call({"op": "insert", "table": table, "values": list(values)}, **kw)


def connect(host: str, port: int, **kw) -> PreferenceClient:
    """Convenience constructor mirroring :func:`socket.create_connection`."""
    return PreferenceClient(host, port, **kw)
